"""Command-line interface: ``python -m repro <command>``.

Gives the library's main experiments a shell entry point:

* ``sweep`` — latency-load curve for one switch organization;
* ``saturate`` — saturation throughput for one or more organizations;
* ``radix`` — the Section 2 analytical optimum for a technology point;
* ``network`` — the Figure 19 Clos-network comparison;
* ``area`` — storage/area comparison between organizations;
* ``run`` — a single measured run, optionally under the runtime
  sanitizer (``--sanitize``);
* ``trace`` — a traced run: measured per-stage pipeline breakdown and
  optional Chrome trace-event JSON (``--chrome out.json``, loadable in
  Perfetto);
* ``faults`` — deterministic fault-injection sweep (see
  :mod:`repro.faults`): degraded throughput/latency and recovery
  counters as the fault rate rises;
* ``workload`` — dependency-driven application workloads (see
  :mod:`repro.workloads`): closed-loop request/reply, collectives
  (ring / recursive-doubling all-reduce, all-to-all, broadcast,
  transformer-decode sequences), and trace replay, swept over message
  size / window / layer count on a switch or a Clos network;
* ``lint`` — the repository's whole-program AST lint pass (rules
  R001-R014, with ``--select``/``--ignore`` filters, ``--format
  {text,json,sarif}``, a content-hash summary cache, and a baseline
  file for grandfathered findings).

Examples::

    python -m repro sweep --arch hierarchical --radix 32 --plot
    python -m repro sweep --arch voq --radix 64 --jobs 4
    python -m repro saturate --arch all --pattern bursty
    python -m repro radix --bandwidth 20e12 --delay 5e-9 --nodes 2048 --packet 256
    python -m repro network --load 0.5
    python -m repro area --radix 64
    python -m repro run --arch buffered --radix 16 --load 0.8 --sanitize
    python -m repro trace --arch hierarchical --radix 8 --subswitch 4 --chrome out.json
    python -m repro faults --arch buffered --radix 8 --rates 0,0.01,0.05 --sanitize
    python -m repro workload --family allreduce --ranks 16 --sizes 1,4,16
    python -m repro workload --family decode --layer-counts 2,4 --gap 16
    python -m repro workload --family replay --replay out.json --target switch
    python -m repro lint src
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Callable, Dict, Optional, Sequence

from .core.config import RouterConfig
from .core.pipeline_diagram import compare as compare_pipelines
from .harness.experiment import (
    SweepSettings,
    run_load_sweep,
    saturation_throughput,
)
from .harness.plot import plot_sweeps
from .harness.report import format_sweeps, format_table
from .models.area import AreaModel, storage_bits
from .models.latency import optimal_radix, packet_latency
from .models.technology import Technology
from .network.netsim import ClosNetworkSimulation, NetworkConfig
from .routers.baseline import BaselineRouter
from .routers.buffered import BufferedCrossbarRouter
from .routers.distributed import DistributedRouter
from .routers.hierarchical import HierarchicalCrossbarRouter
from .routers.shared_buffer import SharedBufferCrossbarRouter
from .routers.voq import VoqRouter
from .traffic.patterns import (
    Diagonal,
    Hotspot,
    TrafficPattern,
    UniformRandom,
    WorstCaseHierarchical,
)

ARCHITECTURES: Dict[str, Callable] = {
    "baseline": BaselineRouter,
    "distributed": DistributedRouter,
    "buffered": BufferedCrossbarRouter,
    "shared-buffer": SharedBufferCrossbarRouter,
    "hierarchical": HierarchicalCrossbarRouter,
    "voq": VoqRouter,
}

#: Architecture key used by the area model for each CLI name.
AREA_KEYS = {
    "baseline": "baseline",
    "distributed": "distributed",
    "buffered": "buffered",
    "shared-buffer": "shared_buffer",
    "hierarchical": "hierarchical",
    "voq": "voq",
}


def _make_pattern(name: str, config: RouterConfig) -> TrafficPattern:
    k = config.radix
    if name == "uniform":
        return UniformRandom(k)
    if name == "diagonal":
        return Diagonal(k)
    if name == "hotspot":
        return Hotspot(k, num_hotspots=min(8, k))
    if name == "worst-case":
        return WorstCaseHierarchical(k, config.subswitch_size)
    raise ValueError(f"unknown pattern {name!r}")


def _config_from_args(args: argparse.Namespace) -> RouterConfig:
    return RouterConfig(
        radix=args.radix,
        num_vcs=args.vcs,
        subswitch_size=args.subswitch,
        local_group_size=min(8, args.radix),
        vc_allocator=args.vc_alloc,
        input_buffer_depth=max(16, 4 * args.packet_size),
        seed=args.seed,
    )


def _settings(args: argparse.Namespace) -> SweepSettings:
    return SweepSettings(
        warmup=args.warmup, measure=args.measure, drain=args.drain
    )


def _add_router_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--radix", type=int, default=32)
    sub.add_argument("--vcs", type=int, default=4)
    sub.add_argument("--subswitch", type=int, default=8)
    sub.add_argument("--vc-alloc", choices=("cva", "ova"), default="cva")
    sub.add_argument("--packet-size", type=int, default=1)
    sub.add_argument(
        "--pattern",
        choices=("uniform", "diagonal", "hotspot", "worst-case"),
        default="uniform",
    )
    sub.add_argument("--injection", choices=("bernoulli", "onoff"),
                     default="bernoulli")
    sub.add_argument("--warmup", type=int, default=800)
    sub.add_argument("--measure", type=int, default=1200)
    sub.add_argument("--drain", type=int, default=20000)
    sub.add_argument("--seed", type=int, default=1)


def _add_scheduler_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--scheduler", choices=("cycle", "event"), default="cycle",
        help="drive loop: 'cycle' steps every cycle, 'event' "
             "fast-forwards provably idle spans (byte-identical "
             "results)",
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    cls = ARCHITECTURES[args.arch]
    loads = [float(x) for x in args.loads.split(",")]
    # partial() of the module-level _make_pattern stays picklable, so
    # the same factory works for both the serial and the process-pool
    # path (lambdas would break --jobs under the spawn start method).
    pattern_factory = functools.partial(_make_pattern, args.pattern)
    if args.jobs > 1:
        from .harness.parallel import run_load_sweep_parallel

        sweep = run_load_sweep_parallel(
            cls, config, loads, label=args.arch,
            packet_size=args.packet_size,
            pattern_factory=pattern_factory,
            injection=args.injection,
            settings=_settings(args),
            processes=args.jobs,
            scheduler=args.scheduler,
        )
    else:
        sweep = run_load_sweep(
            cls, config, loads, label=args.arch,
            packet_size=args.packet_size,
            pattern_factory=pattern_factory,
            injection=args.injection,
            settings=_settings(args),
            scheduler=args.scheduler,
        )
    print(format_sweeps(
        [sweep],
        title=f"{args.arch} @ radix {config.radix}, pattern {args.pattern}",
    ))
    if args.plot:
        print()
        print(plot_sweeps([sweep]))
    return 0


def cmd_saturate(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    names = (
        list(ARCHITECTURES) if args.arch == "all" else [args.arch]
    )
    settings = SweepSettings(
        warmup=args.warmup, measure=args.measure, drain=100
    )
    rows = []
    for name in names:
        thpt = saturation_throughput(
            ARCHITECTURES[name], config,
            packet_size=args.packet_size,
            pattern_factory=lambda c: _make_pattern(args.pattern, c),
            injection=args.injection,
            settings=settings,
        )
        rows.append((name, f"{thpt:.3f}"))
    print(format_table(
        ["architecture", "saturation throughput"], rows,
        title=f"radix {config.radix}, pattern {args.pattern}, "
              f"{args.packet_size}-flit packets",
    ))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """One measured run of one organization at one load point.

    With ``--sanitize`` the router is wrapped in a
    :class:`~repro.analysis.SimSanitizer`; an invariant violation
    aborts the run with exit status 2 and the violation's location.
    """
    from .analysis.sanitizer import SimSanitizer
    from .core.errors import InvariantViolation
    from .harness import load_checkpoint
    from .harness.experiment import SwitchSimulation

    if args.resume and args.sanitize:
        print("run: --resume and --sanitize cannot be combined (the "
              "checkpoint spec carries its own settings)", file=sys.stderr)
        return 2
    if args.resume:
        sim = load_checkpoint(args.resume)
        config = sim.router.config
        arch_label = f"resumed {type(sim.router).__name__}"
    else:
        config = _config_from_args(args)
        router = ARCHITECTURES[args.arch](config)
        sim = SwitchSimulation(
            router,
            load=args.load,
            packet_size=args.packet_size,
            pattern=_make_pattern(args.pattern, config),
            injection=args.injection,
            sanitize=args.sanitize,
            scheduler=args.scheduler,
        )
        sim.start_run(_settings(args))
        arch_label = args.arch
    try:
        if args.checkpoint_every:
            # Pause every N cycles to persist a resumable snapshot;
            # pausing never perturbs the run (see advance_run).
            while not sim.advance_run(
                stop_at=sim.cycle + args.checkpoint_every
            ):
                sim.save_checkpoint(args.checkpoint)
                print(f"run: checkpoint at cycle {sim.cycle} -> "
                      f"{args.checkpoint}", file=sys.stderr)
        else:
            sim.advance_run()
        result = sim.finish_run()
        if args.sanitize:
            # Drain to empty so the final accounting can be exact.
            sim.stop_sources()
            budget = 200000
            while budget > 0 and (
                any(s.backlog() for s in sim.sources)
                or not sim.router.idle()
            ):
                sim.step()
                budget -= 1
            sim.router.assert_drained()
    except InvariantViolation as exc:
        print(f"sanitizer: invariant violation: {exc}", file=sys.stderr)
        return 2
    print(format_table(
        ["metric", "value"],
        [
            ("offered load", f"{result.offered_load:.3f}"),
            ("throughput", f"{result.throughput:.3f}"),
            ("avg latency", f"{result.avg_latency:.1f}"),
            ("saturated", str(result.saturated)),
        ],
        title=f"{arch_label} @ radix {config.radix}, load "
              f"{result.offered_load:.2f}"
              + (" [sanitized]" if args.sanitize else ""),
    ))
    if args.sanitize:
        checks = sim.router.checks_run
        print(f"sanitizer: {checks} structural checks, 0 violations")
    return 0


def _measured_arch_key(arch: str, vc_alloc: str) -> str:
    """CLI architecture name -> ``measured_pipeline`` table key."""
    return vc_alloc if arch == "distributed" else arch


def cmd_trace(args: argparse.Namespace) -> int:
    """One traced run: stage breakdown + optional Chrome trace JSON.

    Attaches a :class:`~repro.trace.TraceCollector` (with the sampling
    filter built from ``--every-nth`` / ``--ports`` / ``--trace-vcs``),
    prints the measured per-stage latency breakdown against the
    zero-load expectation, and with ``--chrome PATH`` writes the
    Perfetto-loadable trace-event JSON.
    """
    from .harness.experiment import SwitchSimulation
    from .trace import TraceCollector, TraceFilter, dump_chrome_trace
    from .trace.breakdown import format_stage_breakdown

    config = _config_from_args(args)
    router = ARCHITECTURES[args.arch](config)
    trace_filter = TraceFilter(
        every_nth=args.every_nth,
        ports=(
            frozenset(int(p) for p in args.ports.split(","))
            if args.ports else None
        ),
        vcs=(
            frozenset(int(v) for v in args.trace_vcs.split(","))
            if args.trace_vcs else None
        ),
    )
    collector = TraceCollector(
        capacity=args.capacity, trace_filter=trace_filter
    )
    sim = SwitchSimulation(
        router,
        load=args.load,
        packet_size=args.packet_size,
        pattern=_make_pattern(args.pattern, config),
        injection=args.injection,
        tracer=collector,
    )
    result = sim.run(_settings(args))
    arch_key = _measured_arch_key(args.arch, args.vc_alloc)
    print(format_stage_breakdown(
        collector, config=config, architecture=arch_key,
        title=f"{args.arch} @ radix {config.radix}, load {args.load} "
              f"({collector.completed} traced flits, "
              f"{collector.evicted} evicted)",
    ))
    for kind in sorted(collector.spec):
        rate = collector.spec_hit_rate(kind)
        hits, misses = collector.spec[kind]
        print(f"speculation {kind}: {hits} hits / {misses} misses "
              f"(hit rate {rate:.3f})")
    util = collector.channel_utilization()
    if util:
        mean = sum(util.values()) / len(util)
        print(f"channel utilization: mean {mean:.3f}, "
              f"max {max(util.values()):.3f} "
              f"(offered load {result.offered_load:.3f})")
    if args.chrome:
        events = dump_chrome_trace(collector, args.chrome)
        print(f"chrome trace: wrote {events} events to {args.chrome} "
              "(load in https://ui.perfetto.dev)")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Fault-rate sweep: throughput/latency degradation and recovery.

    Runs one measured point per corruption rate in ``--rates`` (the
    credit-loss rate rides along via ``--credit-loss``), printing
    accepted throughput, latency, and the injector's recovery counters.
    Deterministic: same seed and rates reproduce the table exactly.
    With ``--sanitize`` every run is checked by the runtime sanitizer
    (injected losses are accounted for, so a clean run prints no
    violations).
    """
    from .core.errors import InvariantViolation
    from .faults import FaultPlan
    from .harness.experiment import SwitchSimulation

    config = _config_from_args(args)
    rates = [float(x) for x in args.rates.split(",")]
    for rate in rates:
        if not 0.0 <= rate < 1.0:
            print(f"faults: corrupt rate {rate} outside [0, 1)",
                  file=sys.stderr)
            return 2
    rows = []
    for rate in rates:
        plan = FaultPlan(
            corrupt_rate=rate,
            credit_loss_rate=args.credit_loss,
        )
        router = ARCHITECTURES[args.arch](config)
        sim = SwitchSimulation(
            router,
            load=args.load,
            packet_size=args.packet_size,
            pattern=_make_pattern(args.pattern, config),
            injection=args.injection,
            sanitize=args.sanitize,
            faults=plan if plan.enabled else None,
            scheduler=args.scheduler,
        )
        try:
            result = sim.run(_settings(args))
        except InvariantViolation as exc:
            print(f"sanitizer: invariant violation: {exc}",
                  file=sys.stderr)
            return 2
        extra = result.extra
        rows.append((
            f"{rate:.3f}",
            f"{result.throughput:.3f}",
            f"{result.avg_latency:.1f}",
            str(int(extra.get("stats.faults.retransmits", 0))),
            str(int(extra.get("stats.faults.credit_resyncs", 0))),
            str(result.saturated),
        ))
    print(format_table(
        ["corrupt rate", "throughput", "avg latency", "retransmits",
         "credit resyncs", "saturated"],
        rows,
        title=f"{args.arch} @ radix {config.radix}, load {args.load}, "
              f"credit-loss {args.credit_loss}"
              + (" [sanitized]" if args.sanitize else ""),
    ))
    return 0


def _build_workload(args: argparse.Namespace, ranks: int, size: int,
                    window: int, layers: int):
    """Construct one workload instance for one sweep combination."""
    from . import workloads

    family = args.family
    if family == "request-reply":
        return workloads.request_reply(
            ranks, requests=args.requests, window=window,
            think=args.think, service=args.service,
            request_size=size, reply_size=args.reply_size,
        )
    if family == "allreduce":
        return workloads.all_reduce(ranks, size=size,
                                    algorithm=args.algorithm)
    if family == "alltoall":
        return workloads.all_to_all(ranks, size=size)
    if family == "broadcast":
        return workloads.broadcast(ranks, size=size)
    if family == "decode":
        return workloads.transformer_decode(
            ranks, layers=layers, steps=args.steps, size=size,
            gap=args.gap, algorithm=args.algorithm,
        )
    if family == "replay":
        if not args.replay:
            raise ValueError("--family replay requires --replay PATH")
        return workloads.load_trace(
            args.replay, num_ranks=ranks if args.ranks else None
        )
    raise ValueError(f"unknown workload family {family!r}")


def cmd_workload(args: argparse.Namespace) -> int:
    """Dependency-driven workload runs, swept over DAG parameters.

    Each combination of ``--sizes`` x ``--windows`` x
    ``--layer-counts`` builds one workload DAG and runs it to
    completion on the chosen target (``--target network`` is a folded
    Clos whose hosts are the ranks; ``--target switch`` maps ranks to
    one router's ports).  Prints makespan, message/flow latency
    percentiles, per-phase step time and skew, and accepted
    throughput per combination.  Fully deterministic for a fixed seed;
    ``--kill-links`` schedules dead-link faults (network target) to
    measure degraded collective completion.
    """
    from .core.errors import InvariantViolation
    from .core.flit import reset_packet_ids
    from .faults import FaultPlan, sample_link_faults
    from .harness.experiment import SwitchSimulation
    from .network.topology import FoldedClos

    sizes = [int(x) for x in args.sizes.split(",")]
    windows = [int(x) for x in args.windows.split(",")]
    layer_counts = [int(x) for x in args.layer_counts.split(",")]
    if args.target == "network":
        topology = FoldedClos(args.radix, args.levels)
        default_ranks = topology.num_hosts
    else:
        topology = None
        default_ranks = args.radix
    ranks = args.ranks or default_ranks
    if ranks > default_ranks:
        print(f"workload: {ranks} ranks exceed the "
              f"{default_ranks} available endpoints", file=sys.stderr)
        return 2
    link_faults = ()
    if args.kill_links:
        if topology is None:
            print("workload: --kill-links needs --target network",
                  file=sys.stderr)
            return 2
        link_faults = sample_link_faults(
            topology, seed=args.seed, count=args.kill_links,
            cycle=args.kill_at, until=args.heal_at,
        )
    plan = FaultPlan(
        corrupt_rate=args.corrupt_rate,
        credit_loss_rate=args.credit_loss,
        links=link_faults,
    )
    faults = plan if plan.enabled else None
    rows = []
    for size in sizes:
        for window in windows:
            for layers in layer_counts:
                try:
                    workload = _build_workload(
                        args, ranks, size, window, layers
                    )
                except ValueError as exc:
                    print(f"workload: {exc}", file=sys.stderr)
                    return 2
                reset_packet_ids()
                if args.target == "network":
                    cfg = NetworkConfig(
                        radix=args.radix, levels=args.levels,
                        num_vcs=args.vcs, seed=args.seed,
                    )
                    sim = ClosNetworkSimulation(
                        cfg, workload=workload, sanitize=args.sanitize,
                        faults=faults, scheduler=args.scheduler,
                    )
                else:
                    config = RouterConfig(
                        radix=args.radix, num_vcs=args.vcs,
                        subswitch_size=args.subswitch,
                        local_group_size=min(8, args.radix),
                        seed=args.seed,
                    )
                    sim = SwitchSimulation(
                        ARCHITECTURES[args.arch](config),
                        workload=workload, sanitize=args.sanitize,
                        faults=faults, scheduler=args.scheduler,
                    )
                try:
                    result = sim.run_workload(max_cycles=args.max_cycles)
                except InvariantViolation as exc:
                    print(f"sanitizer: invariant violation: {exc}",
                          file=sys.stderr)
                    return 2
                extra = result.extra
                rows.append((
                    str(size), str(window), str(layers),
                    str(int(extra.get("stats.workload.makespan", 0))),
                    str(int(extra.get("stats.workload.msg_p50", 0))),
                    str(int(extra.get("stats.workload.msg_p99", 0))),
                    str(int(extra.get("stats.workload.flow_p99", 0))),
                    str(int(extra.get("stats.workload.step_max", 0))),
                    str(int(extra.get("stats.workload.skew_max", 0))),
                    f"{result.throughput:.3f}",
                    str(result.saturated),
                ))
    target = (
        f"{args.levels}-level radix-{args.radix} Clos ({ranks} ranks)"
        if args.target == "network"
        else f"{args.arch} radix-{args.radix} switch ({ranks} ranks)"
    )
    print(format_table(
        ["size", "window", "layers", "makespan", "msg p50", "msg p99",
         "flow p99", "step max", "skew max", "throughput", "stuck"],
        rows,
        title=f"{args.family} on {target}, scheduler {args.scheduler}"
              + (" [sanitized]" if args.sanitize else "")
              + (f", {args.kill_links} dead link(s)"
                 if args.kill_links else ""),
    ))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import run_lint

    if args.write_baseline and not args.baseline:
        print("lint: --write-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2
    try:
        return run_lint(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            output_format=args.format,
            output_path=args.output,
            cache_path=None if args.no_cache else args.cache,
            baseline_path=args.baseline,
            write_baseline=args.write_baseline,
        )
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2


def _codes_arg(value: str) -> Sequence[str]:
    return [c.strip() for c in value.split(",") if c.strip()]


def cmd_radix(args: argparse.Namespace) -> int:
    tech = Technology(
        "cli", args.bandwidth, args.delay, args.nodes, args.packet, 0
    )
    k_star = optimal_radix(tech)
    print(f"aspect ratio A = {tech.aspect_ratio:.1f}")
    print(f"latency-optimal radix k* = {k_star}")
    print(f"latency at k*: {packet_latency(k_star, tech) * 1e9:.1f} ns")
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    from .faults import FaultPlan

    for name in ("corrupt_rate", "credit_loss"):
        rate = getattr(args, name)
        if not 0.0 <= rate < 1.0:
            print(f"network: {name.replace('_', '-')} {rate} "
                  f"outside [0, 1)", file=sys.stderr)
            return 2
    if args.shards and args.sanitize:
        print("network: --shards and --sanitize cannot be combined",
              file=sys.stderr)
        return 2
    plan = FaultPlan(
        corrupt_rate=args.corrupt_rate,
        credit_loss_rate=args.credit_loss,
    )
    rows = []
    for name, radix, levels in (
        ("high-radix", args.high_radix, args.high_levels),
        ("low-radix", args.low_radix, args.low_levels),
    ):
        cfg = NetworkConfig(radix=radix, levels=levels)
        if args.shards:
            from .network import ShardedNetworkSimulation

            sim = ShardedNetworkSimulation(
                cfg, args.load, shards=args.shards,
                faults=plan if plan.enabled else None,
                scheduler=args.scheduler,
            )
            try:
                r = sim.run(warmup=args.warmup, measure=args.measure,
                            drain=args.drain)
            finally:
                sim.close()
        else:
            sim = ClosNetworkSimulation(
                cfg, args.load, sanitize=args.sanitize,
                faults=plan if plan.enabled else None,
                scheduler=args.scheduler,
            )
            r = sim.run(warmup=args.warmup, measure=args.measure,
                        drain=args.drain)
        rows.append((
            name, radix, 2 * levels - 1, sim.topology.num_hosts,
            f"{r.avg_latency:.1f}", f"{r.throughput:.3f}",
        ))
    print(format_table(
        ["network", "radix", "stages", "hosts", "avg latency",
         "throughput"],
        rows,
        title=f"Clos comparison at load {args.load}"
              + (f", corrupt-rate {args.corrupt_rate}"
                 if plan.enabled else ""),
    ))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    config = RouterConfig(
        radix=args.radix, subswitch_size=args.subswitch,
        sa_latency=args.sa_latency, flit_cycles=args.flit_cycles,
    )
    print(compare_pipelines(config))
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    config = RouterConfig(
        radix=args.radix, num_vcs=args.vcs, subswitch_size=args.subswitch
    )
    model = AreaModel()
    rows = []
    for name, key in AREA_KEYS.items():
        bits = storage_bits(key, config)
        rows.append((
            name, f"{bits:,}", f"{model.storage_area(bits):.1f}",
            f"{model.total_area(key, config):.1f}",
        ))
    print(format_table(
        ["architecture", "storage (bits)", "storage area (mm^2)",
         "total area (mm^2)"],
        rows,
        title=f"radix {args.radix}, v={args.vcs}, p={args.subswitch}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="High-radix router microarchitecture experiments "
                    "(Kim, Dally, Towles, Gupta; ISCA 2005).",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    sweep = subs.add_parser("sweep", help="latency-load curve")
    sweep.add_argument("--arch", choices=ARCHITECTURES, default="hierarchical")
    sweep.add_argument("--loads", default="0.1,0.3,0.5,0.7,0.9")
    sweep.add_argument("--plot", action="store_true",
                       help="also render an ASCII plot")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="evaluate load points in N parallel "
                            "processes (default: 1, serial; results "
                            "are identical either way)")
    _add_router_args(sweep)
    _add_scheduler_arg(sweep)
    sweep.set_defaults(func=cmd_sweep)

    sat = subs.add_parser("saturate", help="saturation throughput")
    sat.add_argument("--arch", choices=list(ARCHITECTURES) + ["all"],
                     default="all")
    _add_router_args(sat)
    sat.set_defaults(func=cmd_saturate)

    run = subs.add_parser("run", help="single measured run (sanitizable)")
    run.add_argument("--arch", choices=ARCHITECTURES, default="hierarchical")
    run.add_argument("--load", type=float, default=0.5)
    run.add_argument("--checkpoint-every", type=int, default=0,
                     metavar="N",
                     help="pause every N cycles and save a resumable "
                          "checkpoint to --checkpoint")
    run.add_argument("--checkpoint", default="run.ckpt", metavar="PATH",
                     help="checkpoint file written by --checkpoint-every "
                          "(default: run.ckpt)")
    run.add_argument("--resume", default=None, metavar="PATH",
                     help="resume a run from a checkpoint file instead of "
                          "starting fresh (byte-identical to the "
                          "uninterrupted run)")
    run.add_argument("--sanitize", action="store_true",
                     help="verify conservation invariants every cycle")
    _add_router_args(run)
    _add_scheduler_arg(run)
    run.set_defaults(func=cmd_run)

    trace = subs.add_parser(
        "trace", help="traced run: stage breakdown + Chrome trace JSON"
    )
    trace.add_argument("--arch", choices=ARCHITECTURES,
                       default="hierarchical")
    trace.add_argument("--load", type=float, default=0.5)
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="write Chrome trace-event JSON here "
                            "(open in Perfetto)")
    trace.add_argument("--every-nth", type=int, default=1,
                       help="trace every Nth packet (deterministic "
                            "packet-id sampling; default: all)")
    trace.add_argument("--ports", default=None,
                       help="comma-separated input ports to trace "
                            "(default: all)")
    trace.add_argument("--trace-vcs", default=None,
                       help="comma-separated VCs to trace (default: all)")
    trace.add_argument("--capacity", type=int, default=4096,
                       help="lifecycle-record ring buffer size")
    _add_router_args(trace)
    trace.set_defaults(func=cmd_trace)

    faults = subs.add_parser(
        "faults", help="fault-injection sweep: rate vs degradation"
    )
    faults.add_argument("--arch", choices=ARCHITECTURES, default="buffered")
    faults.add_argument("--load", type=float, default=0.5)
    faults.add_argument("--rates", default="0.0,0.01,0.05,0.1",
                        help="comma-separated flit corruption rates")
    faults.add_argument("--credit-loss", type=float, default=0.0,
                        help="credit-loss probability per delivery")
    faults.add_argument("--sanitize", action="store_true",
                        help="verify conservation invariants every cycle "
                             "(injected losses are accounted for)")
    _add_router_args(faults)
    _add_scheduler_arg(faults)
    faults.set_defaults(func=cmd_faults)

    wl = subs.add_parser(
        "workload",
        help="dependency-driven workload runs (collectives, "
             "request/reply, trace replay)",
    )
    wl.add_argument("--family",
                    choices=("request-reply", "allreduce", "alltoall",
                             "broadcast", "decode", "replay"),
                    default="allreduce")
    wl.add_argument("--target", choices=("network", "switch"),
                    default="network",
                    help="run on a folded Clos (ranks = hosts) or a "
                         "single switch (ranks = ports)")
    wl.add_argument("--ranks", type=int, default=0,
                    help="participating ranks (default: every "
                         "host/port of the target)")
    wl.add_argument("--algorithm",
                    choices=("ring", "recursive-doubling"),
                    default="ring",
                    help="all-reduce algorithm (allreduce/decode)")
    wl.add_argument("--sizes", default="1", metavar="N,N,...",
                    help="message sizes in flits to sweep")
    wl.add_argument("--windows", default="1", metavar="N,N,...",
                    help="request/reply outstanding windows to sweep")
    wl.add_argument("--layer-counts", default="2", metavar="N,N,...",
                    help="decode layer counts to sweep")
    wl.add_argument("--requests", type=int, default=4,
                    help="request/reply transactions per chain")
    wl.add_argument("--think", type=int, default=0,
                    help="request/reply client think time (cycles)")
    wl.add_argument("--service", type=int, default=0,
                    help="request/reply server service time (cycles)")
    wl.add_argument("--reply-size", type=int, default=4,
                    help="request/reply reply size (flits)")
    wl.add_argument("--steps", type=int, default=1,
                    help="decode steps")
    wl.add_argument("--gap", type=int, default=8,
                    help="decode compute gap between phases (cycles)")
    wl.add_argument("--replay", metavar="PATH", default=None,
                    help="CSV or Chrome-trace schedule to replay "
                         "(--family replay)")
    wl.add_argument("--arch", choices=ARCHITECTURES,
                    default="hierarchical",
                    help="switch organization (--target switch)")
    wl.add_argument("--radix", type=int, default=8)
    wl.add_argument("--levels", type=int, default=2,
                    help="Clos levels (--target network)")
    wl.add_argument("--vcs", type=int, default=4)
    wl.add_argument("--subswitch", type=int, default=8)
    wl.add_argument("--seed", type=int, default=1)
    wl.add_argument("--max-cycles", type=int, default=1_000_000,
                    help="abort a combination after this many cycles")
    wl.add_argument("--sanitize", action="store_true",
                    help="verify conservation invariants every cycle")
    wl.add_argument("--kill-links", type=int, default=0,
                    help="schedule N dead inter-router links "
                         "(network target)")
    wl.add_argument("--kill-at", type=int, default=5,
                    help="cycle the scheduled links go down")
    wl.add_argument("--heal-at", type=int, default=None,
                    help="cycle the scheduled links come back "
                         "(default: never)")
    wl.add_argument("--corrupt-rate", type=float, default=0.0,
                    help="host-channel flit corruption probability")
    wl.add_argument("--credit-loss", type=float, default=0.0,
                    help="credit-loss probability per delivery")
    _add_scheduler_arg(wl)
    wl.set_defaults(func=cmd_workload)

    lint = subs.add_parser(
        "lint", help="whole-program AST lint pass (R001-R014)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", type=_codes_arg, default=None,
                      metavar="CODES",
                      help="comma-separated rule codes to run exclusively "
                           "(e.g. R006,R008)")
    lint.add_argument("--ignore", type=_codes_arg, default=None,
                      metavar="CODES",
                      help="comma-separated rule codes to skip")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="output format (json/sarif are deterministic)")
    lint.add_argument("--output", default=None, metavar="FILE",
                      help="write the report to FILE instead of stdout")
    lint.add_argument("--cache", default=".lint-cache.json", metavar="FILE",
                      help="summary-cache store keyed on content hashes "
                           "(default: .lint-cache.json)")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the summary cache for this run")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppress findings recorded in this baseline "
                           "file")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings to --baseline and exit 0")
    lint.set_defaults(func=cmd_lint)

    radix = subs.add_parser("radix", help="Section 2 optimal radix")
    radix.add_argument("--bandwidth", type=float, required=True,
                       help="router bandwidth, bits/s")
    radix.add_argument("--delay", type=float, required=True,
                       help="per-hop router delay, s")
    radix.add_argument("--nodes", type=int, required=True)
    radix.add_argument("--packet", type=int, required=True,
                       help="packet length, bits")
    radix.set_defaults(func=cmd_radix)

    net = subs.add_parser("network", help="Figure 19 Clos comparison")
    net.add_argument("--load", type=float, default=0.5)
    net.add_argument("--high-radix", type=int, default=16)
    net.add_argument("--high-levels", type=int, default=2)
    net.add_argument("--low-radix", type=int, default=8)
    net.add_argument("--low-levels", type=int, default=3)
    net.add_argument("--warmup", type=int, default=600)
    net.add_argument("--measure", type=int, default=800)
    net.add_argument("--drain", type=int, default=8000)
    net.add_argument("--sanitize", action="store_true",
                     help="check link credit conservation every cycle")
    net.add_argument("--shards", type=int, default=0, metavar="N",
                     help="partition each Clos across N worker processes "
                          "(byte-identical to the serial run)")
    net.add_argument("--corrupt-rate", type=float, default=0.0,
                     help="host-channel flit corruption probability "
                          "(builds a fault plan when nonzero)")
    net.add_argument("--credit-loss", type=float, default=0.0,
                     help="credit-loss probability per delivery")
    _add_scheduler_arg(net)
    net.set_defaults(func=cmd_network)

    pipe = subs.add_parser("pipeline",
                           help="render the Figure 5/7 pipeline diagrams")
    pipe.add_argument("--radix", type=int, default=64)
    pipe.add_argument("--subswitch", type=int, default=8)
    pipe.add_argument("--sa-latency", type=int, default=3)
    pipe.add_argument("--flit-cycles", type=int, default=4)
    pipe.set_defaults(func=cmd_pipeline)

    area = subs.add_parser("area", help="storage/area comparison")
    area.add_argument("--radix", type=int, default=64)
    area.add_argument("--vcs", type=int, default=4)
    area.add_argument("--subswitch", type=int, default=8)
    area.set_defaults(func=cmd_area)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
