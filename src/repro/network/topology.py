"""Folded-Clos (fat-tree) topology builder (Section 7, Figure 19).

The paper's network experiment configures routers "as a Clos network
with three stages for the radix-64 routers and five stages for the
radix-16 routers" and routes obliviously ("middle stages are selected
randomly").  An unfolded (2s-1)-stage Clos is the folded network with
s levels, so we build folded Clos networks directly:

* ``levels`` switch levels of radix-k switches, with m = k/2 down
  ports and m up ports per switch (the top level uses only its m down
  ports);
* N = m^levels hosts; every level contains m^(levels-1) switches;
* switch addressing (level l, subtree t, position i): subtree t groups
  the m^(l+1) hosts below it, position i distinguishes the m^l
  switches serving that subtree at level l.

``levels = 2`` is the paper's "three-stage" network and ``levels = 3``
the "five-stage" one.  Routing goes up to the lowest common ancestor
level — choosing an *arbitrary* up port at each step, which is where
the oblivious randomization lives — then deterministically down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.rng import Rng
from ..core.errors import invariant

#: A switch address: (level, subtree, position).
SwitchId = Tuple[int, int, int]


@dataclass(frozen=True)
class PortRef:
    """One endpoint: a switch port, or a host port when switch is None."""

    switch: Optional[SwitchId]
    port: int
    host: Optional[int] = None


class FoldedClos:
    """A folded Clos network of radix-k switches.

    Args:
        radix: Switch radix k (must be even; m = k/2).
        levels: Number of switch levels (unfolded stages = 2*levels-1).
    """

    def __init__(self, radix: int, levels: int) -> None:
        if radix < 4 or radix % 2 != 0:
            raise ValueError(f"radix must be even and >= 4, got {radix}")
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.radix = radix
        self.levels = levels
        self.m = radix // 2
        self.num_hosts = self.m ** levels
        self.switches_per_level = self.m ** (levels - 1)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    @property
    def num_switches(self) -> int:
        return self.levels * self.switches_per_level

    @property
    def stages_unfolded(self) -> int:
        """The stage count the paper quotes (3 for levels=2, 5 for 3)."""
        return 2 * self.levels - 1

    def switch_ids(self) -> List[SwitchId]:
        ids = []
        m = self.m
        for level in range(self.levels):
            for subtree in range(m ** (self.levels - 1 - level)):
                for pos in range(m ** level):
                    ids.append((level, subtree, pos))
        return ids

    def ports_used(self, switch: SwitchId) -> int:
        """Ports in use: k below the top level, m at the top."""
        level, _, _ = switch
        return self.m if level == self.levels - 1 else self.radix

    def wired_ports(self, switch: SwitchId) -> List[int]:
        """Every used port of a Clos switch is wired."""
        return list(range(self.ports_used(switch)))

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    # Port numbering per switch: 0..m-1 are DOWN ports (children or
    # hosts), m..2m-1 are UP ports (parents); top switches have only
    # down ports.

    def down_neighbor(self, switch: SwitchId, port: int) -> PortRef:
        """Endpoint reached from down port ``port`` of ``switch``."""
        level, subtree, pos = self._check(switch)
        m = self.m
        if not 0 <= port < m:
            raise ValueError(f"down port {port} out of range 0..{m - 1}")
        if level == 0:
            host = subtree * m + port
            return PortRef(switch=None, port=0, host=host)
        child_sub = subtree * m + port
        child_pos = pos % (m ** (level - 1))
        up_port = pos // (m ** (level - 1))
        return PortRef(
            switch=(level - 1, child_sub, child_pos), port=m + up_port
        )

    def up_neighbor(self, switch: SwitchId, port: int) -> PortRef:
        """Endpoint reached from up port ``port`` (m..2m-1)."""
        level, subtree, pos = self._check(switch)
        m = self.m
        if level == self.levels - 1:
            raise ValueError("top-level switches have no up ports")
        if not m <= port < 2 * m:
            raise ValueError(f"up port {port} out of range {m}..{2 * m - 1}")
        u = port - m
        parent_sub = subtree // m
        parent_pos = pos + u * (m ** level)
        down_port = subtree % m
        return PortRef(
            switch=(level + 1, parent_sub, parent_pos), port=down_port
        )

    def neighbor(self, switch: SwitchId, port: int) -> PortRef:
        """Endpoint reached from any port of ``switch``."""
        if port < self.m:
            return self.down_neighbor(switch, port)
        return self.up_neighbor(switch, port)

    def host_attachment(self, host: int) -> PortRef:
        """The leaf switch port a host connects to."""
        if not 0 <= host < self.num_hosts:
            raise ValueError(
                f"host {host} out of range 0..{self.num_hosts - 1}"
            )
        return PortRef(
            switch=(0, host // self.m, 0), port=host % self.m
        )

    def _check(self, switch: SwitchId) -> SwitchId:
        level, subtree, pos = switch
        m = self.m
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= subtree < m ** (self.levels - 1 - level):
            raise ValueError(f"subtree {subtree} out of range at level {level}")
        if not 0 <= pos < m ** level:
            raise ValueError(f"position {pos} out of range at level {level}")
        return switch

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def lca_level(self, src_host: int, dst_host: int) -> int:
        """Lowest level whose subtrees contain both hosts."""
        m = self.m
        for level in range(self.levels):
            if src_host // (m ** (level + 1)) == dst_host // (m ** (level + 1)):
                return level
        raise AssertionError("hosts share the root subtree by construction")

    def hop_count(self, src_host: int, dst_host: int) -> int:
        """Routers traversed on a minimal up*/down* path."""
        return 2 * self.lca_level(src_host, dst_host) + 1

    def route(
        self, src_host: int, dst_host: int, rng: Rng
    ) -> List[int]:
        """Oblivious source route: output port at each router on the path.

        Up ports are chosen uniformly at random (random middle-stage
        selection); the descent is the unique deterministic path.
        """
        if not 0 <= dst_host < self.num_hosts:
            raise ValueError(f"dst_host {dst_host} out of range")
        lca = self.lca_level(src_host, dst_host)
        m = self.m
        ports: List[int] = []
        switch = self.host_attachment(src_host).switch
        invariant(switch is not None, "host attaches to no switch",
                  check="topology")
        # Ascend: random up port at each level below the LCA.
        for _ in range(lca):
            port = m + rng.randrange(m)
            ports.append(port)
            switch = self.up_neighbor(switch, port).switch
            invariant(switch is not None, "up port leads outside the "
                      "switch fabric", port=port, check="topology")
        # Descend: pick the down port toward dst at each level.
        for level in range(lca, -1, -1):
            port = (dst_host // (m ** level)) % m
            ports.append(port)
            nxt = self.down_neighbor(switch, port)
            switch = nxt.switch
        return ports

    def route_avoiding(
        self,
        src_host: int,
        dst_host: int,
        rng: Rng,
        link_ok,
        max_tries: int = 16,
    ) -> Optional[List[int]]:
        """A minimal route using only links ``link_ok`` approves.

        ``link_ok(switch_id, port)`` vets each directed hop.  The
        ascent chooses uniformly among the *approved* up ports (the
        path diversity of the Clos is exactly what graceful degradation
        leans on); because the descent from a given middle switch is
        unique, a dead down-link can only be avoided by re-rolling the
        ascent — hence up to ``max_tries`` whole-path attempts.
        Returns None when no approved path was found (the caller
        decides whether to fall back to a blind route).
        """
        lca = self.lca_level(src_host, dst_host)
        m = self.m
        start = self.host_attachment(src_host).switch
        invariant(start is not None, "host attaches to no switch",
                  check="topology")
        for _ in range(max_tries):
            ports: List[int] = []
            switch = start
            ok = True
            for _ in range(lca):
                allowed = [
                    m + u for u in range(m) if link_ok(switch, m + u)
                ]
                if not allowed:
                    ok = False
                    break
                port = allowed[rng.randrange(len(allowed))]
                ports.append(port)
                switch = self.up_neighbor(switch, port).switch
            if not ok:
                continue
            for level in range(lca, -1, -1):
                port = (dst_host // (m ** level)) % m
                if not link_ok(switch, port):
                    ok = False
                    break
                ports.append(port)
                switch = self.down_neighbor(switch, port).switch
            if ok:
                return ports
        return None

    def average_hop_count(self) -> float:
        """Expected routers traversed under uniform random traffic."""
        m, n = self.m, self.num_hosts
        total = 0.0
        # P(lca == l) for a uniform random destination (including src).
        for level in range(self.levels):
            within = m ** (level + 1)
            below = m ** level
            p = (within - below) / n
            total += p * (2 * level + 1)
        # Destinations equal to the source route through 1 router.
        total += (1 / n) * 1
        return total


class Topology:
    """Protocol for network topologies consumable by the simulator.

    Any topology must expose:

    * ``num_hosts`` — number of terminal hosts;
    * ``switch_ids()`` — hashable identifiers for all switches;
    * ``ports_used(switch)`` — ports wired on a given switch;
    * ``neighbor(switch, port)`` — the :class:`PortRef` a port leads to
      (a switch port, or a host when ``switch is None``);
    * ``host_attachment(host)`` — the switch port a host injects into;
    * ``route(src_host, dst_host, rng)`` — output ports of a path.

    Optionally, ``route_avoiding(src, dst, rng, link_ok)`` returns a
    path using only links the ``link_ok(switch, port)`` predicate
    approves (or None) — the fault injector
    (:mod:`repro.faults`) uses it to reroute around dead links and
    falls back to re-rolling ``route`` when it is absent.

    :class:`FoldedClos` and :class:`~repro.network.mesh.Mesh` both
    satisfy this protocol (duck-typed; this class exists for
    documentation and isinstance-free type hints).
    """

    num_hosts: int

    def switch_ids(self):  # pragma: no cover - protocol stub
        raise NotImplementedError

    def ports_used(self, switch):  # pragma: no cover - protocol stub
        raise NotImplementedError

    def neighbor(self, switch, port):  # pragma: no cover - protocol stub
        raise NotImplementedError

    def host_attachment(self, host):  # pragma: no cover - protocol stub
        raise NotImplementedError

    def route(self, src_host, dst_host, rng):  # pragma: no cover
        raise NotImplementedError
