"""Network simulation (Figure 19 and beyond).

Wires :class:`~repro.network.router.NetworkRouter` instances according
to any topology satisfying :class:`~repro.network.topology.Topology`
(the folded Clos of Figure 19, the mesh of
:mod:`repro.network.mesh`, ...), attaches hosts with Bernoulli traffic
sources, routes packets with the topology's routing function, and
measures packet latency from generation to tail arrival — the same
warm-up / label / drain methodology as the switch-level harness.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import invariant
from ..core.flit import Flit, make_packet
from ..core.rng import derive_rng
from ..engine import EngineHooks, Scheduler
from ..harness.stats import LatencySample, RunResult, summarize
from .router import NetworkRouter, NetworkRouterConfig, OutputLink, pipeline_depth_for_radix
from .topology import FoldedClos, SwitchId, Topology


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of a Clos network experiment."""

    radix: int = 16
    levels: int = 2
    num_vcs: int = 4
    buffer_depth: int = 8
    flit_cycles: int = 4
    channel_latency: int = 1
    credit_latency: int = 1
    packet_size: int = 1
    pipeline_delay: Optional[int] = None  # default: scale with log2(radix)
    seed: int = 1

    def router_config(self, num_ports: int) -> NetworkRouterConfig:
        depth = (
            self.pipeline_delay
            if self.pipeline_delay is not None
            else pipeline_depth_for_radix(self.radix)
        )
        return NetworkRouterConfig(
            num_ports=num_ports,
            num_vcs=self.num_vcs,
            buffer_depth=self.buffer_depth,
            flit_cycles=self.flit_cycles,
            pipeline_delay=depth,
            channel_latency=self.channel_latency,
            credit_latency=self.credit_latency,
        )


class _RouterSink:
    """Delivery callable for a router-to-router channel.

    A module-level class rather than a closure so the wired network
    stays picklable for checkpoint/restore; the sanitizer reads the
    wiring off :attr:`target`/:attr:`port`.
    """

    __slots__ = ("sim", "target", "port")

    def __init__(
        self, sim: "NetworkSimulation", target: NetworkRouter, port: int
    ) -> None:
        self.sim = sim
        self.target = target
        self.port = port

    def __call__(self, flit: Flit, arrival: int) -> None:
        sim = self.sim
        heapq.heappush(
            sim._inflight,
            (arrival, next(sim._seq), flit, (self.target, self.port)),
        )


class _HostSink:
    """Delivery callable for a router-to-host ejection channel."""

    __slots__ = ("sim", "host")

    def __init__(self, sim: "NetworkSimulation", host: Optional[int]) -> None:
        self.sim = sim
        self.host = host

    def __call__(self, flit: Flit, arrival: int) -> None:
        sim = self.sim
        heapq.heappush(
            sim._inflight, (arrival, next(sim._seq), flit, self.host)
        )


class _CreditSink:
    """Credit-return callable restoring an upstream link's counter."""

    __slots__ = ("link",)

    def __init__(self, link: OutputLink) -> None:
        self.link = link

    def __call__(self, vc: int) -> None:
        self.link.restore_credit(vc)


class NetworkSimulation:
    """End-to-end simulation of a network of routers on any topology."""

    def __init__(
        self,
        config: NetworkConfig,
        load: float,
        topology: Optional[Topology] = None,
        host_pattern: Optional[object] = None,
        sanitize: bool = False,
        active_set: bool = True,
        faults: Optional[object] = None,
    ) -> None:
        """Args:
            config: Router/channel parameters (``radix``/``levels`` are
                only used when ``topology`` is omitted, in which case a
                folded Clos is built from them).
            load: Offered load as a fraction of host channel capacity.
            topology: Any object satisfying the Topology protocol.
            host_pattern: Optional traffic pattern over *hosts* (a
                :class:`~repro.traffic.patterns.TrafficPattern` built
                for ``topology.num_hosts`` ports); uniform random when
                omitted.
            sanitize: Run a :class:`~repro.analysis.NetworkSanitizer`
                check (link credit conservation, buffer bounds) after
                every cycle; it attaches through the engine hooks.
            active_set: Park idle routers (no buffered flits, no
                pending credits) and skip them until a flit arrival
                wakes them.  Byte-identical to stepping everything;
                False forces the exhaustive reference schedule.
            faults: Optional :class:`~repro.faults.FaultPlan`.  When
                set (and enabled), a
                :class:`~repro.faults.NetworkFaultInjector` drives
                host-channel corruption, inter-router credit loss with
                resync, and the scheduled dead-link faults; routing
                avoids dead links.  None (or a disabled plan) keeps
                the simulation byte-identical to a plain run.
        """
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.config = config
        self.load = load
        self.topology = topology or FoldedClos(config.radix, config.levels)
        self._host_pattern = host_pattern
        self.cycle = 0
        self._build_network()
        #: Simulation-level event bus; ``cycle_start``/``cycle_end``
        #: span the whole router set.  Instrumentation (sanitizer,
        #: metrics, tracing) attaches here.
        self.hooks = EngineHooks()
        self._scheduler = Scheduler(
            self.routers.values(), hooks=self.hooks, active_set=active_set
        )
        n = self.topology.num_hosts
        cap = 1.0 / config.flit_cycles
        self._packet_rate = load * cap / config.packet_size
        self._rngs = [derive_rng(config.seed, "net", h) for h in range(n)]
        self._route_rng = derive_rng(config.seed, "route")
        self._source_q: List[List[Flit]] = [[] for _ in range(n)]
        self._next_inject = [0] * n
        self._packet_vc: List[Optional[int]] = [None] * n
        self._vc_rr = [0] * n
        self._measuring = False
        self._count_flits = False
        self._outstanding = 0
        self._labeled_total = 0
        self.sample = LatencySample()
        self.measured_flits = 0
        # Global in-flight flit event queue: (arrival, seq, flit, target).
        self._inflight: List[Tuple[int, int, Flit, object]] = []
        self._seq = itertools.count()
        if faults is not None and faults.enabled:
            # Imported lazily: faults sits above the network layer.
            from ..faults import NetworkFaultInjector

            self._faults: Optional[NetworkFaultInjector] = (
                NetworkFaultInjector(faults, self, config.seed)
            )
        else:
            self._faults = None
        if sanitize:
            # Imported lazily: analysis sits above the network layer.
            from ..analysis.sanitizer import NetworkSanitizer

            self._sanitizer: Optional[NetworkSanitizer] = NetworkSanitizer(self)
        else:
            self._sanitizer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_network(self) -> None:
        topo = self.topology
        self.routers: Dict[SwitchId, NetworkRouter] = {}
        for sid in topo.switch_ids():
            ports = topo.ports_used(sid)
            self.routers[sid] = NetworkRouter(
                self.config.router_config(ports), name=str(sid)
            )
        # Wire every connected port of every switch.
        for sid, router in self.routers.items():
            for port in topo.wired_ports(sid):
                ref = topo.neighbor(sid, port)
                if ref.switch is None:
                    link = OutputLink(
                        self.config.num_vcs,
                        _HostSink(self, ref.host),
                        downstream_depth=None,
                    )
                else:
                    target = self.routers[ref.switch]
                    link = OutputLink(
                        self.config.num_vcs,
                        _RouterSink(self, target, ref.port),
                        downstream_depth=self.config.buffer_depth,
                    )
                    # Credit return path: when the downstream router
                    # frees the slot, restore this link's counter.
                    target.credit_sinks[ref.port] = _CreditSink(link)
                router.attach(port, link)

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        now = self.cycle
        if self._faults is not None:
            # Apply scheduled link faults and deliver due credit
            # resyncs before anything else observes this cycle.
            self._faults.advance(now)
        self._deliver_arrivals(now)
        self._generate(now)
        self._inject(now)
        # Two-phase engine cycle over all active routers; instrumentation
        # (including the sanitizer's per-cycle check) fires from the
        # scheduler's cycle_end hook.
        self._scheduler.run_cycle(now)
        self.cycle += 1

    def _deliver_arrivals(self, now: int) -> None:
        while self._inflight and self._inflight[0][0] <= now:
            _, _, flit, target = heapq.heappop(self._inflight)
            if isinstance(target, tuple):
                router, port = target
                self._scheduler.wake(router, now)
                router.accept(port, flit)
            else:
                # Host ejection.
                if self._count_flits:
                    self.measured_flits += 1
                if flit.is_tail and flit.measured:
                    self.sample.add(now - flit.created_at)
                    self._outstanding -= 1

    def _generate(self, now: int) -> None:
        for host in range(self.topology.num_hosts):
            rng = self._rngs[host]
            if rng.random() >= self._packet_rate:
                continue
            if self._host_pattern is None:
                dest = rng.randrange(self.topology.num_hosts)
            else:
                dest = self._host_pattern.dest(host, rng)
            if self._faults is not None:
                route = self._faults.route(
                    self.topology, host, dest, self._route_rng
                )
            else:
                route = self.topology.route(host, dest, self._route_rng)
            flits = make_packet(
                dest=dest,
                size=self.config.packet_size,
                src=host,
                created_at=now,
                measured=self._measuring,
                route=route,
            )
            self._source_q[host].extend(flits)
            if self._measuring:
                self._outstanding += 1
                self._labeled_total += 1

    def _inject(self, now: int) -> None:
        topo = self.topology
        faults = self._faults
        for host in range(topo.num_hosts):
            if now < self._next_inject[host] or not self._source_q[host]:
                continue
            if faults is not None and not faults.channel_ready(host, now):
                continue
            flit = self._source_q[host][0]
            attach = topo.host_attachment(host)
            invariant(attach.switch is not None,
                      "host attaches to no switch", cycle=now,
                      check="topology")
            router = self.routers[attach.switch]
            vc = self._packet_vc[host]
            if flit.is_head and vc is None:
                vc = self._pick_vc(router, attach.port, host)
                if vc is None:
                    continue
                self._packet_vc[host] = vc
            invariant(vc is not None, "packet VC lost mid-packet",
                      cycle=now, port=attach.port, check="injection")
            if router.input_space(attach.port, vc) < 1:
                continue
            flit.vc = vc
            if faults is not None and not faults.attempt_transmit(
                host, flit, now
            ):
                # Corrupted on the wire: the receiver's CRC check drops
                # it, the sender keeps it queued for retransmission.
                # The corrupted transmission still occupied the channel.
                self._next_inject[host] = now + self.config.flit_cycles
                continue
            self._source_q[host].pop(0)
            self._scheduler.wake(router, now)
            router.accept(attach.port, flit)
            self._next_inject[host] = now + self.config.flit_cycles
            if flit.is_tail:
                self._packet_vc[host] = None

    def _pick_vc(self, router: NetworkRouter, port: int, host: int) -> Optional[int]:
        v = self.config.num_vcs
        for offset in range(v):
            vc = (self._vc_rr[host] + offset) % v
            if router.input_space(port, vc) >= 1:
                self._vc_rr[host] = (vc + 1) % v
                return vc
        return None

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(
        self, warmup: int = 2000, measure: int = 2000, drain: int = 30000
    ) -> RunResult:
        for _ in range(warmup):
            self.step()
        self._measuring = True
        self._count_flits = True
        start = self.cycle
        for _ in range(measure):
            self.step()
        self._measuring = False
        measured_cycles = self.cycle - start
        self._count_flits = False
        steps = 0
        while self._outstanding > 0 and steps < drain:
            self.step()
            steps += 1
        frac = (
            1.0
            if self._labeled_total == 0
            else 1.0 - self._outstanding / self._labeled_total
        )
        result = summarize(
            offered_load=self.load,
            sample=self.sample,
            measured_flits=self.measured_flits,
            measured_cycles=measured_cycles,
            num_ports=self.topology.num_hosts,
            capacity=1.0 / self.config.flit_cycles,
            saturated=frac < 0.999,
            cycles=self.cycle,
        )
        if self._faults is not None:
            for name in sorted(self._faults.counters):
                result.extra[f"stats.{name}"] = float(
                    self._faults.counters[name]
                )
        return result


class ClosNetworkSimulation(NetworkSimulation):
    """Figure 19's configuration: a folded Clos built from ``config``."""

    def __init__(
        self,
        config: NetworkConfig,
        load: float,
        sanitize: bool = False,
        active_set: bool = True,
        faults: Optional[object] = None,
    ) -> None:
        super().__init__(config, load, sanitize=sanitize,
                         active_set=active_set, faults=faults)


def run_network_sweep(
    config: NetworkConfig,
    loads,
    label: str = "",
    topology=None,
    warmup: int = 2000,
    measure: int = 2000,
    drain: int = 30000,
):
    """Load-latency curve over a network (the Figure 19 sweep).

    Returns a :class:`~repro.harness.experiment.SweepResult`, so the
    same reporting and plotting helpers apply to network curves as to
    single-router curves.
    """
    from ..harness.experiment import SweepResult

    sweep = SweepResult(label=label or "network")
    for load in loads:
        sim = NetworkSimulation(config, load, topology=topology)
        sweep.results.append(sim.run(warmup=warmup, measure=measure,
                                     drain=drain))
    return sweep
