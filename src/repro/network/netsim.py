"""Network simulation (Figure 19 and beyond).

Wires :class:`~repro.network.router.NetworkRouter` instances according
to any topology satisfying :class:`~repro.network.topology.Topology`
(the folded Clos of Figure 19, the mesh of
:mod:`repro.network.mesh`, ...), attaches hosts with Bernoulli traffic
sources, routes packets with the topology's routing function, and
measures packet latency from generation to tail arrival — the same
warm-up / label / drain methodology as the switch-level harness.
"""

from __future__ import annotations

import copy
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.errors import invariant
from ..core.flit import Flit, make_packet, packet_id_state, set_packet_id_state
from ..core.rng import derive_rng
from ..engine import EngineHooks, make_scheduler
from ..harness.stats import LatencySample, RunResult, summarize
from ..workloads.base import Message, Workload
from .router import NetworkRouter, NetworkRouterConfig, OutputLink, pipeline_depth_for_radix
from .topology import FoldedClos, SwitchId, Topology

try:  # Optional: bulk arrival pre-drawing (event mode fast path).
    import numpy as _np
except ImportError:  # pragma: no cover - baked into the dev image
    _np = None  # type: ignore[assignment]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of a Clos network experiment."""

    radix: int = 16
    levels: int = 2
    num_vcs: int = 4
    buffer_depth: int = 8
    flit_cycles: int = 4
    channel_latency: int = 1
    credit_latency: int = 1
    packet_size: int = 1
    pipeline_delay: Optional[int] = None  # default: scale with log2(radix)
    seed: int = 1
    #: Vectorized candidate scans in every router (repro.core.batch);
    #: byte-identical results, ignored when numpy is unavailable.
    batch_hot_path: bool = False

    def router_config(self, num_ports: int) -> NetworkRouterConfig:
        depth = (
            self.pipeline_delay
            if self.pipeline_delay is not None
            else pipeline_depth_for_radix(self.radix)
        )
        return NetworkRouterConfig(
            num_ports=num_ports,
            num_vcs=self.num_vcs,
            buffer_depth=self.buffer_depth,
            flit_cycles=self.flit_cycles,
            pipeline_delay=depth,
            channel_latency=self.channel_latency,
            credit_latency=self.credit_latency,
            batch_hot_path=self.batch_hot_path,
        )


class _RouterSink:
    """Delivery callable for a router-to-router channel.

    A module-level class rather than a closure so the wired network
    stays picklable for checkpoint/restore; the sanitizer reads the
    wiring off :attr:`target`/:attr:`port`.
    """

    __slots__ = ("sim", "target", "port")

    def __init__(
        self, sim: "NetworkSimulation", target: NetworkRouter, port: int
    ) -> None:
        self.sim = sim
        self.target = target
        self.port = port

    def __call__(self, flit: Flit, arrival: int) -> None:
        sim = self.sim
        heapq.heappush(
            sim._inflight,
            (arrival, next(sim._seq), flit, (self.target, self.port)),
        )


class _HostSink:
    """Delivery callable for a router-to-host ejection channel."""

    __slots__ = ("sim", "host")

    def __init__(self, sim: "NetworkSimulation", host: Optional[int]) -> None:
        self.sim = sim
        self.host = host

    def __call__(self, flit: Flit, arrival: int) -> None:
        sim = self.sim
        heapq.heappush(
            sim._inflight, (arrival, next(sim._seq), flit, self.host)
        )


class _CreditSink:
    """Credit-return callable restoring an upstream link's counter."""

    __slots__ = ("link",)

    def __init__(self, link: OutputLink) -> None:
        self.link = link

    def __call__(self, vc: int) -> None:
        self.link.restore_credit(vc)


class NetworkSimulation:
    """End-to-end simulation of a network of routers on any topology."""

    #: Attributes :meth:`snapshot` deliberately omits (lint rule R010):
    #: construction parameters (``config``/``load``/``topology``/
    #: ``_host_pattern``/``_event_mode``/``_trace_switch``), the hook
    #: bus, ``_packet_rate`` (a pure function of config and load), and
    #: the numpy arrival mirrors, which restore re-derives from the
    #: restored Python RNG streams (see :meth:`snapshot`).
    SNAPSHOT_WIRING = (
        "config", "load", "topology", "_host_pattern", "hooks",
        "_event_mode", "_trace_switch", "_packet_rate", "_np_streams",
    )

    def __init__(
        self,
        config: NetworkConfig,
        load: float = 0.0,
        topology: Optional[Topology] = None,
        host_pattern: Optional[object] = None,
        sanitize: bool = False,
        active_set: bool = True,
        faults: Optional[object] = None,
        scheduler: str = "cycle",
        workload: Optional[Workload] = None,
        tracer=None,
        trace_switch: Optional[SwitchId] = None,
    ) -> None:
        """Args:
            config: Router/channel parameters (``radix``/``levels`` are
                only used when ``topology`` is omitted, in which case a
                folded Clos is built from them).
            load: Offered load as a fraction of host channel capacity.
            topology: Any object satisfying the Topology protocol.
            host_pattern: Optional traffic pattern over *hosts* (a
                :class:`~repro.traffic.patterns.TrafficPattern` built
                for ``topology.num_hosts`` ports); uniform random when
                omitted.
            sanitize: Run a :class:`~repro.analysis.NetworkSanitizer`
                check (link credit conservation, buffer bounds) after
                every cycle; it attaches through the engine hooks.
            active_set: Park idle routers (no buffered flits, no
                pending credits) and skip them until a flit arrival
                wakes them.  Byte-identical to stepping everything;
                False forces the exhaustive reference schedule.
            faults: Optional :class:`~repro.faults.FaultPlan`.  When
                set (and enabled), a
                :class:`~repro.faults.NetworkFaultInjector` drives
                host-channel corruption, inter-router credit loss with
                resync, and the scheduled dead-link faults; routing
                avoids dead links.  None (or a disabled plan) keeps
                the simulation byte-identical to a plain run.
            scheduler: Drive loop: ``"cycle"`` executes every cycle;
                ``"event"`` fast-forwards over spans with no busy
                router, no due flit delivery, no pre-drawn host
                arrival, no injectable backlog, and no scheduled fault
                event.  Byte-identical results either way; only the
                ``stats.engine.*`` counters and wall-clock differ.
            workload: Optional dependency-driven workload (see
                :mod:`repro.workloads`) whose ranks map to host ids.
                Replaces the Bernoulli injection process entirely — a
                message injects at its host only once its DAG
                dependencies have been delivered.  Drive with
                :meth:`run_workload` instead of :meth:`run`.
            tracer: Optional :class:`~repro.trace.TraceCollector`
                tracing the router named by ``trace_switch`` (per-flit
                lifecycle records from that router, cycle counts and
                fault events network-wide).  Aggregate trace counters
                land in the run result's ``stats.trace.*`` extras.
            trace_switch: Which switch the tracer follows; defaults to
                the first switch in ``topology.switch_ids()`` order.
        """
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.config = config
        self.load = load
        self.topology = topology or FoldedClos(config.radix, config.levels)
        self._host_pattern = host_pattern
        self._workload = workload
        if workload is not None:
            if workload.num_ranks > self.topology.num_hosts:
                raise ValueError(
                    f"workload has {workload.num_ranks} ranks but the "
                    f"topology only has {self.topology.num_hosts} hosts"
                )
            if workload.has_self_sends:
                raise ValueError(
                    "workload contains self-send messages (src == "
                    "dest), which cannot be routed between hosts; "
                    "replay switch traces on --target switch"
                )
            # The injection process is replaced by DAG eligibility;
            # zeroing the rate also bypasses the arrival pre-draw
            # machinery (heap, numpy mirrors) in event mode.
            load = 0.0
        self._build_network()
        #: Simulation-level event bus; ``cycle_start``/``cycle_end``
        #: span the whole router set.  Instrumentation (sanitizer,
        #: metrics, tracing) attaches here.
        self.hooks = EngineHooks()
        self._scheduler = make_scheduler(
            scheduler,
            self.routers.values(),
            hooks=self.hooks,
            active_set=active_set,
        )
        self._event_mode = scheduler == "event"
        # Inverted drive loop: the scheduler owns the per-cycle phase
        # sequence; this harness contributes its pre-engine work and
        # (in event mode) its wake horizons.
        self._scheduler.add_pre_cycle(self._pre_cycle)
        self._scheduler.add_wake_source(self._next_work)
        self._tracer = tracer
        self._trace_switch: Optional[SwitchId] = None
        if tracer is not None:
            if trace_switch is None:
                trace_switch = next(iter(self.routers))
            if trace_switch not in self.routers:
                raise ValueError(
                    f"trace_switch {trace_switch!r} is not a switch of "
                    f"this topology"
                )
            self._trace_switch = trace_switch
            tracer.attach_network(self, trace_switch)
        n = self.topology.num_hosts
        cap = 1.0 / config.flit_cycles
        self._packet_rate = load * cap / config.packet_size
        self._rngs = [derive_rng(config.seed, "net", h) for h in range(n)]
        self._route_rng = derive_rng(config.seed, "route")
        self._source_q: List[List[Flit]] = [[] for _ in range(n)]
        #: Hosts with a non-empty source queue (superset is harmless).
        #: Event mode injects over this set instead of scanning all
        #: hosts; cycle mode maintains it too so the bookkeeping is
        #: exercised identically.
        self._backlog_hosts: set = set()
        self._next_inject = [0] * n
        self._packet_vc: List[Optional[int]] = [None] * n
        self._vc_rr = [0] * n
        self._measuring = False
        self._count_flits = False
        self._outstanding = 0
        self._labeled_total = 0
        #: Peak per-host injection-queue depth (flits) ever observed.
        self._peak_source_q = 0
        self.sample = LatencySample()
        self.measured_flits = 0
        #: Active staged run program (see :meth:`start_run`): plain
        #: data, so a snapshot taken mid-run carries it along.
        self._program: Optional[Dict[str, Any]] = None
        # Global in-flight flit event queue: (arrival, seq, flit, target).
        self._inflight: List[Tuple[int, int, Flit, object]] = []
        self._seq = itertools.count()
        if faults is not None and faults.enabled:
            # Imported lazily: faults sits above the network layer.
            from ..faults import NetworkFaultInjector

            self._faults: Optional[NetworkFaultInjector] = (
                NetworkFaultInjector(faults, self, config.seed)
            )
        else:
            self._faults = None
        if sanitize:
            # Imported lazily: analysis sits above the network layer.
            from ..analysis.sanitizer import NetworkSanitizer

            self._sanitizer: Optional[NetworkSanitizer] = NetworkSanitizer(self)
        else:
            self._sanitizer = None
        # Event mode pre-draws each host's next arrival into a binary
        # heap of (cycle, host) — the per-host draws are exactly the
        # ones cycle-by-cycle polling would make (each host owns a
        # private RNG stream), so prediction is byte-equivalent to the
        # lazy path; heap order reproduces the host-order iteration of
        # the per-cycle generate loop.  After the first arrival,
        # redraws are bounded by the run window (``_draw_limit``) so a
        # very low rate never forces draws far past the simulated
        # horizon; hosts with no arrival inside the window park in
        # ``_undrawn`` and resume their stream when the window grows.
        self._host_arrivals: List[Tuple[int, int]] = []
        self._arrival_cursor = [0] * n
        self._draw_limit = 0
        self._undrawn: Set[int] = set()
        # numpy mirrors of the per-host Mersenne streams: MT19937
        # produces bit-identical 53-bit doubles in both libraries, so
        # the mirror lets event mode search a whole run window for the
        # next Bernoulli hit in one vectorized pass instead of one
        # Python-level draw per host per cycle.
        self._np_streams: Optional[list] = None
        self._sync_cursor = [0] * n
        if self._event_mode and self._packet_rate > 0.0:
            self._undrawn.update(range(n))
            if _np is not None:
                self._np_streams = [self._mirror_stream(h) for h in range(n)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_network(self) -> None:
        topo = self.topology
        self.routers: Dict[SwitchId, NetworkRouter] = {}
        for sid in topo.switch_ids():
            ports = topo.ports_used(sid)
            self.routers[sid] = NetworkRouter(
                self.config.router_config(ports), name=str(sid)
            )
        # Wire every connected port of every switch.
        for sid, router in self.routers.items():
            for port in topo.wired_ports(sid):
                ref = topo.neighbor(sid, port)
                if ref.switch is None:
                    link = OutputLink(
                        self.config.num_vcs,
                        _HostSink(self, ref.host),
                        downstream_depth=None,
                    )
                else:
                    target = self.routers[ref.switch]
                    link = OutputLink(
                        self.config.num_vcs,
                        _RouterSink(self, target, ref.port),
                        downstream_depth=self.config.buffer_depth,
                    )
                    # Credit return path: when the downstream router
                    # frees the slot, restore this link's counter.
                    target.credit_sinks[ref.port] = _CreditSink(link)
                router.attach(port, link)

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current simulation cycle (owned by the drive loop)."""
        return self._scheduler.now

    def step(self) -> None:
        """Advance exactly one simulation cycle."""
        self.run_until(self._scheduler.now + 1)

    def run_until(self, end: int) -> int:
        """Advance the simulation through cycles ``[cycle, end)``."""
        self._extend_draws(end)
        return self._scheduler.run_until(end)

    def _extend_draws(self, end: int) -> None:
        """Grow the arrival pre-draw window to cover ``[0, end)``.

        Hosts parked in ``_undrawn`` (no arrival inside the previous
        window) resume their private streams from where they stopped;
        any hit inside the new window enters the arrival heap.
        """
        if not self._event_mode or end <= self._draw_limit:
            return
        self._draw_limit = end
        if not self._undrawn:
            return
        resolved = []
        for host in sorted(self._undrawn):
            arrival = self._draw_arrival(host, end)
            if arrival is not None:
                heapq.heappush(self._host_arrivals, (arrival, host))
                resolved.append(host)
        self._undrawn.difference_update(resolved)

    def _pre_cycle(self, now: int) -> None:
        """Harness work before the two-phase engine cycle.

        The engine cycle itself (and the instrumentation on the
        ``cycle_end`` hook, including the sanitizer's per-cycle check)
        runs from the scheduler after this returns.
        """
        if self._faults is not None:
            # Apply scheduled link faults and deliver due credit
            # resyncs before anything else observes this cycle.
            self._faults.advance(now)
        self._deliver_arrivals(now)
        if self._workload is not None:
            # DAG eligibility replaces the injection process; both
            # modes pop the same ready messages in ascending host
            # order, so the shared route RNG stream stays identical.
            self._generate_workload(now)
        elif self._event_mode:
            self._generate_event(now)
        else:
            self._generate(now)
        if self._event_mode:
            self._inject_event(now)
        else:
            self._inject(now)

    def _next_work(self, now: int) -> Optional[int]:
        """Wake horizon: earliest cycle >= ``now`` with harness work.

        The minimum over the pre-drawn host-arrival heap, the in-flight
        flit/ejection heap, the fault injector's schedule, and — per
        backlogged host — the earliest injection retry (channel
        throttle or fault back-off).  Early is safe, late is not.
        """
        horizon: Optional[int] = None
        if self._host_arrivals:
            horizon = self._host_arrivals[0][0]
        if self._inflight:
            due = self._inflight[0][0]
            if horizon is None or due < horizon:
                horizon = due
        faults = self._faults
        if faults is not None:
            due = faults.next_event(now)
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        for host in self._backlog_hosts:
            retry = self._next_inject[host]
            if faults is not None:
                retry = max(retry, faults.channel_retry_at(host))
            retry = max(retry, now)
            if horizon is None or retry < horizon:
                horizon = retry
        if self._workload is not None:
            due = self._workload.next_ready(now)
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        return horizon

    def _deliver_arrivals(self, now: int) -> None:
        while self._inflight and self._inflight[0][0] <= now:
            _, _, flit, target = heapq.heappop(self._inflight)
            if isinstance(target, tuple):
                router, port = target
                self._scheduler.wake(router, now)
                router.accept(port, flit)
            else:
                # Host ejection.
                if self._count_flits:
                    self.measured_flits += 1
                if flit.is_tail and flit.measured:
                    self.sample.add(now - flit.created_at)
                    self._outstanding -= 1
                if flit.is_tail and self._workload is not None:
                    # Delivery unlocks the DAG successors; their hosts
                    # wake via the next_ready() horizon.
                    self._workload.deliver(flit.packet_id, now)

    def _generate(self, now: int) -> None:
        """Cycle-mode generation: poll every host's process this cycle."""
        for host in range(self.topology.num_hosts):
            if self._rngs[host].random() >= self._packet_rate:
                continue
            self._generate_packet(host, now)

    def _draw_arrival(self, host: int, limit: int) -> Optional[int]:
        """Pre-draw ``host``'s next arrival cycle before ``limit``.

        Consumes exactly the per-cycle polls :meth:`_generate` would
        make from the host's private RNG stream, so batching them is
        byte-equivalent.  Draws stop at the window edge: a host with no
        hit keeps its cursor at ``limit`` and resumes the same stream
        when the window grows, so the chunked draws consume the
        identical stream prefix a cycle-by-cycle poll would.  A zero
        rate never fires: return None without drawing.
        """
        rate = self._packet_rate
        if rate <= 0.0:
            return None
        cycle = self._arrival_cursor[host]
        if cycle >= limit:
            return None
        if self._np_streams is not None:
            return self._draw_arrival_bulk(host, cycle, limit)
        rnd = self._rngs[host].random
        while cycle < limit:
            if rnd() < rate:
                self._arrival_cursor[host] = cycle + 1
                return cycle
            cycle += 1
        self._arrival_cursor[host] = limit
        return None

    def _draw_arrival_bulk(
        self, host: int, cycle: int, limit: int
    ) -> Optional[int]:
        """Vectorized Bernoulli search on the host's mirrored stream.

        Samples the whole remaining window at once.  A miss consumes
        exactly the polls cycle mode would, so nothing to undo; a hit
        overshoots, and the mirror is rewound by rebuilding it from the
        Python-side state — which still sits at the last sync point,
        separated from the hit only by polls (every hit forces a sync,
        so no destination draws lie in between) — and re-consuming that
        exact count.  This keeps the costly state export off the
        per-window path entirely.
        """
        assert self._np_streams is not None
        stream = self._np_streams[host]
        draws = stream.random_sample(limit - cycle)
        hit = draws < self._packet_rate
        first = int(hit.argmax())
        if not hit[first]:
            self._arrival_cursor[host] = limit
            return None
        polls = cycle - self._sync_cursor[host] + first + 1
        _, state, _ = self._rngs[host].getstate()
        stream.set_state(
            ("MT19937", _np.asarray(state[:-1], dtype=_np.uint32), state[-1])
        )
        stream.random_sample(polls)
        self._arrival_cursor[host] = cycle + first + 1
        return cycle + first

    def _mirror_stream(self, host: int) -> "object":
        """Build a numpy RandomState mirroring ``host``'s Mersenne state."""
        assert _np is not None
        _, state, _ = self._rngs[host].getstate()
        stream = _np.random.RandomState()
        stream.set_state(
            ("MT19937", _np.asarray(state[:-1], dtype=_np.uint32), state[-1])
        )
        return stream

    def _pull_host_rng(self, host: int) -> None:
        """Copy the numpy mirror's state back into the Python RNG.

        Called before :meth:`_generate_packet` draws a destination, so
        the Python stream resumes exactly where the bulk polls stopped.
        """
        assert self._np_streams is not None
        _, keys, pos, _, _ = self._np_streams[host].get_state()
        self._rngs[host].setstate(
            (3, tuple(keys.tolist()) + (int(pos),), None)
        )

    def _push_host_rng(self, host: int) -> None:
        """Copy the Python RNG's state back into the numpy mirror."""
        assert self._np_streams is not None
        _, state, _ = self._rngs[host].getstate()
        self._np_streams[host].set_state(
            ("MT19937", _np.asarray(state[:-1], dtype=_np.uint32), state[-1])
        )
        self._sync_cursor[host] = self._arrival_cursor[host]

    def _generate_event(self, now: int) -> None:
        """Event-mode generation: only hosts whose arrival is due.

        Heap order is (cycle, host), so same-cycle arrivals generate in
        ascending host order — the iteration order of the cycle-mode
        loop — which keeps the shared route RNG stream and packet-id
        allocation identical between modes.
        """
        heap = self._host_arrivals
        while heap and heap[0][0] <= now:
            due, host = heapq.heappop(heap)
            invariant(due == now, "fast-forward skipped a host arrival",
                      cycle=now, check="event-schedule", host=host,
                      arrival=due)
            if self._np_streams is not None:
                # Destination draws happen on the Python stream; hand
                # the mirrored state across and back so both sides see
                # one contiguous per-host stream.
                self._pull_host_rng(host)
                self._generate_packet(host, now)
                self._push_host_rng(host)
            else:
                self._generate_packet(host, now)
            nxt = self._draw_arrival(host, self._draw_limit)
            if nxt is not None:
                heapq.heappush(heap, (nxt, host))
            else:
                self._undrawn.add(host)

    def _generate_workload(self, now: int) -> None:
        """Queue every workload message that became eligible by ``now``.

        Ready hosts are visited in ascending order — the host-order
        iteration of the cycle-mode generate loop — and both drive
        modes execute every cycle with an eligible message (the
        ``next_ready`` horizon pins it), so the shared route RNG
        stream is consumed identically either way.
        """
        workload = self._workload
        invariant(workload is not None, "workload generation without a "
                  "workload", cycle=now, check="workload")
        for host in workload.ready_ranks(now):
            while True:
                message = workload.next_message(host, now)
                if message is None:
                    break
                self._generate_packet(host, now, message)

    def _generate_packet(
        self, host: int, now: int, message: Optional[Message] = None
    ) -> None:
        """Create one packet at ``host`` and queue its flits.

        With ``message`` set (workload mode) the destination and size
        come from the DAG node and the packet is never
        measurement-labeled — the workload keeps its own send/delivery
        records; only the route draw touches shared RNG state.
        """
        rng = self._rngs[host]
        if message is not None:
            dest = message.dest
            size = message.size
        else:
            if self._host_pattern is None:
                dest = rng.randrange(self.topology.num_hosts)
            else:
                dest = self._host_pattern.dest(host, rng)
            size = self.config.packet_size
        if self._faults is not None:
            route = self._faults.route(
                self.topology, host, dest, self._route_rng
            )
        else:
            route = self.topology.route(host, dest, self._route_rng)
        flits = make_packet(
            dest=dest,
            size=size,
            src=host,
            created_at=now,
            measured=self._measuring if message is None else False,
            route=route,
        )
        if message is not None:
            invariant(self._workload is not None, "workload message "
                      "without a workload", cycle=now, check="workload")
            self._workload.sent(message.node, flits[0].packet_id, now)
        self._source_q[host].extend(flits)
        if len(self._source_q[host]) > self._peak_source_q:
            self._peak_source_q = len(self._source_q[host])
        self._backlog_hosts.add(host)
        if self._measuring and message is None:
            self._outstanding += 1
            self._labeled_total += 1

    def _inject(self, now: int) -> None:
        """Cycle-mode injection: scan every host in index order."""
        for host in range(self.topology.num_hosts):
            self._try_inject(host, now)

    def _inject_event(self, now: int) -> None:
        """Event-mode injection: only hosts with queued flits.

        Sorted so the effective order matches the cycle-mode scan
        (hosts without backlog are no-ops there).
        """
        for host in sorted(self._backlog_hosts):
            self._try_inject(host, now)

    def _try_inject(self, host: int, now: int) -> None:
        """Move one flit from ``host``'s queue into its edge router."""
        topo = self.topology
        faults = self._faults
        if now < self._next_inject[host] or not self._source_q[host]:
            return
        if faults is not None and not faults.channel_ready(host, now):
            return
        flit = self._source_q[host][0]
        attach = topo.host_attachment(host)
        invariant(attach.switch is not None,
                  "host attaches to no switch", cycle=now,
                  check="topology")
        router = self.routers[attach.switch]
        vc = self._packet_vc[host]
        if flit.is_head and vc is None:
            vc = self._pick_vc(router, attach.port, host)
            if vc is None:
                return
            self._packet_vc[host] = vc
        invariant(vc is not None, "packet VC lost mid-packet",
                  cycle=now, port=attach.port, check="injection")
        if router.input_space(attach.port, vc) < 1:
            return
        flit.vc = vc
        if faults is not None and not faults.attempt_transmit(
            host, flit, now
        ):
            # Corrupted on the wire: the receiver's CRC check drops
            # it, the sender keeps it queued for retransmission.
            # The corrupted transmission still occupied the channel.
            self._next_inject[host] = now + self.config.flit_cycles
            return
        self._source_q[host].pop(0)
        if not self._source_q[host]:
            self._backlog_hosts.discard(host)
        self._scheduler.wake(router, now)
        router.accept(attach.port, flit)
        self._next_inject[host] = now + self.config.flit_cycles
        if flit.is_tail:
            self._packet_vc[host] = None

    def _pick_vc(self, router: NetworkRouter, port: int, host: int) -> Optional[int]:
        v = self.config.num_vcs
        for offset in range(v):
            vc = (self._vc_rr[host] + offset) % v
            if router.input_space(port, vc) >= 1:
                self._vc_rr[host] = (vc + 1) % v
                return vc
        return None

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(
        self, warmup: int = 2000, measure: int = 2000, drain: int = 30000
    ) -> RunResult:
        self.start_run(warmup=warmup, measure=measure, drain=drain)
        self.advance_run()
        return self.finish_run()

    def run_workload(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run the attached workload DAG to completion; summarize.

        Advances until every workload message has been delivered or
        ``max_cycles`` elapse (the result is then marked saturated and
        ``undelivered`` counts the stuck messages).  The latency
        sample holds per-message send-to-delivery latencies from the
        workload's own records; aggregate DAG metrics (makespan, flow
        percentiles, per-phase step time and skew) land in the
        ``stats.workload.*`` extras.
        """
        self.start_workload_run(max_cycles)
        self.advance_run()
        return self.finish_run()

    def start_run(
        self, warmup: int = 2000, measure: int = 2000, drain: int = 30000
    ) -> None:
        """Begin the warm-up/measure/drain program without running it.

        The program is plain data (absolute stage boundaries plus
        bookkeeping), so a snapshot taken between :meth:`advance_run`
        calls resumes mid-run byte-identically.
        """
        if self._program is not None:
            raise RuntimeError("a run is already in progress")
        start = self.cycle
        warm_end = start + warmup
        measure_end = warm_end + measure
        self._program = {
            "kind": "measure",
            "stage": 0,
            "final": 3,
            "bounds": [warm_end, measure_end, measure_end + drain],
            "measure_start": 0,
            "measured_cycles": 0,
        }

    def start_workload_run(self, max_cycles: int = 1_000_000) -> None:
        """Begin the workload-DAG program without running it."""
        if self._program is not None:
            raise RuntimeError("a run is already in progress")
        if self._workload is None:
            raise ValueError(
                "run_workload() needs a NetworkSimulation(workload=...)"
            )
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        self._count_flits = True
        self._program = {
            "kind": "workload",
            "stage": 0,
            "final": 1,
            "bounds": [self.cycle + max_cycles],
            "run_start": self.cycle,
        }

    def advance_run(self, stop_at: Optional[int] = None) -> bool:
        """Advance the active program; True once it has completed.

        With ``stop_at`` set, pauses at the first *executed* cycle at
        or beyond it (fast-forward jumps land on their natural targets
        first, so pausing never perturbs the jump structure and the
        resumed run stays byte-identical to an uninterrupted one).
        """
        program = self._program
        if program is None:
            raise RuntimeError("no run in progress; call start_run() first")
        paused = (
            None if stop_at is None
            else (lambda: self._scheduler.now >= stop_at)
        )
        while program["stage"] < program["final"]:
            stage = program["stage"]
            end = program["bounds"][stage]
            stop = self._stage_stop(program, stage, paused)
            self._extend_draws(end)
            self._scheduler.run_until(end, stop=stop)
            if self._stage_done(program, stage, end):
                self._finish_stage(program, stage)
            else:
                return False  # paused mid-stage
        return True

    def _stage_stop(
        self,
        program: Dict[str, Any],
        stage: int,
        paused: Optional[Callable[[], bool]],
    ) -> Optional[Callable[[], bool]]:
        """Combined stop predicate for one program stage."""
        inner = self._stage_predicate(program, stage)
        if inner is None:
            return paused
        if paused is None:
            return inner
        return lambda: paused() or inner()

    def _stage_predicate(
        self, program: Dict[str, Any], stage: int
    ) -> Optional[Callable[[], bool]]:
        if program["kind"] == "workload":
            return self._workload.done
        if stage == 2:  # drain
            return lambda: self._outstanding <= 0
        return None

    def _stage_done(
        self, program: Dict[str, Any], stage: int, end: int
    ) -> bool:
        """Did the stage complete (vs. pausing for a checkpoint)?"""
        if self._scheduler.now >= end:
            return True
        inner = self._stage_predicate(program, stage)
        return inner is not None and inner()

    def _finish_stage(self, program: Dict[str, Any], stage: int) -> None:
        """Apply the flag flips at a completed stage boundary."""
        program["stage"] = stage + 1
        if program["kind"] != "measure":
            return
        if stage == 0:  # warm-up done: start labeling
            self._measuring = True
            self._count_flits = True
            program["measure_start"] = self.cycle
        elif stage == 1:  # measurement done
            self._measuring = False
            self._count_flits = False
            program["measured_cycles"] = self.cycle - program["measure_start"]

    def finish_run(self) -> RunResult:
        """Summarize a completed program into a :class:`RunResult`."""
        program = self._program
        if program is None:
            raise RuntimeError("no run in progress")
        if program["stage"] < program["final"]:
            raise RuntimeError("run has not completed; advance_run() first")
        self._program = None
        if program["kind"] == "workload":
            return self._finish_workload(program)
        frac = (
            1.0
            if self._labeled_total == 0
            else 1.0 - self._outstanding / self._labeled_total
        )
        result = summarize(
            offered_load=self.load,
            sample=self.sample,
            measured_flits=self.measured_flits,
            measured_cycles=program["measured_cycles"],
            num_ports=self.topology.num_hosts,
            capacity=1.0 / self.config.flit_cycles,
            saturated=frac < 0.999,
            cycles=self.cycle,
        )
        self._fold_extras(result)
        return result

    def _finish_workload(self, program: Dict[str, Any]) -> RunResult:
        workload = self._workload
        self._count_flits = False
        for latency in workload.message_latencies():
            self.sample.add(latency)
        result = summarize(
            offered_load=0.0,
            sample=self.sample,
            measured_flits=self.measured_flits,
            measured_cycles=max(1, self.cycle - program["run_start"]),
            num_ports=self.topology.num_hosts,
            capacity=1.0 / self.config.flit_cycles,
            saturated=not workload.done(),
            cycles=self.cycle,
        )
        result.extra["undelivered"] = float(workload.remaining)
        result.extra["source_backlog"] = float(
            sum(len(q) for q in self._source_q)
        )
        self._fold_extras(result, workload_stats=True)
        return result

    def _fold_extras(
        self, result: RunResult, workload_stats: bool = False
    ) -> None:
        """Fold shared observability extras into a run result."""
        result.extra["stats.engine.cycles_skipped"] = float(
            self._engine_skips()[0]
        )
        result.extra["stats.engine.ff_jumps"] = float(self._engine_skips()[1])
        result.extra["stats.traffic.max_source_queue"] = float(
            self._peak_source_q
        )
        if workload_stats:
            for name, value in sorted(self._workload.stats().items()):
                result.extra[f"stats.{name}"] = float(value)
        for name, value in self._fault_extra():
            result.extra[f"stats.{name}"] = float(value)
        if self._tracer is not None:
            # Aggregate trace counters ride along like the switch-level
            # harness does: folded through a scratch RouterStats so the
            # collector's integer-counter convention applies unchanged.
            from ..routers.base import RouterStats

            scratch = RouterStats()
            if self._workload is not None:
                self._workload.annotate(self._tracer)
            self._tracer.fold_stats(scratch)
            for name in sorted(scratch.extra):
                result.extra[f"stats.{name}"] = float(scratch.extra[name])

    def _engine_skips(self) -> Tuple[int, int]:
        """(cycles_skipped, ff_jumps) of the drive loop (overridable)."""
        return (self._scheduler.cycles_skipped, self._scheduler.ff_jumps)

    def _fault_extra(self) -> List[Tuple[str, object]]:
        """Sorted fault-counter items; the sharded front-end overrides
        this to merge the per-worker counter dictionaries."""
        if self._faults is None:
            return []
        return sorted(self._faults.counters.items())

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deep-copied picklable capture of the full simulation state.

        Captures the routers, the drive loop, every RNG stream, the
        in-flight flit queue, the host-side injection machinery, the
        staged run program, the workload, the fault injector, and the
        trace collector.  Restoring the capture onto a freshly built
        twin (same constructor arguments) resumes byte-identically;
        see :mod:`repro.harness.checkpoint` for the on-disk format.
        """
        if self._sanitizer is not None:
            raise ValueError(
                "cannot checkpoint a sanitized simulation; rerun the "
                "sanitizer after restore instead"
            )
        switch_of = {id(r): sid for sid, r in self.routers.items()}
        inflight = []
        for arrival, seq, flit, target in sorted(
            self._inflight, key=lambda entry: entry[:2]
        ):
            if isinstance(target, tuple):
                router, port = target
                encoded: Tuple = ("r", switch_of[id(router)], port)
            else:
                encoded = ("h", target)
            inflight.append((arrival, seq, flit, encoded))
        bundle: Dict[str, Any] = {
            "routers": [
                router._snapshot_state() for router in self.routers.values()
            ],
            "sched": self._scheduler.snapshot(),
            "packet_ids": packet_id_state(),
            "seq": next(copy.copy(self._seq)),
            "inflight": inflight,
            "harness": {
                "source_q": self._source_q,
                "backlog_hosts": sorted(self._backlog_hosts),
                "next_inject": self._next_inject,
                "packet_vc": self._packet_vc,
                "vc_rr": self._vc_rr,
                "measuring": self._measuring,
                "count_flits": self._count_flits,
                "outstanding": self._outstanding,
                "labeled_total": self._labeled_total,
                "peak_source_q": self._peak_source_q,
                "sample": self.sample,
                "measured_flits": self.measured_flits,
            },
            "rngs": [rng.getstate() for rng in self._rngs],
            "route_rng": self._route_rng.getstate(),
            # The numpy mirrors are deliberately not captured: at a
            # cycle boundary each mirror equals the Python stream plus
            # (arrival_cursor - sync_cursor) poll draws, so restore
            # rebuilds them from the restored Python state instead.
            "arrivals": {
                "heap": sorted(self._host_arrivals),
                "cursor": self._arrival_cursor,
                "draw_limit": self._draw_limit,
                "undrawn": sorted(self._undrawn),
                "sync_cursor": self._sync_cursor,
            },
            "program": self._program,
            "workload": self._workload,
            "faults": (
                None if self._faults is None else self._faults.snapshot()
            ),
            "tracer": (
                None if self._tracer is None else dict(vars(self._tracer))
            ),
        }
        return copy.deepcopy(bundle)

    def restore(self, state: Dict[str, Any]) -> None:
        """Apply a :meth:`snapshot` onto this simulation in place.

        The simulation must have been built with the same constructor
        arguments as the one the snapshot came from (same topology,
        scheduler mode, fault plan, workload and tracer presence).
        """
        if self._sanitizer is not None:
            raise ValueError("cannot restore onto a sanitized simulation")
        if len(state["routers"]) != len(self.routers):
            raise ValueError(
                f"snapshot captured {len(state['routers'])} routers, "
                f"simulation has {len(self.routers)}"
            )
        if ("wheel" in state["sched"]) != self._event_mode:
            raise ValueError(
                "scheduler mode mismatch between snapshot and simulation"
            )
        if (state["faults"] is None) != (self._faults is None):
            raise ValueError(
                "fault plan mismatch between snapshot and simulation"
            )
        if (state["workload"] is None) != (self._workload is None):
            raise ValueError(
                "workload mismatch between snapshot and simulation"
            )
        if (state["tracer"] is None) != (self._tracer is None):
            raise ValueError(
                "tracer mismatch between snapshot and simulation"
            )
        if len(state["rngs"]) != len(self._rngs):
            raise ValueError(
                f"snapshot captured {len(state['rngs'])} hosts, "
                f"simulation has {len(self._rngs)}"
            )
        state = copy.deepcopy(state)
        for router, captured in zip(self.routers.values(), state["routers"]):
            router._restore_state(captured)
        self._scheduler.restore(state["sched"])
        set_packet_id_state(state["packet_ids"])
        self._seq = itertools.count(state["seq"])
        inflight: List[Tuple[int, int, Flit, object]] = []
        for arrival, seq, flit, encoded in state["inflight"]:
            if encoded[0] == "r":
                target: object = (self.routers[encoded[1]], encoded[2])
            else:
                target = encoded[1]
            inflight.append((arrival, seq, flit, target))
        # Captured sorted; a sorted list is a valid binary heap.
        self._inflight = inflight
        harness = state["harness"]
        self._source_q = harness["source_q"]
        self._backlog_hosts = set(harness["backlog_hosts"])
        self._next_inject = harness["next_inject"]
        self._packet_vc = harness["packet_vc"]
        self._vc_rr = harness["vc_rr"]
        self._measuring = harness["measuring"]
        self._count_flits = harness["count_flits"]
        self._outstanding = harness["outstanding"]
        self._labeled_total = harness["labeled_total"]
        self._peak_source_q = harness["peak_source_q"]
        self.sample = harness["sample"]
        self.measured_flits = harness["measured_flits"]
        for rng, captured in zip(self._rngs, state["rngs"]):
            rng.setstate(captured)
        self._route_rng.setstate(state["route_rng"])
        arrivals = state["arrivals"]
        self._host_arrivals = list(arrivals["heap"])
        self._arrival_cursor = arrivals["cursor"]
        self._draw_limit = arrivals["draw_limit"]
        self._undrawn = set(arrivals["undrawn"])
        self._sync_cursor = arrivals["sync_cursor"]
        if self._np_streams is not None:
            # Rebuild each mirror from the restored Python state (the
            # last sync point) and replay the poll draws separating it
            # from the pre-draw cursor; snapshots are taken at cycle
            # boundaries, where that gap is pure polls (every hit and
            # every destination draw forces a sync).
            for host in range(len(self._rngs)):
                stream = self._mirror_stream(host)
                gap = self._arrival_cursor[host] - self._sync_cursor[host]
                if gap:
                    stream.random_sample(gap)
                self._np_streams[host] = stream
        self._program = state["program"]
        self._workload = state["workload"]
        if self._faults is not None:
            # After the routers: lost-credit sinks resolve through the
            # (identity-preserved) credit_sinks wiring.
            self._faults.restore(state["faults"])
        if self._tracer is not None:
            vars(self._tracer).clear()
            vars(self._tracer).update(state["tracer"])

    def save_checkpoint(self, path) -> None:
        """Persist this simulation (state plus rebuild spec) to disk.

        Resume with :func:`repro.harness.checkpoint.load_checkpoint`.
        """
        from ..harness.checkpoint import save_checkpoint

        save_checkpoint(self, path)


class ClosNetworkSimulation(NetworkSimulation):
    """Figure 19's configuration: a folded Clos built from ``config``."""

    def __init__(
        self,
        config: NetworkConfig,
        load: float = 0.0,
        sanitize: bool = False,
        active_set: bool = True,
        faults: Optional[object] = None,
        scheduler: str = "cycle",
        workload: Optional[Workload] = None,
        tracer=None,
        trace_switch: Optional[SwitchId] = None,
    ) -> None:
        super().__init__(config, load, sanitize=sanitize,
                         active_set=active_set, faults=faults,
                         scheduler=scheduler, workload=workload,
                         tracer=tracer, trace_switch=trace_switch)


def run_network_sweep(
    config: NetworkConfig,
    loads,
    label: str = "",
    topology=None,
    warmup: int = 2000,
    measure: int = 2000,
    drain: int = 30000,
    scheduler: str = "cycle",
):
    """Load-latency curve over a network (the Figure 19 sweep).

    Returns a :class:`~repro.harness.experiment.SweepResult`, so the
    same reporting and plotting helpers apply to network curves as to
    single-router curves.
    """
    from ..harness.experiment import SweepResult

    sweep = SweepResult(label=label or "network")
    for load in loads:
        sim = NetworkSimulation(config, load, topology=topology,
                                scheduler=scheduler)
        sweep.results.append(sim.run(warmup=warmup, measure=measure,
                                     drain=drain))
    return sweep
