"""Network-level simulation: topologies, oblivious/deterministic
routing, reduced-detail routers, and the Figure 19 experiment harness."""

from .mesh import Mesh
from .netsim import (
    ClosNetworkSimulation,
    NetworkConfig,
    NetworkSimulation,
    run_network_sweep,
)
from .router import (
    NetworkRouter,
    NetworkRouterConfig,
    OutputLink,
    pipeline_depth_for_radix,
)
from .sharded import ShardedNetworkSimulation
from .topology import FoldedClos, PortRef, Topology

__all__ = [
    "FoldedClos",
    "Mesh",
    "PortRef",
    "Topology",
    "NetworkRouter",
    "NetworkRouterConfig",
    "OutputLink",
    "pipeline_depth_for_radix",
    "NetworkConfig",
    "NetworkSimulation",
    "ClosNetworkSimulation",
    "ShardedNetworkSimulation",
    "run_network_sweep",
]
