"""Sharded multi-process Clos simulation, byte-identical to serial.

:class:`ShardedNetworkSimulation` partitions the routers of a network
simulation across N worker processes (contiguous blocks of the
topology's ``switch_ids()`` order, via
:func:`repro.engine.shard.partition`) and drives them in lock-step: the
parent process keeps everything host-side — packet generation, the
traffic pattern and per-host RNG streams, injection flow control, host
ejections, latency measurement, the workload DAG, and dead-link-aware
routing — while each worker owns its block's routers and executes the
two-phase engine cycle for them.  Boundary flits and credits cross
shards through the parent at phase boundaries over pipes
(:class:`repro.engine.shard.ShardPool`).

Determinism: the per-shard RNG streams are *unchanged from serial* —
host traffic and route draws stay in the parent (same streams, same
draw points), and the per-router credit-loss streams live with their
routers (same ``derive_rng`` keys, consumed in the serial order via the
pre-draw protocol of
:class:`~repro.faults.shard.ShardFaultInjector`).  The run result, the
``stats.*`` extras, the fault counters, the Chrome trace bytes, and the
fast-forward jump structure are byte-identical to the single-process
run; ``tests/test_sharding.py`` pins this differentially.

Why lock-step works without a global clock fabric: within a cycle, the
only cross-router visibility the serial engine allows is credit
restores applied during registration-order commits.  Flit delivery is
always cross-cycle (uniform positive channel latency), so the parent
can collect every boundary event at the end of cycle T and deliver it
before (or, for commit-order "trailing" credits, after) the workers run
cycle T+1.  A router with undelivered credits never parks
(``NetworkRouter.busy`` covers ``_credit_out``), so the end-of-T
``pending(T+1)`` walk in each worker announces every cross-shard credit
exactly one cycle before it applies.

Sharded runs cannot checkpoint: :meth:`ShardedNetworkSimulation.snapshot`
raises.  Checkpoint serially, then resume with any shard count (the
state protocol is process-count-free).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import invariant
from ..engine import EngineHooks, make_scheduler
from ..engine.shard import ShardPool, partition
from .netsim import NetworkConfig, NetworkSimulation, _CreditSink
from .router import NetworkRouter, OutputLink
from .topology import SwitchId


class _RemoteCreditSink:
    """Stand-in credit sink for an input port fed from another shard.

    The restore is a no-op locally — the owning worker applies the real
    ``restore_credit`` when the parent relays the announcement.  The
    ``remote_address`` attribute is the duck-type marker the report
    walk and :class:`~repro.faults.shard.ShardFaultInjector` key on:
    ``(remote switch id, remote output port)`` of the link whose
    counter this credit restores.
    """

    __slots__ = ("remote_address",)

    def __init__(self, remote_switch: SwitchId, remote_port: int) -> None:
        self.remote_address = (remote_switch, remote_port)

    def __call__(self, vc: int) -> None:
        pass


class _LocalFlitSink:
    """Delivery callable for a router-to-router channel within a shard."""

    __slots__ = ("worker", "target", "port")

    def __init__(self, worker: "_ShardWorker", target: NetworkRouter,
                 port: int) -> None:
        self.worker = worker
        self.target = target
        self.port = port

    def __call__(self, flit, arrival: int) -> None:
        worker = self.worker
        heapq.heappush(
            worker._inflight,
            (arrival, worker._next_key(), flit, (self.target, self.port)),
        )


class _RemoteFlitSink:
    """Delivery callable exporting a flit to the parent exchange.

    ``target`` is ``("r", switch, port)`` for a router on another shard
    or ``("h", host)`` for a host ejection (always parent-side).
    """

    __slots__ = ("worker", "target")

    def __init__(self, worker: "_ShardWorker", target: Tuple) -> None:
        self.worker = worker
        self.target = target

    def __call__(self, flit, arrival: int) -> None:
        worker = self.worker
        worker._out_flits.append(
            (arrival, worker._next_key(), flit, self.target)
        )


class _FaultRecorder:
    """Append-only log of fault hook events, for cross-process replay.

    Both the parent (host-channel corruption) and every worker (link
    transitions, credit loss/resync) record the fault events their half
    of the injector emits; at finalization the merged log is replayed
    through the user's trace collector so its fault view matches the
    serial run's event set exactly.
    """

    __slots__ = ("events",)

    def __init__(self, hooks: EngineHooks) -> None:
        self.events: List[Tuple[str, str, Tuple, int]] = []
        hooks.on_fault_inject(self._on_inject)
        hooks.on_fault_recover(self._on_recover)

    def _on_inject(self, kind: str, where, cycle: int) -> None:
        self.events.append(("inject", kind, tuple(where), cycle))

    def _on_recover(self, kind: str, where, cycle: int) -> None:
        self.events.append(("recover", kind, tuple(where), cycle))


def _canonical_fault_order(event: Tuple[str, str, Tuple, int]) -> Tuple:
    """Deterministic merge order for per-process fault logs."""
    direction, kind, where, cycle = event
    return (cycle, direction, kind, str(where))


def _build_shard_worker(payload: Dict[str, Any]) -> "_ShardWorker":
    """Module-level factory for :class:`~repro.engine.shard.ShardPool`
    (spawned children re-import this module and call it by name)."""
    return _ShardWorker(payload)


class _ShardWorker:
    """One shard's half of the simulation, living in a child process.

    Owns the block's routers, their local scheduler (same mode and
    active-set setting as the parent's), and — when the plan calls for
    it — a :class:`~repro.faults.shard.ShardFaultInjector` over the
    local routers.  Exposes ``routers``/``hooks``/``topology`` so the
    injector attaches exactly as it would to a simulation.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.shard: int = payload["shard"]
        self.config: NetworkConfig = payload["config"]
        self.topology = payload["topology"]
        blocks: List[List[SwitchId]] = payload["blocks"]
        self.hooks = EngineHooks()
        order = [sid for block in blocks for sid in block]
        self._serial_index = {sid: idx for idx, sid in enumerate(order)}
        self._block = list(blocks[self.shard])
        local = set(self._block)
        self._key_counter = itertools.count()
        #: Local in-flight deliveries: (arrival, key, flit, (router, port)).
        self._inflight: List[Tuple] = []
        #: Cross-shard resyncs awaiting their due cycle: (due, sid, port, vc).
        self._resync_in: List[Tuple[int, SwitchId, int, int]] = []
        #: Flits leaving the shard this cycle: (arrival, key, flit, target).
        self._out_flits: List[Tuple] = []
        self.routers: Dict[SwitchId, NetworkRouter] = {}
        for sid in self._block:
            ports = self.topology.ports_used(sid)
            self.routers[sid] = NetworkRouter(
                self.config.router_config(ports), name=str(sid)
            )
        self._wire(local)
        self._sched = make_scheduler(
            payload["scheduler"],
            self.routers.values(),
            hooks=self.hooks,
            active_set=payload["active_set"],
        )
        self._sched.add_pre_cycle(self._pre_cycle)
        self._sched.add_wake_source(self._next_work)
        self._injector = None
        self._predraw = False
        plan = payload["plan"]
        if plan is not None:
            # Imported lazily: faults sits above the network layer.
            from ..faults.shard import ShardFaultInjector, plan_for_shard

            narrowed = plan_for_shard(plan, local)
            if narrowed is not None:
                self._injector = ShardFaultInjector(
                    narrowed, self, payload["seed"]
                )
                self._predraw = narrowed.credit_loss_rate > 0.0
        self._recorder = None
        self._collector = None
        tracer_spec = payload["tracer"]
        if tracer_spec is not None:
            self._recorder = _FaultRecorder(self.hooks)
            switch = payload["trace_switch"]
            if switch in local:
                # Imported lazily: trace sits above the network layer.
                from ..trace import TraceCollector

                collector = TraceCollector(
                    capacity=tracer_spec["capacity"],
                    trace_filter=tracer_spec["filter"],
                )
                router = self.routers[switch]
                collector.attach(router)
                collector.label = f"{type(router).__name__}[{switch}]"
                self._collector = collector
        #: Host injection ports this shard hosts: (host, router, port).
        self._host_ports: List[Tuple[int, NetworkRouter, int]] = []
        for host in range(self.topology.num_hosts):
            attach = self.topology.host_attachment(host)
            if attach.switch in local:
                self._host_ports.append(
                    (host, self.routers[attach.switch], attach.port)
                )
        self._crash_at: Optional[int] = payload["crash_at"]
        self._cmd_cycle: Optional[int] = None
        self._accepts: List[Tuple[SwitchId, int, Any]] = []

    def _wire(self, local: set) -> None:
        """Serial wiring restricted to the local block.

        Remote-facing ports get exporting flit sinks; input ports fed
        from another shard get :class:`_RemoteCreditSink` stand-ins
        whose address is derived from the symmetric back-edge (the
        serial wiring installs the real sink from the *neighbor's*
        loop, which a shard cannot run).
        """
        num_vcs = self.config.num_vcs
        depth = self.config.buffer_depth
        for sid in self._block:
            router = self.routers[sid]
            for port in self.topology.wired_ports(sid):
                ref = self.topology.neighbor(sid, port)
                if ref.switch is None:
                    link = OutputLink(
                        num_vcs,
                        _RemoteFlitSink(self, ("h", ref.host)),
                        downstream_depth=None,
                    )
                elif ref.switch in local:
                    target = self.routers[ref.switch]
                    link = OutputLink(
                        num_vcs,
                        _LocalFlitSink(self, target, ref.port),
                        downstream_depth=depth,
                    )
                    target.credit_sinks[ref.port] = _CreditSink(link)
                else:
                    back = self.topology.neighbor(ref.switch, ref.port)
                    if back.switch != sid or back.port != port:
                        raise ValueError(
                            f"sharding requires symmetric inter-router "
                            f"wiring, but {sid!r}:{port} -> "
                            f"{ref.switch!r}:{ref.port} has back-edge "
                            f"{back.switch!r}:{back.port}"
                        )
                    link = OutputLink(
                        num_vcs,
                        _RemoteFlitSink(self, ("r", ref.switch, ref.port)),
                        downstream_depth=depth,
                    )
                    router.credit_sinks[port] = _RemoteCreditSink(
                        ref.switch, ref.port
                    )
                router.attach(port, link)

    def _next_key(self) -> Tuple[int, int]:
        """Tiebreak key ordering same-arrival deliveries as serial.

        Blocks are contiguous serial-index ranges and same-arrival
        entries always share a creation cycle (uniform channel
        latency), so (shard, local counter) sorts exactly like the
        serial global sequence counter: by source-router commit order.
        """
        return (self.shard, next(self._key_counter))

    # -- command protocol ----------------------------------------------

    def handle(self, message: Tuple):
        kind = message[0]
        if kind == "cycle":
            return self._cycle(*message[1:])
        if kind == "finish":
            return self._finish()
        raise ValueError(f"unknown shard worker message {kind!r}")

    def _cycle(self, now: int, accepts, flits, leading, trailing, resyncs):
        if self._crash_at is not None and now >= self._crash_at:
            raise RuntimeError(
                f"injected shard crash at cycle {now}"
            )
        for arrival, key, flit, sid, port in flits:
            heapq.heappush(
                self._inflight,
                (arrival, key, flit, (self.routers[sid], port)),
            )
        for entry in resyncs:
            heapq.heappush(self._resync_in, tuple(entry))
        for sid, port, vc in leading:
            self.routers[sid].links[port].restore_credit(vc)
        self._cmd_cycle = now
        self._accepts = accepts
        self._sched.run_until(now + 1)
        for sid, port, vc in trailing:
            self.routers[sid].links[port].restore_credit(vc)
        return self._report(now)

    def _pre_cycle(self, now: int) -> None:
        """Shard-local mirror of ``NetworkSimulation._pre_cycle``:
        faults first, then due deliveries, then this cycle's host
        injections — the serial phase order."""
        if self._injector is not None:
            self._injector.advance(now)
        while self._resync_in and self._resync_in[0][0] <= now:
            _, sid, port, vc = heapq.heappop(self._resync_in)
            self.routers[sid].links[port].restore_credit(vc)
        while self._inflight and self._inflight[0][0] <= now:
            _, _, flit, target = heapq.heappop(self._inflight)
            router, port = target
            self._sched.wake(router, now)
            router.accept(port, flit)
        if now == self._cmd_cycle and self._accepts:
            for sid, port, flit in self._accepts:
                router = self.routers[sid]
                self._sched.wake(router, now)
                router.accept(port, flit)
            self._accepts = []

    def _next_work(self, now: int) -> Optional[int]:
        """Wake horizon over the shard-local work queues."""
        horizon: Optional[int] = None
        if self._inflight:
            horizon = self._inflight[0][0]
        if self._resync_in:
            due = self._resync_in[0][0]
            if horizon is None or due < horizon:
                horizon = due
        if self._injector is not None:
            due = self._injector.next_event(now)
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        if self._accepts and self._cmd_cycle is not None:
            if horizon is None or self._cmd_cycle < horizon:
                horizon = self._cmd_cycle
        return horizon

    def _report(self, now: int) -> Dict[str, Any]:
        """End-of-cycle boundary report for the parent exchange.

        The credit walk visits each busy router's delay line in
        :meth:`~repro.core.pipeline.DelayLine.pending` order — the
        exact order the next commit will pop — pre-drawing the loss
        verdict for every maturing credit (preserving the serial
        per-router stream order) and announcing the survivors whose
        restore belongs to another shard.
        """
        nxt = now + 1
        credits: List[Tuple[int, SwitchId, int, int]] = []
        for sid in self._block:
            router = self.routers[sid]
            if not router._credit_out:
                continue
            src_idx = self._serial_index[sid]
            for _, (sink, vc) in router._credit_out.pending(nxt):
                drop = (
                    self._injector.predraw_drop(router)
                    if self._predraw else False
                )
                address = getattr(sink, "remote_address", None)
                if address is not None and not drop:
                    credits.append((src_idx, address[0], address[1], vc))
        flits, self._out_flits = self._out_flits, []
        resyncs = (
            self._injector.drain_resyncs()
            if self._injector is not None else []
        )
        hosts = {
            host: [
                router.input_space(port, vc)
                for vc in range(self.config.num_vcs)
            ]
            for host, router, port in self._host_ports
        }
        if self._sched.active_count() > 0:
            horizon: Optional[int] = nxt
        else:
            horizon = self._sched.next_horizon(nxt)
        return {
            "flits": flits,
            "credits": credits,
            "resyncs": resyncs,
            "hosts": hosts,
            "horizon": horizon,
        }

    def _finish(self) -> Dict[str, Any]:
        return {
            "counters": (
                dict(self._injector.counters)
                if self._injector is not None else {}
            ),
            "events": (
                list(self._recorder.events)
                if self._recorder is not None else []
            ),
            "collector": self._collector,
        }


class ShardedNetworkSimulation(NetworkSimulation):
    """Multi-process front-end with the serial simulation's contract.

    Construct like :class:`NetworkSimulation` plus ``shards``; drive
    with the same ``run``/``run_workload``/staged-run API.  Results,
    extras, fault counters, and trace exports are byte-identical to
    the serial run (see the module docstring for why).  One run per
    instance; call :meth:`close` (or let ``finish_run`` do it) to reap
    the worker processes.
    """

    def __init__(
        self,
        config: NetworkConfig,
        load: float = 0.0,
        shards: int = 2,
        topology=None,
        host_pattern=None,
        sanitize: bool = False,
        active_set: bool = True,
        faults=None,
        scheduler: str = "cycle",
        workload=None,
        tracer=None,
        trace_switch: Optional[SwitchId] = None,
        _crash_at: Optional[Tuple[int, int]] = None,
    ) -> None:
        if sanitize:
            raise ValueError(
                "cannot sanitize a sharded simulation; run the "
                "sanitizer on a serial twin instead"
            )
        self._shards = shards
        super().__init__(
            config, load, topology=topology, host_pattern=host_pattern,
            active_set=active_set, faults=None, scheduler=scheduler,
            workload=workload, tracer=None, trace_switch=None,
        )
        order = [sid for block in self._blocks for sid in block]
        self._owner: Dict[SwitchId, int] = {}
        self._lo: List[int] = []
        self._hi: List[int] = []
        idx = 0
        for w, block in enumerate(self._blocks):
            self._lo.append(idx)
            for sid in block:
                self._owner[sid] = w
            idx += len(block)
            self._hi.append(idx)
        # Tracing: validated here (the base saw tracer=None because it
        # has no routers to attach to); merged from the owning worker
        # at finalization.
        self._requested_tracer = tracer
        self._cycle_count = 0
        self._parent_recorder: Optional[_FaultRecorder] = None
        if tracer is not None:
            if trace_switch is None:
                trace_switch = order[0]
            if trace_switch not in self._owner:
                raise ValueError(
                    f"trace_switch {trace_switch!r} is not a switch of "
                    f"this topology"
                )
            self._trace_switch = trace_switch
            self.hooks.on_cycle_end(self._count_cycle)
            self._parent_recorder = _FaultRecorder(self.hooks)
        if faults is not None and faults.enabled:
            # Imported lazily: faults sits above the network layer.
            from ..faults.shard import MirrorFaultInjector

            self._faults = MirrorFaultInjector(faults, self, config.seed)
        plan = faults if (faults is not None and faults.enabled) else None
        tracer_spec = (
            None if tracer is None
            else {"capacity": tracer.capacity, "filter": tracer.filter}
        )
        # Host-side flow-control mirror: per-host free input slots at
        # the attach port, refreshed from the owning worker's report
        # after every cycle and decremented by this cycle's accepts —
        # exactly the value serial ``input_space`` reads pre-cycle.
        self._free: List[List[int]] = [
            [config.buffer_depth] * config.num_vcs
            for _ in range(self.topology.num_hosts)
        ]
        self._host_worker: List[int] = [
            self._owner[self.topology.host_attachment(h).switch]
            for h in range(self.topology.num_hosts)
        ]
        self._host_port: List[Tuple[SwitchId, int]] = []
        for h in range(self.topology.num_hosts):
            attach = self.topology.host_attachment(h)
            self._host_port.append((attach.switch, attach.port))
        self._accept_out: List[List[Tuple]] = [[] for _ in range(shards)]
        self._stash_flits: List[List[Tuple]] = [[] for _ in range(shards)]
        self._lead: List[List[Tuple]] = [[] for _ in range(shards)]
        self._trail: List[List[Tuple]] = [[] for _ in range(shards)]
        self._stash_resyncs: List[List[Tuple]] = [[] for _ in range(shards)]
        self._stash_dues: List[int] = []
        self._credit_cycle: Optional[int] = None
        self._worker_horizons: List[Optional[int]] = [0] * shards
        self._worker_counters: List[Dict[str, int]] = []
        self._worker_events: List[Tuple] = []
        self._finished_workers = False
        payloads = [
            {
                "shard": w,
                "config": config,
                "topology": self.topology,
                "blocks": self._blocks,
                "scheduler": scheduler,
                "active_set": active_set,
                "plan": plan,
                "seed": config.seed,
                "tracer": tracer_spec,
                "trace_switch": self._trace_switch,
                "crash_at": (
                    _crash_at[1]
                    if _crash_at is not None and _crash_at[0] == w
                    else None
                ),
            }
            for w in range(shards)
        ]
        self._pool = ShardPool(_build_shard_worker, payloads)

    # -- construction---------------------------------------------------

    def _build_network(self) -> None:
        """No local routers: the workers build the partitioned network."""
        order = list(self.topology.switch_ids())
        self._blocks = partition(order, self._shards)
        self.routers = {}

    def _count_cycle(self, cycle: int) -> None:
        self._cycle_count += 1

    # -- drive loop -----------------------------------------------------

    def _pre_cycle(self, now: int) -> None:
        """Serial host-side phases, then the shard boundary exchange."""
        super()._pre_cycle(now)
        self._exchange(now)

    def _try_inject(self, host: int, now: int) -> None:
        """Serial injection against the mirrored flow-control state.

        Guard order, RNG draw points, and round-robin updates replicate
        ``NetworkSimulation._try_inject`` exactly; the only change is
        that the accept ships to the owning worker (inside this cycle's
        command) instead of landing on a local router.
        """
        faults = self._faults
        if now < self._next_inject[host] or not self._source_q[host]:
            return
        if faults is not None and not faults.channel_ready(host, now):
            return
        flit = self._source_q[host][0]
        switch, port = self._host_port[host]
        invariant(switch is not None, "host attaches to no switch",
                  cycle=now, check="topology")
        free = self._free[host]
        vc = self._packet_vc[host]
        if flit.is_head and vc is None:
            vc = self._pick_free_vc(free, host)
            if vc is None:
                return
            self._packet_vc[host] = vc
        invariant(vc is not None, "packet VC lost mid-packet",
                  cycle=now, port=port, check="injection")
        if free[vc] < 1:
            return
        flit.vc = vc
        if faults is not None and not faults.attempt_transmit(
            host, flit, now
        ):
            self._next_inject[host] = now + self.config.flit_cycles
            return
        self._source_q[host].pop(0)
        if not self._source_q[host]:
            self._backlog_hosts.discard(host)
        free[vc] -= 1
        self._accept_out[self._host_worker[host]].append(
            (switch, port, flit)
        )
        self._next_inject[host] = now + self.config.flit_cycles
        if flit.is_tail:
            self._packet_vc[host] = None

    def _pick_free_vc(self, free: List[int], host: int) -> Optional[int]:
        """``_pick_vc`` against the mirror: same round-robin pointer."""
        v = self.config.num_vcs
        for offset in range(v):
            vc = (self._vc_rr[host] + offset) % v
            if free[vc] >= 1:
                self._vc_rr[host] = (vc + 1) % v
                return vc
        return None

    def _exchange(self, now: int) -> None:
        """Command every worker to run cycle ``now``; route the reports.

        Sends this cycle's host accepts plus everything stashed from
        earlier reports (cross-shard flits, leading/trailing credits,
        resyncs), then files each report's boundary events for the
        cycle they become visible.
        """
        invariant(
            self._credit_cycle is None or self._credit_cycle == now,
            "stashed boundary credits missed their delivery cycle",
            cycle=now, check="shard-exchange",
        )
        self._credit_cycle = None
        pool = self._pool
        shards = self._shards
        for w in range(shards):
            pool.send(w, (
                "cycle", now, self._accept_out[w], self._stash_flits[w],
                self._lead[w], self._trail[w], self._stash_resyncs[w],
            ))
        self._accept_out = [[] for _ in range(shards)]
        self._stash_flits = [[] for _ in range(shards)]
        self._lead = [[] for _ in range(shards)]
        self._trail = [[] for _ in range(shards)]
        self._stash_resyncs = [[] for _ in range(shards)]
        self._stash_dues = []
        reports = pool.gather()
        for w, report in enumerate(reports):
            self._worker_horizons[w] = report["horizon"]
            for host, spaces in report["hosts"].items():
                self._free[host] = spaces
            for arrival, key, flit, target in report["flits"]:
                if target[0] == "h":
                    heapq.heappush(
                        self._inflight, (arrival, key, flit, target[1])
                    )
                else:
                    owner = self._owner[target[1]]
                    self._stash_flits[owner].append(
                        (arrival, key, flit, target[1], target[2])
                    )
                    heapq.heappush(self._stash_dues, arrival)
            for src_idx, sid, port, vc in report["credits"]:
                owner = self._owner[sid]
                if src_idx < self._lo[owner]:
                    self._lead[owner].append((sid, port, vc))
                else:
                    self._trail[owner].append((sid, port, vc))
                heapq.heappush(self._stash_dues, now + 1)
                self._credit_cycle = now + 1
            for due, sid, port, vc in report["resyncs"]:
                owner = self._owner[sid]
                self._stash_resyncs[owner].append((due, sid, port, vc))
                heapq.heappush(self._stash_dues, due)

    def _next_work(self, now: int) -> Optional[int]:
        """Serial host-side horizon merged with the shard horizons."""
        horizon = super()._next_work(now)
        for due in self._worker_horizons:
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        if self._stash_dues:
            due = self._stash_dues[0]
            if horizon is None or due < horizon:
                horizon = due
        return horizon

    # -- results --------------------------------------------------------

    def finish_run(self):
        program = self._program
        if program is not None and program["stage"] >= program["final"]:
            self._finalize_workers()
        return super().finish_run()

    def _fault_extra(self) -> List[Tuple[str, object]]:
        """Merge the mirror's counters with the per-worker counters."""
        merged: Dict[str, int] = {}
        if self._faults is not None:
            merged.update(self._faults.counters)
        for counters in self._worker_counters:
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        return sorted(merged.items())

    def _finalize_workers(self) -> None:
        """Collect final worker payloads and reap the pool (idempotent).

        Merges the per-worker fault counters, replays the merged fault
        event log through the user's trace collector (whose contents
        are taken wholesale from the worker that traced the target
        switch), and stamps the network-wide cycle count.
        """
        if self._finished_workers:
            return
        self._finished_workers = True
        for w in range(self._shards):
            self._pool.send(w, ("finish",))
        finals = self._pool.gather()
        self._pool.close()
        self._worker_counters = [final["counters"] for final in finals]
        events: List[Tuple] = []
        for final in finals:
            events.extend(final["events"])
        if self._requested_tracer is None:
            return
        if self._parent_recorder is not None:
            events.extend(self._parent_recorder.events)
        collector = None
        for final in finals:
            if final["collector"] is not None:
                collector = final["collector"]
        target = self._requested_tracer
        vars(target).clear()
        vars(target).update(vars(collector))
        target.fault_injects = 0
        target.fault_recovers = 0
        target.fault_events = []
        for direction, kind, where, cycle in sorted(
            events, key=_canonical_fault_order
        ):
            if direction == "inject":
                target._on_fault_inject(kind, where, cycle)
            else:
                target._on_fault_recover(kind, where, cycle)
        target.cycles = self._cycle_count
        self._tracer = target

    # -- lifecycle ------------------------------------------------------

    def start_run(self, warmup: int = 2000, measure: int = 2000,
                  drain: int = 30000) -> None:
        self._check_reusable()
        super().start_run(warmup=warmup, measure=measure, drain=drain)

    def start_workload_run(self, max_cycles: int = 1_000_000) -> None:
        self._check_reusable()
        super().start_workload_run(max_cycles)

    def _check_reusable(self) -> None:
        if self._finished_workers:
            raise RuntimeError(
                "sharded workers were already reaped; build a new "
                "ShardedNetworkSimulation for another run"
            )

    def snapshot(self) -> Dict[str, Any]:
        raise ValueError(
            "a sharded simulation cannot checkpoint; checkpoint a "
            "serial run and resume it with any shard count"
        )

    def restore(self, state: Dict[str, Any]) -> None:
        raise ValueError(
            "a sharded simulation cannot restore; load the checkpoint "
            "into a serial simulation instead"
        )

    def close(self) -> None:
        """Reap the worker processes (safe to call more than once)."""
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
