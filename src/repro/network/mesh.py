"""N-dimensional mesh topology with dimension-order routing.

The paper's conclusion points at the topology question its routers
open up: "high-radix routers reduce network hop count, presenting
challenges in the design of optimal network topologies.  New routing
algorithms are required..."  This module provides the classic
comparison substrate — a k-ary n-mesh with deterministic
dimension-order (e-cube) routing — so network-level experiments can
contrast the Clos networks of Figure 19 with a direct topology built
from the same routers.

Dimension-order routing on a mesh (no wrap-around links) is
deadlock-free with a single virtual channel: packets correct one
dimension at a time in a fixed order, so the channel dependence graph
is acyclic.  Each switch carries ``concentration`` hosts, using radix
``2 * n + concentration``.

Switch ids are coordinate tuples; port numbering per switch:

* ports ``2d`` / ``2d + 1`` — the +/− neighbor in dimension ``d``
  (absent at the mesh edge);
* ports ``2n .. 2n + concentration - 1`` — host ports.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.rng import Rng
from ..core.errors import invariant

from .topology import PortRef

Coord = Tuple[int, ...]


class Mesh:
    """A k-ary n-mesh of switches with attached hosts.

    Args:
        dims: Switches per dimension, e.g. ``(4, 4)`` for a 4x4 mesh.
        concentration: Hosts attached to each switch.
    """

    def __init__(self, dims: Sequence[int], concentration: int = 1) -> None:
        if not dims:
            raise ValueError("dims must be non-empty")
        for d in dims:
            if d < 2:
                raise ValueError(f"each dimension must be >= 2, got {d}")
        if concentration < 1:
            raise ValueError(
                f"concentration must be >= 1, got {concentration}"
            )
        self.dims = tuple(dims)
        self.concentration = concentration
        self.n = len(self.dims)
        self.num_switches = 1
        for d in self.dims:
            self.num_switches *= d
        self.num_hosts = self.num_switches * concentration
        #: Radix a physical router needs for this topology.
        self.radix = 2 * self.n + concentration

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def switch_ids(self) -> List[Coord]:
        coords: List[Coord] = [()]
        for size in self.dims:
            coords = [c + (x,) for c in coords for x in range(size)]
        return coords

    def ports_used(self, switch: Coord) -> int:
        """Port index space per switch (edge ports may be unwired)."""
        return 2 * self.n + self.concentration

    def wired_ports(self, switch: Coord) -> List[int]:
        """Ports of ``switch`` that actually lead somewhere (interior
        links plus host ports; mesh-edge ports are unwired)."""
        self._check(switch)
        ports = []
        for d in range(self.n):
            if switch[d] + 1 < self.dims[d]:
                ports.append(2 * d)
            if switch[d] - 1 >= 0:
                ports.append(2 * d + 1)
        ports.extend(range(2 * self.n, 2 * self.n + self.concentration))
        return ports

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def neighbor(self, switch: Coord, port: int) -> PortRef:
        """Endpoint reached from ``port`` of ``switch``."""
        self._check(switch)
        if port < 2 * self.n:
            d, positive = divmod(port, 2)
            step = 1 if positive == 0 else -1
            coord = switch[d] + step
            if not 0 <= coord < self.dims[d]:
                raise ValueError(
                    f"port {port} of {switch} faces the mesh edge"
                )
            target = switch[:d] + (coord,) + switch[d + 1 :]
            # The reverse port on the neighbor: opposite direction.
            back = 2 * d + (1 if positive == 0 else 0)
            return PortRef(switch=target, port=back)
        local = port - 2 * self.n
        if local >= self.concentration:
            raise ValueError(f"port {port} out of range on {switch}")
        return PortRef(switch=None, port=0, host=self._host_id(switch, local))

    def host_attachment(self, host: int) -> PortRef:
        if not 0 <= host < self.num_hosts:
            raise ValueError(
                f"host {host} out of range 0..{self.num_hosts - 1}"
            )
        switch_index, local = divmod(host, self.concentration)
        return PortRef(
            switch=self._coord(switch_index), port=2 * self.n + local
        )

    def _host_id(self, switch: Coord, local: int) -> int:
        return self._index(switch) * self.concentration + local

    def _index(self, switch: Coord) -> int:
        idx = 0
        for size, c in zip(self.dims, switch):
            idx = idx * size + c
        return idx

    def _coord(self, index: int) -> Coord:
        coord: List[int] = []
        for size in reversed(self.dims):
            index, c = divmod(index, size)
            coord.append(c)
        return tuple(reversed(coord))

    def _check(self, switch: Coord) -> None:
        if len(switch) != self.n:
            raise ValueError(f"switch id {switch} has wrong arity")
        for c, size in zip(switch, self.dims):
            if not 0 <= c < size:
                raise ValueError(f"switch id {switch} out of range")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def hop_count(self, src_host: int, dst_host: int) -> int:
        """Routers traversed under dimension-order routing."""
        a = self.host_attachment(src_host).switch
        b = self.host_attachment(dst_host).switch
        invariant(a is not None and b is not None,
                  "host attaches to no switch", check="topology")
        return 1 + sum(abs(x - y) for x, y in zip(a, b))

    def route(
        self, src_host: int, dst_host: int, rng: Rng
    ) -> List[int]:
        """Dimension-order (e-cube) source route.

        Deterministic — the ``rng`` argument exists for protocol
        compatibility with oblivious topologies and is unused.
        """
        if not 0 <= dst_host < self.num_hosts:
            raise ValueError(f"dst_host {dst_host} out of range")
        src = self.host_attachment(src_host).switch
        dst_ref = self.host_attachment(dst_host)
        dst = dst_ref.switch
        invariant(src is not None and dst is not None,
                  "host attaches to no switch", check="topology")
        ports: List[int] = []
        current = list(src)
        for d in range(self.n):
            while current[d] != dst[d]:
                if current[d] < dst[d]:
                    ports.append(2 * d)
                    current[d] += 1
                else:
                    ports.append(2 * d + 1)
                    current[d] -= 1
        ports.append(dst_ref.port)
        return ports

    def route_avoiding(
        self,
        src_host: int,
        dst_host: int,
        rng: Rng,
        link_ok,
    ) -> "List[int] | None":
        """A dimension-order route using only links ``link_ok`` approves.

        Tries every permutation of the dimension correction order (in a
        fixed deterministic sequence — ``rng`` is unused, like
        :meth:`route`) and returns the first whose links are all
        approved, or None when no permutation works.  Best-effort:
        mixing dimension orders across packets forfeits the e-cube
        deadlock-freedom argument, so fault experiments that need a
        deadlock-free guarantee should run on the Clos topology.
        """
        import itertools

        src = self.host_attachment(src_host).switch
        dst_ref = self.host_attachment(dst_host)
        dst = dst_ref.switch
        invariant(src is not None and dst is not None,
                  "host attaches to no switch", check="topology")
        for order in itertools.permutations(range(self.n)):
            ports: List[int] = []
            current = list(src)
            ok = True
            for d in order:
                while ok and current[d] != dst[d]:
                    if current[d] < dst[d]:
                        port = 2 * d
                        step = 1
                    else:
                        port = 2 * d + 1
                        step = -1
                    if not link_ok(tuple(current), port):
                        ok = False
                        break
                    ports.append(port)
                    current[d] += step
                if not ok:
                    break
            if ok and link_ok(tuple(current), dst_ref.port):
                ports.append(dst_ref.port)
                return ports
        return None

    def average_hop_count(self) -> float:
        """Expected routers traversed under uniform random traffic."""
        total = 0.0
        for dim in self.dims:
            # Mean |x - y| for independent uniform x, y in [0, dim).
            s = sum(abs(x - y) for x in range(dim) for y in range(dim))
            total += s / (dim * dim)
        return 1.0 + total
