"""Network-level router model.

Figure 19 simulates 4096-node Clos networks; the paper notes that
"because of the complexity of simulating a large network, we use the
simulation methodology outlined in [19] to reduce the simulation time
with minimal loss in the accuracy of the simulation".  In the same
spirit this module provides a reduced-detail router for multi-router
simulation: an input-queued VC router with

* per-VC input buffers and credit-based flow control toward the
  downstream router (real backpressure, unlike the standalone switch
  models whose outputs always drain);
* source routing (each flit carries its remaining output-port list);
* single-cycle separable allocation plus a configurable
  ``pipeline_delay`` that models the internal pipeline depth of the
  actual (hierarchical) router microarchitecture — deeper for higher
  radix, per Section 2's t_r = t_cy (X + Y log2 k);
* the same ``flit_cycles`` switch/channel serialization as the
  switch-level models.

The absolute saturation point of a single router is taken from the
switch-level simulations; what the network simulation adds — hop count,
serialization, queueing across stages, and backpressure — is what
Figure 19 is about (zero-load latency and network-level saturation of
high- vs low-radix Clos networks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.arbiter import BatchArbiterBank, RoundRobinArbiter, _np
from ..core.batch import (
    HAVE_NUMPY,
    ArrayBusyTracker,
    MirroredOutputVcState,
    QueueArrays,
    mirror_credit_array,
    mirror_vc_bank,
)
from ..core.errors import invariant
from ..core.buffers import VcBufferBank
from ..core.credit import CreditCounter
from ..core.flit import Flit
from ..core.pipeline import BusyTracker, DelayLine
from ..core.vcstate import OutputVcState
from ..engine.component import AlwaysActive, Component
from ..engine.hooks import EngineHooks


@dataclass(frozen=True)
class NetworkRouterConfig:
    """Parameters of one network router (and its output channels)."""

    num_ports: int
    num_vcs: int = 4
    buffer_depth: int = 8
    flit_cycles: int = 4
    pipeline_delay: int = 3
    channel_latency: int = 1
    credit_latency: int = 1
    #: Vectorize the per-cycle candidate scan over struct-of-arrays
    #: mirrors (see repro.core.batch).  Byte-identical to the scalar
    #: path; silently ignored when numpy is unavailable.
    batch_hot_path: bool = False

    def __post_init__(self) -> None:
        if self.num_ports < 2:
            raise ValueError(f"num_ports must be >= 2, got {self.num_ports}")
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.buffer_depth < 1:
            raise ValueError(
                f"buffer_depth must be >= 1, got {self.buffer_depth}"
            )
        if self.flit_cycles < 1:
            raise ValueError(
                f"flit_cycles must be >= 1, got {self.flit_cycles}"
            )


def pipeline_depth_for_radix(radix: int, base: int = 2) -> int:
    """Router pipeline depth scaling as X + log2(k)/2 (Section 2)."""
    return base + max(1, round(math.log2(radix) / 2))


class OutputLink:
    """One router output port: where it leads and its flow-control state.

    ``alive`` models link failure (repro.faults): a dead link stops
    transmitting — flits queued toward it simply wait — until the fault
    schedule brings it back up.
    """

    __slots__ = ("deliver", "space", "vc_state", "credits", "is_host",
                 "alive")

    def __init__(
        self,
        num_vcs: int,
        deliver: Callable[[Flit, int], None],
        downstream_depth: Optional[int],
    ) -> None:
        self.deliver = deliver
        self.vc_state = OutputVcState(num_vcs)
        self.is_host = downstream_depth is None
        self.alive = True
        if downstream_depth is None:
            self.credits: Optional[List[CreditCounter]] = None
        else:
            self.credits = [
                CreditCounter(downstream_depth) for _ in range(num_vcs)
            ]

    def credit_available(self, vc: int) -> bool:
        return self.credits is None or self.credits[vc].available

    def consume_credit(self, vc: int) -> None:
        if self.credits is not None:
            self.credits[vc].consume()

    def restore_credit(self, vc: int) -> None:
        if self.credits is not None:
            self.credits[vc].restore()


class NetworkRouter(Component):
    """Reduced-detail input-queued VC router for network simulation."""

    # The reduced-detail model folds its internal pipeline into a fixed
    # ``pipeline_delay``, so only arrival ("RC") and link transmission
    # ("ST") are observable per hop.
    TRACE_STAGES = ("RC", "ST")

    def __init__(self, config: NetworkRouterConfig, name: str = "") -> None:
        self.config = config
        self.name = name
        self.cycle = 0
        self.hooks = EngineHooks()
        n, v = config.num_ports, config.num_vcs
        self.inputs = [VcBufferBank(v, config.buffer_depth) for _ in range(n)]
        self.links: List[Optional[OutputLink]] = [None] * n
        self._input_arb = [RoundRobinArbiter(v) for _ in range(n)]
        self._output_arb = [RoundRobinArbiter(n) for _ in range(n)]
        self.input_busy = BusyTracker(n)
        self.output_busy = BusyTracker(n)
        # Credits owed upstream: (sink, vc) pairs delayed by
        # credit_latency, kept unapplied so sanitizers can count them.
        self._credit_out: DelayLine[Tuple[Callable[[int], None], int]] = DelayLine(
            config.credit_latency
        )
        # Per-input credit-return callbacks, installed during wiring.
        self.credit_sinks: List[Optional[Callable[[int], None]]] = [None] * n
        # Output VC releases pending tail departure.
        self._vc_release: DelayLine[Tuple[int, int, int]] = DelayLine(
            config.flit_cycles
        )
        # Per-input activity flags (see routers.base.Router): allocation
        # skips inputs whose banks are known-empty.
        self._in_active: Union[List[bool], AlwaysActive] = [False] * n
        # Buffered flits, by conservation (accepts minus transmits):
        # O(1) where occupancy() scans every bank.
        self._resident = 0
        self._staged_credits: tuple = ()
        self._staged_releases: tuple = ()
        # Fault machinery (repro.faults): wedged input read ports and
        # the NetworkFaultInjector that may claim committed credit
        # deliveries.  Inert (one None/empty-set test) without a plan.
        self._stuck_inputs: set = set()
        self.fault_injector = None
        self._batch = bool(config.batch_hot_path) and HAVE_NUMPY
        if self._batch:
            self._init_batch()

    def _init_batch(self) -> None:
        """Struct-of-arrays mirrors for the batched candidate scan.

        Input banks are mirrored on the flit's *next route hop*
        (``route_key=True``); link flow-control state is mirrored as
        each link attaches.  Host links have no credit counters, so
        their ``_b_cred_ok`` lanes stay permanently True — matching
        ``OutputLink.credit_available``.  Only the candidate gather is
        batched; output arbitration and transmits keep their scalar
        form.
        """
        n, v = self.config.num_ports, self.config.num_vcs
        self._b_in = QueueArrays(n * v)
        for i, bank in enumerate(self.inputs):
            mirror_vc_bank(bank, self._b_in, i * v, route_key=True)
        self._b_cred_ok = _np.ones(n * v, dtype=bool)
        self._b_vc_owner = _np.full(n * v, -1, dtype=_np.int64)
        # Ports still awaiting attach(); while nonzero, the batched scan
        # replicates the scalar "output not attached" error check.
        self._b_unattached = n
        self.input_busy = ArrayBusyTracker(n)
        self.output_busy = ArrayBusyTracker(n)
        self._input_arb_b = BatchArbiterBank(n, v)

    # ------------------------------------------------------------------

    def attach(self, port: int, link: OutputLink) -> None:
        """Install the output link for ``port``."""
        if self.links[port] is not None:
            raise RuntimeError(f"{self.name}: port {port} already attached")
        self.links[port] = link
        if self._batch:
            v = self.config.num_vcs
            base = port * v
            invariant(all(o is None for o in link.vc_state.owners),
                      "cannot mirror an owned VC ledger",
                      check="batch-mirror")
            link.vc_state = MirroredOutputVcState(
                v, base, self._b_vc_owner
            )
            if link.credits is not None:
                link.credits = mirror_credit_array(
                    link.credits, self._b_cred_ok, base
                )
            self._b_unattached -= 1

    def accept(self, port: int, flit: Flit) -> None:
        self.inputs[port][flit.vc].push(flit)
        self._in_active[port] = True
        self._resident += 1
        if self.hooks.flit_move:
            self.hooks.emit_flit_move("accept", flit, port, self.cycle)
        if self.hooks.stage_enter:
            self.hooks.emit_stage_enter(flit, "RC", port, self.cycle)

    def input_space(self, port: int, vc: int) -> int:
        return self.inputs[port][vc].free_slots

    def occupancy(self) -> int:
        return sum(b.occupancy() for b in self.inputs)

    # ------------------------------------------------------------------

    def compute(self, cycle: int) -> None:
        """Phase 1: collect matured credits and VC releases."""
        self.cycle = cycle
        self._staged_credits = self._credit_out.pop_ready(cycle)
        self._staged_releases = self._vc_release.pop_ready(cycle)

    def commit(self, cycle: int) -> None:
        """Phase 2: apply credits/releases, then allocate and transmit."""
        hooks = self.hooks
        inj = self.fault_injector
        for sink, vc in self._staged_credits:
            if inj is not None and inj.drop_credit(self, sink, vc, cycle):
                continue
            sink(vc)
            if hooks.credit:
                hooks.emit_credit(-1, vc, cycle)
        for port, vc, pid in self._staged_releases:
            link = self.links[port]
            invariant(link is not None, "VC release on a detached output "
                      "port", cycle=cycle, port=port, vc=vc,
                      check="topology")
            link.vc_state.release(vc, pid)
        self._staged_credits = ()
        self._staged_releases = ()
        self._allocate()
        self.cycle = cycle + 1

    def busy(self) -> bool:
        """Parking predicate: pending flits, credits, or VC releases."""
        if self._resident:
            return True
        return bool(self._credit_out or self._vc_release)

    def next_event(self, now: int) -> Optional[int]:
        """Horizon: resident flits need the next cycle; otherwise the
        earliest pending credit or VC release.  Pure read (R013)."""
        if self._resident:
            return now + 1
        horizon: Optional[int] = None
        for due in (self._credit_out.next_due(), self._vc_release.next_due()):
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        return horizon

    def set_exhaustive(self) -> None:
        """Reference schedule: disable the per-input activity flags."""
        self._in_active = AlwaysActive()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    #: Wiring/spec excluded from snapshots: ``links``/``credit_sinks``
    #: hold delivery callbacks into the owning simulation (their
    #: flow-control *state* is captured explicitly below), ``config``/
    #: ``name`` are construction parameters, and the fault injector is
    #: shared across routers and checkpointed by the simulation.
    SNAPSHOT_WIRING = (
        "hooks", "config", "name", "links", "credit_sinks",
        "fault_injector",
    )

    def _snapshot_state(self) -> Dict[str, Any]:
        """Explicit capture: every ``__init__`` attribute that is not
        wiring, with delayed credits encoded as (input port, vc)."""
        if self._staged_credits or self._staged_releases:
            raise RuntimeError(
                f"{self.name}: snapshot between compute and commit "
                "(staged intents pending)"
            )
        sink_port = {
            id(sink): port
            for port, sink in enumerate(self.credit_sinks)
            if sink is not None
        }
        batch: Dict[str, Any] = {}
        if self._batch:
            # The flat base arrays and the batch arbiter travel in the
            # same capture as the mirrored objects referencing them, so
            # the one-pass deepcopy memo preserves the aliasing.
            batch = {
                "_b_in": self._b_in,
                "_b_cred_ok": self._b_cred_ok,
                "_b_vc_owner": self._b_vc_owner,
                "_input_arb_b": self._input_arb_b,
            }
        return {
            **batch,
            "cycle": self.cycle,
            "inputs": self.inputs,
            "_input_arb": self._input_arb,
            "_output_arb": self._output_arb,
            "input_busy": self.input_busy,
            "output_busy": self.output_busy,
            "_credit_out": self._credit_out.dump(
                lambda item: (sink_port[id(item[0])], item[1])
            ),
            "_vc_release": self._vc_release,
            "_in_active": self._in_active,
            "_resident": self._resident,
            "_stuck_inputs": self._stuck_inputs,
            "links": [
                None if link is None else {
                    "alive": link.alive,
                    "vc_state": link.vc_state,
                    "credits": link.credits,
                }
                for link in self.links
            ],
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Apply a capture in place; link objects keep their identity
        (their delivery callbacks are live wiring) and only their
        flow-control state is replaced."""
        self.cycle = state["cycle"]
        if self._batch:
            self._b_in = state["_b_in"]
            self._b_cred_ok = state["_b_cred_ok"]
            self._b_vc_owner = state["_b_vc_owner"]
            self._input_arb_b = state["_input_arb_b"]
        self.inputs = state["inputs"]
        self._input_arb = state["_input_arb"]
        self._output_arb = state["_output_arb"]
        self.input_busy = state["input_busy"]
        self.output_busy = state["output_busy"]
        self._credit_out = DelayLine.load(
            state["_credit_out"],
            lambda item: (self.credit_sinks[item[0]], item[1]),
        )
        self._vc_release = state["_vc_release"]
        self._in_active = state["_in_active"]
        self._resident = state["_resident"]
        self._stuck_inputs = state["_stuck_inputs"]
        self._staged_credits = ()
        self._staged_releases = ()
        for link, captured in zip(self.links, state["links"]):
            if link is None or captured is None:
                continue
            link.alive = captured["alive"]
            link.vc_state = captured["vc_state"]
            link.credits = captured["credits"]

    def _allocate(self) -> None:
        now = self.cycle
        n = self.config.num_ports
        if self._batch:
            requests = self._gather_candidates_batched()
        else:
            requests = self._gather_candidates()
        for out, reqs in requests.items():
            if not self.output_busy.free(out, now):
                continue
            lines = [False] * n
            by_input = {}
            for i, vc, flit in reqs:
                lines[i] = True
                by_input[i] = (vc, flit)
            winner = self._output_arb[out].arbitrate(lines)
            if winner is None:
                continue
            vc, flit = by_input[winner]
            self._transmit(winner, vc, flit, out)

    def _gather_candidates(self) -> dict:
        """Input arbitration: one (input, vc, flit) candidate per free
        input, keyed by the candidate's next-hop output port."""
        now = self.cycle
        requests: dict = {}
        for i in range(self.config.num_ports):
            if not self._in_active[i]:
                continue
            if not self.input_busy.free(i, now):
                continue
            cands = [
                self._candidate(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([c is not None for c in cands])
            if vc is None:
                continue
            flit = cands[vc]
            invariant(flit is not None, "input arbiter granted a VC with "
                      "no candidate flit", cycle=self.cycle, port=i, vc=vc,
                      check="arbitration")
            out = flit.route[flit.hops]
            requests.setdefault(out, []).append((i, vc, flit))
        return requests

    def _gather_candidates_batched(self) -> dict:
        """Whole-matrix equivalent of :meth:`_gather_candidates`.

        The scalar gather is a pure read apart from input-arbiter
        pointer motion, so one eligibility matrix over the free inputs
        reproduces the ascending-i scan exactly; rows not passed to the
        arbiter bank behave as all-False rows (no grant, no pointer
        motion — same as the scalar skip).  The route-exhaustion and
        unattached-output errors of :meth:`_candidate` are replicated in
        the scalar scan order before any gather indexes by route key.
        """
        now = self.cycle
        n, v = self.config.num_ports, self.config.num_vcs
        a = self._b_in
        requests: dict = {}
        free = _np.nonzero(self.input_busy.array <= now)[0]
        if not free.size:
            return requests
        occm = a.occ.reshape(n, v)[free] > 0
        if self._stuck_inputs:
            for (i, vc) in sorted(self._stuck_inputs):
                pos = int(_np.searchsorted(free, i))
                if pos < free.size and free[pos] == i:
                    occm[pos, vc] = False
        if not occm.any():
            return requests
        key2 = a.key.reshape(n, v)[free]
        if (occm & (key2 < 0)).any() or self._b_unattached:
            self._raise_bad_route(free, occm, key2)
        keyc = _np.where(occm, key2, 0)
        alive = _np.fromiter(
            (link is not None and link.alive for link in self.links),
            dtype=bool, count=n,
        )
        flat = keyc * v + _np.arange(v)[None, :]
        own = self._b_vc_owner[flat]
        cand = (
            occm
            & alive[keyc]
            & self._b_cred_ok[flat]
            & ((a.pid.reshape(n, v)[free] == own)
               | (a.head.reshape(n, v)[free] & (own < 0)))
        )
        winners = self._input_arb_b.arbitrate_rows(free, cand)
        for pos in _np.nonzero(winners >= 0)[0].tolist():
            i = int(free[pos])
            vc = int(winners[pos])
            flit = self.inputs[i][vc].head()
            invariant(flit is not None, "batched input arbitration granted "
                      "a VC with no candidate flit", cycle=now, port=i,
                      vc=vc, check="arbitration")
            out = flit.route[flit.hops]
            requests.setdefault(out, []).append((i, vc, flit))
        return requests

    def _raise_bad_route(self, free, occm, key2) -> None:
        """Raise :meth:`_candidate`'s routing errors in scan order.

        Called when a scanned head flit's route key is -1 (exhausted
        route) or while any port lacks a link; walks the scanned lanes
        row-major — the scalar scan order — and raises for the first
        offender, if any.
        """
        v = self.config.num_vcs
        for pos, vc in zip(*_np.nonzero(occm)):
            key = int(key2[pos, vc])
            if key < 0:
                pid = int(self._b_in.pid[int(free[pos]) * v + int(vc)])
                raise RuntimeError(
                    f"{self.name}: flit {pid} has exhausted its route"
                )
            if self.links[key] is None:
                raise RuntimeError(
                    f"{self.name}: output {key} not attached"
                )

    def _candidate(self, i: int, vc: int) -> Optional[Flit]:
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        if flit.hops >= len(flit.route):
            raise RuntimeError(
                f"{self.name}: flit {flit.packet_id} has exhausted its route"
            )
        out = flit.route[flit.hops]
        link = self.links[out]
        if link is None:
            raise RuntimeError(f"{self.name}: output {out} not attached")
        if not link.alive:
            return None
        if not link.credit_available(flit.vc):
            return None
        state = link.vc_state
        if flit.is_head:
            if not (
                state.is_free(flit.vc)
                or state.owner(flit.vc) == flit.packet_id
            ):
                return None
        else:
            if state.owner(flit.vc) != flit.packet_id:
                return None
        return flit

    def _transmit(self, i: int, vc: int, flit: Flit, out: int) -> None:
        link = self.links[out]
        invariant(link is not None, "transmit toward a detached output "
                  "port", cycle=self.cycle, port=out, check="topology")
        popped = self.inputs[i][vc].pop()
        invariant(popped is flit, "input buffer head changed between "
                  "grant and pop", cycle=self.cycle, port=i, vc=vc,
                  check="buffer-integrity")
        if not self.inputs[i]:
            self._in_active[i] = False
        self._resident -= 1
        fc = self.config.flit_cycles
        self.input_busy.reserve(i, self.cycle, fc)
        self.output_busy.reserve(out, self.cycle, fc)
        if flit.is_head:
            link.vc_state.allocate(flit.vc, flit.packet_id)
        flit.out_vc = flit.vc
        flit.hops += 1
        link.consume_credit(flit.vc)
        latency = (
            fc + self.config.pipeline_delay + self.config.channel_latency
        )
        link.deliver(flit, self.cycle + latency)
        if self.hooks.grant:
            self.hooks.emit_grant(flit, out, self.cycle)
        if self.hooks.stage_enter:
            self.hooks.emit_stage_enter(flit, "ST", out, self.cycle)
        if flit.is_tail:
            self._vc_release.push(self.cycle, (out, flit.vc, flit.packet_id))
        # Return a credit upstream for the freed input buffer slot.
        sink = self.credit_sinks[i]
        if sink is not None:
            self._credit_out.push(self.cycle, (sink, vc))
