"""Collective-communication workload DAGs.

Each builder expresses one collective as message nodes whose edges are
"packet delivered -> next send eligible" — the dependency structure a
real collective runtime imposes on the fabric:

* **ring all-reduce** — 2(N-1) steps; at step ``s`` every rank sends
  one chunk to its right neighbor, gated on having received the step
  ``s-1`` chunk from its left neighbor (the sends pipeline, exactly
  like a real ring all-reduce).
* **recursive-doubling all-reduce** — log2(N) rounds of pairwise
  exchanges with partner ``rank XOR 2**round``, each round gated on
  the previous round's received half.
* **all-to-all** — every rank sends one personalized message to every
  other rank, all eligible at once (the incast-heavy phase).
* **ring broadcast** — a chain from the root; each hop forwards after
  receiving.

The composable forms (``build_*``) append into a shared
:class:`~repro.workloads.base.WorkloadBuilder` with per-rank entry
dependencies (``after``) and return per-rank exit dependencies, which
is how :func:`transformer_decode` sequences attention and MLP
all-reduces per layer across decode steps, separated by a compute
``gap`` — the tensor-parallel inference traffic shape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .base import Workload, WorkloadBuilder

#: Per-rank dependency frontier: ``after[r]`` gates rank ``r``'s first
#: sends of a phase; exits likewise name the nodes whose delivery
#: means rank ``r`` has finished the phase.
Frontier = List[Tuple[int, ...]]


def _entry(after: Optional[Frontier], rank: int) -> Tuple[int, ...]:
    return after[rank] if after is not None else ()


def build_ring_allreduce(
    builder: WorkloadBuilder,
    size: int = 1,
    phase: str = "allreduce",
    after: Optional[Frontier] = None,
    gap: int = 0,
) -> Frontier:
    """Append a ring all-reduce over every rank; returns the exits."""
    n = builder.num_ranks
    steps = 2 * (n - 1)
    prev: List[int] = []
    for step in range(steps):
        cur: List[int] = []
        for rank in range(n):
            dest = (rank + 1) % n
            if step == 0:
                deps: Sequence[int] = _entry(after, rank)
                delay = gap
            else:
                # Gate on the chunk received from the left neighbor.
                deps = (prev[(rank - 1) % n],)
                delay = 0
            cur.append(builder.add(
                src=rank, dest=dest, size=size, deps=deps, delay=delay,
                flow=f"{phase}.r{rank}", phase=phase,
            ))
        prev = cur
    # Rank r's last chunk arrives from its left neighbor at the final
    # step: that delivery completes the collective for rank r.
    return [(prev[(rank - 1) % n],) for rank in range(n)]


def build_recursive_doubling_allreduce(
    builder: WorkloadBuilder,
    size: int = 1,
    phase: str = "allreduce",
    after: Optional[Frontier] = None,
    gap: int = 0,
) -> Frontier:
    """Append a recursive-doubling all-reduce (power-of-two ranks)."""
    n = builder.num_ranks
    if n & (n - 1):
        raise ValueError(
            f"recursive doubling needs a power-of-two rank count, got {n}"
        )
    rounds = n.bit_length() - 1
    prev: List[int] = []
    for rnd in range(rounds):
        stride = 1 << rnd
        cur: List[int] = []
        for rank in range(n):
            partner = rank ^ stride
            if rnd == 0:
                deps: Sequence[int] = _entry(after, rank)
                delay = gap
            else:
                # Rank needs last round's message *destined to it*
                # (sent by its previous partner) before combining.
                deps = (prev[rank ^ (stride >> 1)],)
                delay = 0
            cur.append(builder.add(
                src=rank, dest=partner, size=size, deps=deps, delay=delay,
                flow=f"{phase}.r{rank}", phase=phase,
            ))
        prev = cur
    final_stride = 1 << (rounds - 1)
    return [(prev[rank ^ final_stride],) for rank in range(n)]


def build_alltoall(
    builder: WorkloadBuilder,
    size: int = 1,
    phase: str = "alltoall",
    after: Optional[Frontier] = None,
    gap: int = 0,
) -> Frontier:
    """Append an all-to-all: N-1 personalized sends per rank."""
    n = builder.num_ranks
    inbound: List[List[int]] = [[] for _ in range(n)]
    for rank in range(n):
        deps = _entry(after, rank)
        for offset in range(1, n):
            dest = (rank + offset) % n
            idx = builder.add(
                src=rank, dest=dest, size=size, deps=deps, delay=gap,
                flow=f"{phase}.r{rank}", phase=phase,
            )
            inbound[dest].append(idx)
    return [tuple(inbound[rank]) for rank in range(n)]


def build_ring_broadcast(
    builder: WorkloadBuilder,
    size: int = 1,
    root: int = 0,
    phase: str = "broadcast",
    after: Optional[Frontier] = None,
    gap: int = 0,
) -> Frontier:
    """Append a ring broadcast: root -> root+1 -> ... around the ring."""
    n = builder.num_ranks
    exits: List[Tuple[int, ...]] = [() for _ in range(n)]
    prev: Optional[int] = None
    first: Optional[int] = None
    for hop in range(n - 1):
        src = (root + hop) % n
        dest = (root + hop + 1) % n
        deps: Sequence[int]
        if prev is None:
            deps = _entry(after, src)
            delay = gap
        else:
            deps = (prev,)
            delay = 0
        prev = builder.add(
            src=src, dest=dest, size=size, deps=deps, delay=delay,
            flow=f"{phase}.hop{hop}", phase=phase,
        )
        if first is None:
            first = prev
        exits[dest] = (prev,)
    # The root is done once its own send has been delivered.
    if first is not None:
        exits[root] = (first,)
    return exits


_ALLREDUCE_BUILDERS = {
    "ring": build_ring_allreduce,
    "recursive-doubling": build_recursive_doubling_allreduce,
}


def all_reduce(
    num_ranks: int, size: int = 1, algorithm: str = "ring"
) -> Workload:
    """A single all-reduce as a standalone workload."""
    try:
        build = _ALLREDUCE_BUILDERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown all-reduce algorithm {algorithm!r}; "
            f"use one of {sorted(_ALLREDUCE_BUILDERS)}"
        ) from None
    builder = WorkloadBuilder(num_ranks, name=f"allreduce-{algorithm}")
    build(builder, size=size)
    return builder.build()


def all_to_all(num_ranks: int, size: int = 1) -> Workload:
    """A single all-to-all exchange as a standalone workload."""
    builder = WorkloadBuilder(num_ranks, name="alltoall")
    build_alltoall(builder, size=size)
    return builder.build()


def broadcast(num_ranks: int, size: int = 1, root: int = 0) -> Workload:
    """A single ring broadcast as a standalone workload."""
    builder = WorkloadBuilder(num_ranks, name="broadcast")
    build_ring_broadcast(builder, size=size, root=root)
    return builder.build()


def transformer_decode(
    num_ranks: int,
    layers: int = 2,
    steps: int = 1,
    size: int = 4,
    gap: int = 8,
    algorithm: str = "ring",
) -> Workload:
    """Tensor-parallel transformer decode traffic.

    Per decode step, per layer: an attention all-reduce then an MLP
    all-reduce, each entered ``gap`` cycles (the compute time) after
    the rank finished the previous phase.  Phases are labeled
    ``s<step>.l<layer>.<attn|mlp>`` so per-phase step time and skew
    land in ``stats.workload.*``.
    """
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    try:
        build = _ALLREDUCE_BUILDERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown all-reduce algorithm {algorithm!r}; "
            f"use one of {sorted(_ALLREDUCE_BUILDERS)}"
        ) from None
    builder = WorkloadBuilder(num_ranks, name="decode")
    frontier: Optional[Frontier] = None
    for step in range(steps):
        for layer in range(layers):
            for sub in ("attn", "mlp"):
                frontier = build(
                    builder, size=size,
                    phase=f"s{step}.l{layer}.{sub}",
                    after=frontier, gap=gap,
                )
    return builder.build()
