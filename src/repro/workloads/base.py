"""Dependency-driven workload DAGs.

A :class:`Workload` replaces the open-loop injection process with a
directed acyclic graph of *messages*: each node names a source rank, a
destination rank, and a size in flits, and becomes eligible to send
only once all of its dependencies have been **delivered** (tail flit
ejected at the destination) plus an optional think/compute delay.
Offered load is therefore an output of the simulation, not an input —
the closed-loop behavior that open-loop sweeps cannot show.

The runtime contract mirrors the traffic layer's pre-drawn arrival
model so both drive loops work unchanged:

* :meth:`Workload.eligible` is a **pure** probe (rule R014 pins this):
  it reports the earliest cycle >= ``now`` at which a rank has a
  message ready, and is consulted by the harness's ``_next_work`` wake
  source, so :class:`~repro.engine.EventScheduler` fast-forward never
  jumps over a send cycle.
* :meth:`Workload.next_message` pops ready messages; the harness calls
  it only on executed cycles, which both schedulers execute
  identically.
* :meth:`Workload.deliver` completes a node and releases its
  successors; deliveries happen on executed cycles too (a flit in
  flight keeps its router busy), so the DAG evolves byte-identically
  in cycle and event mode by construction.

Acyclicity is guaranteed structurally: :meth:`WorkloadBuilder.add`
only accepts dependencies on nodes that already exist, so every edge
points backwards in insertion order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Message:
    """One ready-to-send message popped from a :class:`Workload`."""

    node: int  #: node id inside the workload DAG
    src: int
    dest: int
    size: int  #: flits
    flow: str  #: flow label ("" = unlabeled)
    phase: str  #: phase label ("" = unlabeled)


class _Node:
    """One DAG node (internal representation)."""

    __slots__ = (
        "idx", "src", "dest", "size", "delay", "at", "flow", "phase",
        "succs", "indegree", "ready_at", "sent_at", "delivered_at",
    )

    def __init__(
        self,
        idx: int,
        src: int,
        dest: int,
        size: int,
        delay: int,
        at: Optional[int],
        flow: str,
        phase: str,
    ) -> None:
        self.idx = idx
        self.src = src
        self.dest = dest
        self.size = size
        self.delay = delay
        self.at = at
        self.flow = flow
        self.phase = phase
        self.succs: List[int] = []
        self.indegree = 0
        self.ready_at = -1  #: set when the node becomes eligible
        self.sent_at = -1  #: cycle the harness popped it for injection
        self.delivered_at = -1  #: cycle the tail flit ejected


class WorkloadBuilder:
    """Incrementally assembles a :class:`Workload` DAG.

    Dependencies may only reference nodes added earlier, so the graph
    is acyclic by construction — there is no way to express a cycle.
    """

    def __init__(self, num_ranks: int, name: str = "workload",
                 allow_self: bool = False) -> None:
        if num_ranks < 2:
            raise ValueError(f"num_ranks must be >= 2, got {num_ranks}")
        self.num_ranks = num_ranks
        self.name = name
        #: Self-sends (src == dest) are almost always construction bugs
        #: in synthetic DAGs, but a *switch* trace legitimately records
        #: a packet entering and leaving the same port number — replay
        #: opts in.
        self.allow_self = allow_self
        self._nodes: List[_Node] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def add(
        self,
        src: int,
        dest: int,
        size: int = 1,
        deps: Sequence[int] = (),
        delay: int = 0,
        at: Optional[int] = None,
        flow: str = "",
        phase: str = "",
    ) -> int:
        """Append one message node; returns its id.

        ``deps`` are delivered-before edges; ``delay`` is think/compute
        time added after the last dependency delivers; ``at`` pins a
        dependency-free node to an absolute release cycle (trace
        replay).
        """
        n = len(self._nodes)
        if not 0 <= src < self.num_ranks:
            raise ValueError(f"src {src} outside [0, {self.num_ranks})")
        if not 0 <= dest < self.num_ranks:
            raise ValueError(f"dest {dest} outside [0, {self.num_ranks})")
        if src == dest and not self.allow_self:
            raise ValueError(f"node {n}: src == dest == {src}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if at is not None and deps:
            raise ValueError("absolute release (`at`) requires no deps")
        if at is not None and at < 0:
            raise ValueError(f"at must be >= 0, got {at}")
        node = _Node(n, src, dest, size, delay, at, flow, phase)
        for dep in deps:
            if not 0 <= dep < n:
                raise ValueError(
                    f"node {n}: dep {dep} must name an earlier node"
                )
            self._nodes[dep].succs.append(n)
            node.indegree += 1
        self._nodes.append(node)
        return n

    def build(self) -> "Workload":
        if not self._nodes:
            raise ValueError("workload has no messages")
        return Workload(self.num_ranks, self._nodes, self.name)


class Workload:
    """Runtime state of one dependency-driven workload.

    Shared by every rank's :class:`~repro.workloads.source.
    WorkloadSource` (or the network harness): per-rank ready heaps of
    ``(ready_at, node_id)`` feed the probes, and delivery callbacks
    release successors.  Construct via :class:`WorkloadBuilder` or the
    family factories in :mod:`repro.workloads`.
    """

    def __init__(
        self, num_ranks: int, nodes: List[_Node], name: str = "workload"
    ) -> None:
        self.num_ranks = num_ranks
        self.name = name
        self._nodes = nodes
        self._ready: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_ranks)
        ]
        self._by_packet: Dict[int, int] = {}
        self._delivered = 0
        self.flits_total = sum(n.size for n in nodes)
        #: True when any message sends a rank to itself — fine on a
        #: switch (ports are independent), unroutable on a network.
        self.has_self_sends = any(n.src == n.dest for n in nodes)
        for node in nodes:
            if node.indegree == 0:
                node.ready_at = node.at if node.at is not None else node.delay
                heapq.heappush(
                    self._ready[node.src], (node.ready_at, node.idx)
                )

    # ------------------------------------------------------------------
    # Pure probes (wake horizons; R014 pins their purity)
    # ------------------------------------------------------------------

    def eligible(self, rank: int, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which ``rank`` can send, or None.

        Pure: reports the per-rank ready-heap head without popping it,
        so the event scheduler may probe it any number of times.
        """
        heap = self._ready[rank]
        if not heap:
            return None
        ready = heap[0][0]
        return ready if ready > now else now

    def next_ready(self, now: int) -> Optional[int]:
        """Earliest send horizon over all ranks (network wake source)."""
        horizon: Optional[int] = None
        for heap in self._ready:
            if heap:
                ready = heap[0][0]
                if horizon is None or ready < horizon:
                    horizon = ready
        if horizon is None:
            return None
        return horizon if horizon > now else now

    def ready_ranks(self, now: int) -> List[int]:
        """Ranks with a message ready at ``now``, ascending (pure)."""
        return [
            rank
            for rank in range(self.num_ranks)
            if self._ready[rank] and self._ready[rank][0][0] <= now
        ]

    def done(self) -> bool:
        """True once every message has been delivered."""
        return self._delivered == len(self._nodes)

    @property
    def remaining(self) -> int:
        return len(self._nodes) - self._delivered

    @property
    def messages(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Mutating transitions (executed cycles only)
    # ------------------------------------------------------------------

    def next_message(self, rank: int, now: int) -> Optional[Message]:
        """Pop ``rank``'s next ready message, or None if none is due."""
        heap = self._ready[rank]
        if not heap or heap[0][0] > now:
            return None
        _, idx = heapq.heappop(heap)
        node = self._nodes[idx]
        node.sent_at = now
        return Message(
            node=idx, src=node.src, dest=node.dest, size=node.size,
            flow=node.flow, phase=node.phase,
        )

    def sent(self, node_id: int, packet_id: int, now: int) -> None:
        """Bind the packet id minted for node ``node_id``."""
        self._by_packet[packet_id] = node_id

    def deliver(self, packet_id: int, now: int) -> bool:
        """Complete the node behind ``packet_id``; release successors.

        Returns False (and does nothing) for packet ids the workload
        does not own, so harnesses can call it for every ejected tail.
        """
        idx = self._by_packet.get(packet_id)
        if idx is None:
            return False
        node = self._nodes[idx]
        node.delivered_at = now
        self._delivered += 1
        for succ_idx in node.succs:
            succ = self._nodes[succ_idx]
            succ.indegree -= 1
            if succ.indegree == 0:
                succ.ready_at = now + succ.delay
                heapq.heappush(
                    self._ready[succ.src], (succ.ready_at, succ_idx)
                )
        return True

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def message_latencies(self) -> List[int]:
        """Send-to-delivery latency of every delivered message."""
        return [
            n.delivered_at - n.sent_at
            for n in self._nodes
            if n.delivered_at >= 0
        ]

    def makespan(self) -> int:
        """Cycle of the last delivery so far (0 before any)."""
        return max(
            (n.delivered_at for n in self._nodes if n.delivered_at >= 0),
            default=0,
        )

    def flow_latencies(self) -> Dict[str, int]:
        """Per-flow first-send to last-delivery span (completed flows)."""
        first: Dict[str, int] = {}
        last: Dict[str, int] = {}
        complete: Dict[str, bool] = {}
        for n in self._nodes:
            if not n.flow:
                continue
            if n.delivered_at < 0:
                complete[n.flow] = False
                continue
            complete.setdefault(n.flow, True)
            prev = first.get(n.flow)
            first[n.flow] = (
                n.sent_at if prev is None else min(prev, n.sent_at)
            )
            last[n.flow] = max(last.get(n.flow, -1), n.delivered_at)
        return {
            flow: last[flow] - first[flow]
            for flow in sorted(first)
            if complete.get(flow)
        }

    def phase_spans(self) -> Dict[str, Tuple[int, int]]:
        """Per-phase (first send, last delivery), completed phases only."""
        spans: Dict[str, List[int]] = {}
        complete: Dict[str, bool] = {}
        for n in self._nodes:
            if not n.phase:
                continue
            entry = spans.setdefault(n.phase, [2 ** 62, -1])
            if n.sent_at >= 0:
                entry[0] = min(entry[0], n.sent_at)
            entry[1] = max(entry[1], n.delivered_at)
            if n.delivered_at < 0:
                complete[n.phase] = False
            else:
                complete.setdefault(n.phase, True)
        return {
            phase: (first, last)
            for phase, (first, last) in sorted(spans.items())
            if complete.get(phase) and first < 2 ** 62
        }

    def phase_skews(self) -> Dict[str, int]:
        """Per-phase completion skew: spread of each rank's last delivery.

        The collective-skew metric: within one completed phase, the
        difference between the earliest and latest per-destination-rank
        final delivery cycle.
        """
        last_by_rank: Dict[str, Dict[int, int]] = {}
        complete: Dict[str, bool] = {}
        for n in self._nodes:
            if not n.phase:
                continue
            if n.delivered_at < 0:
                complete[n.phase] = False
                continue
            complete.setdefault(n.phase, True)
            ranks = last_by_rank.setdefault(n.phase, {})
            ranks[n.dest] = max(ranks.get(n.dest, -1), n.delivered_at)
        return {
            phase: max(ranks.values()) - min(ranks.values())
            for phase, ranks in sorted(last_by_rank.items())
            if complete.get(phase) and ranks
        }

    def stats(self) -> Dict[str, int]:
        """Aggregate ``workload.*`` counters (integer-valued, for the
        :class:`~repro.routers.base.RouterStats` extra convention)."""
        out: Dict[str, int] = {
            "workload.messages": len(self._nodes),
            "workload.flits": self.flits_total,
            "workload.delivered": self._delivered,
            "workload.makespan": self.makespan(),
        }
        latencies = sorted(self.message_latencies())
        if latencies:
            out["workload.msg_p50"] = _percentile(latencies, 50.0)
            out["workload.msg_p99"] = _percentile(latencies, 99.0)
            out["workload.msg_max"] = latencies[-1]
        flows = sorted(self.flow_latencies().values())
        if flows:
            out["workload.flows"] = len(flows)
            out["workload.flow_p50"] = _percentile(flows, 50.0)
            out["workload.flow_p99"] = _percentile(flows, 99.0)
        phases = self.phase_spans()
        if phases:
            steps = sorted(last - first for first, last in phases.values())
            out["workload.phases"] = len(phases)
            out["workload.step_mean"] = round(sum(steps) / len(steps))
            out["workload.step_max"] = steps[-1]
        skews = sorted(self.phase_skews().values())
        if skews:
            out["workload.skew_mean"] = round(sum(skews) / len(skews))
            out["workload.skew_max"] = skews[-1]
        return out

    def fold_stats(self, stats) -> None:
        """Fold :meth:`stats` into ``RouterStats.extra`` counters."""
        for name, value in self.stats().items():
            stats.bump(name, value)

    def annotate(self, collector) -> None:
        """Label the collector's packets with flow/phase annotations.

        The Chrome export merges these into each span's ``args`` (see
        :func:`repro.trace.chrome.chrome_trace_events`); packets
        without annotations render exactly as before.
        """
        for packet_id, idx in self._by_packet.items():
            node = self._nodes[idx]
            labels: Dict[str, str] = {}
            if node.flow:
                labels["flow"] = node.flow
            if node.phase:
                labels["phase"] = node.phase
            if labels:
                collector.annotate_packet(packet_id, **labels)

    # ------------------------------------------------------------------
    # Introspection (tests, tooling)
    # ------------------------------------------------------------------

    def sends_per_rank(self) -> List[int]:
        counts = [0] * self.num_ranks
        for n in self._nodes:
            counts[n.src] += 1
        return counts

    def receives_per_rank(self) -> List[int]:
        counts = [0] * self.num_ranks
        for n in self._nodes:
            counts[n.dest] += 1
        return counts

    def edges(self) -> Iterable[Tuple[int, int]]:
        """(dep, node) edges — every edge points backwards by id."""
        for n in self._nodes:
            for succ in n.succs:
                yield n.idx, succ


def _percentile(data: List[int], q: float) -> int:
    """Nearest-rank style percentile on pre-sorted ints (rounded)."""
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return round(data[lo] * (1.0 - frac) + data[hi] * frac)
