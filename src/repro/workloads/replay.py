"""Trace-replay workloads: re-inject a recorded flit schedule.

Two ingestion formats:

* **CSV** — one message per row, ``cycle,src,dest,size[,flow]`` (a
  header row is recognized and skipped; ``#`` comment lines and blank
  lines are ignored).
* **Chrome trace JSON** — the export written by ``repro.cli trace
  --chrome`` (or :func:`repro.trace.chrome.dump_chrome_trace`): each
  packet's spans are grouped by the ``packet`` arg, its release cycle
  is the earliest span start, its size the number of distinct flits,
  and ``src``/``dest`` ride in the span args.

Every replayed message becomes a dependency-free DAG node pinned to an
absolute release cycle (``at``), so the schedule replays
cycle-accurately: a message is offered to the fabric at exactly its
recorded cycle (delivery then depends on the simulated fabric, which
is the point of replaying against a different configuration).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from .base import Workload, WorkloadBuilder

#: (cycle, src, dest, size, flow) rows ready for DAG construction.
ReplayRow = Tuple[int, int, int, int, str]

Source = Union[str, Path, Iterable[str]]


def _read_lines(source: Source) -> List[str]:
    if isinstance(source, (str, Path)):
        return Path(source).read_text(encoding="utf-8").splitlines()
    return list(source)


def parse_csv_rows(source: Source) -> List[ReplayRow]:
    """Parse ``cycle,src,dest,size[,flow]`` rows from a CSV trace."""
    rows: List[ReplayRow] = []
    for lineno, raw in enumerate(_read_lines(source), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = [f.strip() for f in line.split(",")]
        if lineno == 1 and not fields[0].lstrip("-").isdigit():
            continue  # header row
        if len(fields) not in (4, 5):
            raise ValueError(
                f"replay CSV line {lineno}: expected "
                f"cycle,src,dest,size[,flow], got {line!r}"
            )
        try:
            cycle, src, dest, size = (int(f) for f in fields[:4])
        except ValueError:
            raise ValueError(
                f"replay CSV line {lineno}: non-integer field in {line!r}"
            ) from None
        flow = fields[4] if len(fields) == 5 else ""
        rows.append((cycle, src, dest, size, flow))
    return rows


def parse_chrome_rows(source: Source) -> List[ReplayRow]:
    """Recover per-packet messages from an exported Chrome trace."""
    text = "\n".join(_read_lines(source))
    doc = json.loads(text)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    packets: dict = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        if "packet" not in args or "src" not in args or "dest" not in args:
            continue
        pid = args["packet"]
        entry = packets.setdefault(
            pid, {"at": event["ts"], "src": args["src"],
                  "dest": args["dest"], "flits": set(),
                  "flow": args.get("flow", "")},
        )
        entry["at"] = min(entry["at"], event["ts"])
        entry["flits"].add(args.get("flit", 0))
    rows: List[ReplayRow] = []
    for pid in sorted(packets):
        entry = packets[pid]
        rows.append((
            int(entry["at"]), int(entry["src"]), int(entry["dest"]),
            max(1, len(entry["flits"])), str(entry["flow"]),
        ))
    return rows


def _workload_from_rows(
    rows: List[ReplayRow], num_ranks: Optional[int], name: str
) -> Workload:
    if not rows:
        raise ValueError("replay trace contains no messages")
    needed = 1 + max(max(r[1], r[2]) for r in rows)
    ranks = num_ranks if num_ranks is not None else max(2, needed)
    if needed > ranks:
        raise ValueError(
            f"replay trace references rank {needed - 1} but the "
            f"workload only has {ranks} ranks"
        )
    # Switch traces legitimately carry src == dest rows (a packet in
    # and out of the same port number), so replay allows them; the
    # network harness rejects such workloads at attach time instead.
    builder = WorkloadBuilder(ranks, name=name, allow_self=True)
    # Stable release order: by cycle, then src, then dest.
    for cycle, src, dest, size, flow in sorted(rows):
        builder.add(
            src=src, dest=dest, size=size, at=cycle, flow=flow,
            phase="replay",
        )
    return builder.build()


def from_csv(source: Source, num_ranks: Optional[int] = None) -> Workload:
    """Build a replay workload from a CSV flit schedule."""
    return _workload_from_rows(
        parse_csv_rows(source), num_ranks, "replay-csv"
    )


def from_chrome_trace(
    source: Source, num_ranks: Optional[int] = None
) -> Workload:
    """Build a replay workload from an exported Chrome trace."""
    return _workload_from_rows(
        parse_chrome_rows(source), num_ranks, "replay-chrome"
    )


def load_trace(source: Source, num_ranks: Optional[int] = None) -> Workload:
    """Sniff the format (JSON vs CSV) and build the replay workload."""
    lines = _read_lines(source)
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped[0] in "{[":
            return from_chrome_trace(lines, num_ranks)
        break
    return from_csv(lines, num_ranks)
