"""Closed-loop request/reply workloads.

Every client rank runs ``window`` independent closed-loop chains
against its server: a request is sent, the server replies (reply
packets are typically larger — a read response), and after ``think``
cycles of client think time the next request of that chain becomes
eligible.  Offered load therefore *emerges* from the round-trip
latency — the closed-loop saturation behavior an open-loop injection
process cannot express: when the fabric slows down, the clients slow
down with it instead of building an unbounded backlog.
"""

from __future__ import annotations

from typing import Callable, Optional

from .base import Workload, WorkloadBuilder


def _opposite(num_ranks: int) -> Callable[[int], int]:
    def partner(rank: int) -> int:
        return (rank + num_ranks // 2) % num_ranks
    return partner


def request_reply(
    num_ranks: int,
    requests: int = 4,
    window: int = 1,
    think: int = 0,
    service: int = 0,
    request_size: int = 1,
    reply_size: int = 4,
    partner: Optional[Callable[[int], int]] = None,
) -> Workload:
    """Build the closed-loop request/reply workload.

    Args:
        num_ranks: Every rank acts as a client (and as some other
            rank's server).
        requests: Transactions per chain.
        window: Independent outstanding-request chains per client
            (the client's maximum outstanding requests).
        think: Client think time between receiving a reply and the
            chain's next request becoming eligible.
        service: Server-side delay between receiving a request and the
            reply becoming eligible.
        request_size / reply_size: Packet sizes in flits.
        partner: client rank -> server rank map; defaults to the rank
            halfway across (guaranteeing off-node traffic).

    Each transaction carries a ``rr.<client>.<chain>.<i>`` flow label,
    so ``stats.workload.flow_p50``/``flow_p99`` report transaction
    round-trip percentiles.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    pick = partner if partner is not None else _opposite(num_ranks)
    builder = WorkloadBuilder(num_ranks, name="request-reply")
    for client in range(num_ranks):
        server = pick(client)
        if server == client:
            raise ValueError(
                f"partner({client}) == {client}; a rank cannot serve "
                "itself"
            )
        for chain in range(window):
            prev_reply: Optional[int] = None
            for i in range(requests):
                flow = f"rr.{client}.{chain}.{i}"
                req = builder.add(
                    src=client, dest=server, size=request_size,
                    deps=() if prev_reply is None else (prev_reply,),
                    delay=think if prev_reply is not None else 0,
                    flow=flow, phase="",
                )
                prev_reply = builder.add(
                    src=server, dest=client, size=reply_size,
                    deps=(req,), delay=service, flow=flow, phase="",
                )
    return builder.build()
