"""Dependency-driven application workloads.

Unlike the open-loop synthetic patterns in :mod:`repro.traffic`, a
workload is a per-flow DAG: a message becomes eligible to inject only
once its dependencies have been *delivered* by the simulated fabric.
Three families are provided — closed-loop request/reply, collective
phase DAGs (ring / recursive-doubling all-reduce, all-to-all, ring
broadcast, and transformer-decode sequences of them), and
cycle-accurate trace replay (CSV or ``repro.cli trace --chrome``
output).  :class:`WorkloadSource` adapts a workload to the
:class:`~repro.traffic.source.TrafficSource` drain contract so the
same harness, cycle stepper, and event scheduler drive it unchanged.
"""

from .base import Message, Workload, WorkloadBuilder
from .collectives import (
    all_reduce,
    all_to_all,
    broadcast,
    build_alltoall,
    build_recursive_doubling_allreduce,
    build_ring_allreduce,
    build_ring_broadcast,
    transformer_decode,
)
from .replay import (
    from_chrome_trace,
    from_csv,
    load_trace,
    parse_chrome_rows,
    parse_csv_rows,
)
from .request_reply import request_reply
from .source import WorkloadSource

__all__ = [
    "Message",
    "Workload",
    "WorkloadBuilder",
    "WorkloadSource",
    "all_reduce",
    "all_to_all",
    "broadcast",
    "build_alltoall",
    "build_recursive_doubling_allreduce",
    "build_ring_allreduce",
    "build_ring_broadcast",
    "from_chrome_trace",
    "from_csv",
    "load_trace",
    "parse_chrome_rows",
    "parse_csv_rows",
    "request_reply",
    "transformer_decode",
]
