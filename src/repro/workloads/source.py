"""Workload-driven per-port packet source.

Implements the :class:`~repro.traffic.source.TrafficSource` drain
contract (``queue``/``head``/``pop``/``backlog``/``peek_arrival``/
``generate``) over a shared :class:`~repro.workloads.base.Workload`,
so :class:`~repro.harness.experiment.SwitchSimulation` drives it
through the exact same injection path as the synthetic sources — both
the cycle stepper and the event scheduler work unchanged, with
``peek_arrival`` delegating to the workload's pure eligibility probe
as the fast-forward wake horizon.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.flit import Flit, make_packet
from .base import Workload


class WorkloadSource:
    """Feeds one input port from a shared workload DAG.

    A port whose id is outside the workload's rank range stays idle
    forever (a fabric larger than the job), which ``peek_arrival``
    reports as "no arrival, ever".
    """

    def __init__(self, input_id: int, workload: Workload) -> None:
        self.input_id = input_id
        self.workload = workload
        self.queue: Deque[Flit] = deque()
        self.packets_generated = 0
        self.flits_generated = 0
        #: Peak injection-queue depth (flits) ever observed; folded
        #: into ``stats.traffic.max_source_queue``.
        self.peak_backlog = 0

    def _active(self) -> bool:
        return self.input_id < self.workload.num_ranks

    def peek_arrival(self, now: int) -> Optional[int]:
        """Cycle >= ``now`` of the next eligible message, or None.

        Pure (delegates to :meth:`Workload.eligible`), so the event
        scheduler may poll it any number of times per cycle.
        """
        if not self._active():
            return None
        return self.workload.eligible(self.input_id, now)

    def generate(self, now: int, measured: bool) -> Optional[int]:
        """Queue every message that became eligible by ``now``.

        Returns the first packet id generated this cycle (or None),
        mirroring the TrafficSource signature.  Workload packets are
        never measurement-labeled — their latency accounting lives in
        the workload itself (``measured`` is accepted and ignored so
        the harness's generate loop needs no special case).
        """
        if not self._active():
            return None
        first: Optional[int] = None
        while True:
            message = self.workload.next_message(self.input_id, now)
            if message is None:
                break
            flits = make_packet(
                dest=message.dest,
                size=message.size,
                src=self.input_id,
                created_at=now,
                measured=False,
            )
            self.workload.sent(message.node, flits[0].packet_id, now)
            self.queue.extend(flits)
            self.packets_generated += 1
            self.flits_generated += len(flits)
            if first is None:
                first = flits[0].packet_id
        if len(self.queue) > self.peak_backlog:
            self.peak_backlog = len(self.queue)
        return first

    def head(self) -> Optional[Flit]:
        """Next flit waiting to enter the router, or None."""
        return self.queue[0] if self.queue else None

    def pop(self) -> Flit:
        return self.queue.popleft()

    def backlog(self) -> int:
        """Flits waiting in the (unbounded) source queue."""
        return len(self.queue)
