"""Per-stage latency breakdown from measured flit lifecycles.

Reconstructs the paper's pipeline diagrams (Figures 5(b) and 7) from
*measured* simulation instead of the static
:mod:`repro.core.pipeline_diagram` tables: stage spans are derived from
the ``stage_enter`` timestamps each traced flit recorded, aggregated
into per-stage count/mean/min/max statistics, and — when the
architecture is known — cross-checked column-by-column against
:func:`~repro.core.pipeline_diagram.measured_pipeline`'s expected
zero-load spans.  The differential tests in ``tests/test_trace.py``
pin the two against each other on contention-free runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.config import RouterConfig
from ..core.pipeline_diagram import head_flit_latency, measured_pipeline
from .collector import FlitTrace, TraceCollector


def stage_spans(rec: FlitTrace) -> List[Tuple[str, int, int, int]]:
    """(stage, start, end, port) spans for one completed flit.

    A stage's span runs from its *first* entry to the first entry of
    the next distinct stage (so speculative retries — repeated ``XB``
    launches after a NACK, re-issued ``SA`` bids — count toward the
    stage where the flit was waiting); the final stage ends at the
    eject cycle.  Incomplete records yield no spans.
    """
    if rec.ejected_at is None:
        return []
    firsts: List[Tuple[str, int, int]] = []
    seen = set()
    for stage, cycle, port in rec.stages:
        if stage not in seen:
            seen.add(stage)
            firsts.append((stage, cycle, port))
    spans = []
    for pos, (stage, start, port) in enumerate(firsts):
        if pos + 1 < len(firsts):
            end = firsts[pos + 1][1]
        else:
            end = rec.ejected_at
        spans.append((stage, start, end, port))
    return spans


@dataclass(frozen=True)
class StageSummary:
    """Aggregate occupancy of one pipeline stage across traced flits."""

    stage: str
    count: int
    mean: float
    min: int
    max: int


RecordSource = Union[TraceCollector, Iterable[FlitTrace]]


def _records_of(source: RecordSource) -> List[FlitTrace]:
    if isinstance(source, TraceCollector):
        return source.records(completed_only=True)
    return [r for r in source if r.complete]


def stage_breakdown(
    source: RecordSource, stage_order: Sequence[str] = ()
) -> List[StageSummary]:
    """Per-stage span statistics over the completed records.

    Stages are ordered by ``stage_order`` (e.g. a router's
    ``TRACE_STAGES``) with unlisted stages appended in first-seen
    order.
    """
    samples: Dict[str, List[int]] = {}
    order: List[str] = list(stage_order)
    for rec in _records_of(source):
        for stage, start, end, _port in stage_spans(rec):
            if stage not in samples:
                samples[stage] = []
                if stage not in order:
                    order.append(stage)
            samples[stage].append(end - start)
    out = []
    for stage in order:
        spans = samples.get(stage)
        if not spans:
            continue
        out.append(StageSummary(
            stage=stage,
            count=len(spans),
            mean=sum(spans) / len(spans),
            min=min(spans),
            max=max(spans),
        ))
    return out


def format_stage_breakdown(
    source: RecordSource,
    config: Optional[RouterConfig] = None,
    architecture: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render the measured per-stage breakdown as an aligned table.

    With ``config`` and ``architecture`` given, an extra ``zero-load``
    column shows the expected contention-free span from
    :func:`~repro.core.pipeline_diagram.measured_pipeline` — the
    measured mean exceeding it is queueing/contention time, which is
    exactly what the paper's pipeline-occupancy discussion is about.
    """
    from ..harness.report import format_table

    expected: Dict[str, int] = {}
    stage_order: Sequence[str] = ()
    if config is not None and architecture is not None:
        stages = measured_pipeline(config, architecture)
        expected = {s.name: s.cycles for s in stages}
        stage_order = [s.name for s in stages]
    if isinstance(source, TraceCollector) and not stage_order:
        stage_order = source.declared_stages
    rows: List[Sequence[object]] = []
    summaries = stage_breakdown(source, stage_order)
    for s in summaries:
        row: List[object] = [s.stage, s.count, s.mean, s.min, s.max]
        if expected:
            row.append(expected.get(s.stage, float("nan")))
        rows.append(row)
    headers = ["stage", "flits", "mean", "min", "max"]
    if expected:
        headers.append("zero-load")
        recs = _records_of(source)
        latencies = [r.latency for r in recs if r.latency is not None]
        if latencies:
            rows.append([
                "total",
                len(latencies),
                sum(latencies) / len(latencies),
                min(latencies),
                max(latencies),
                head_flit_latency(measured_pipeline(config, architecture)),
            ])
    return format_table(headers, rows, title=title)
