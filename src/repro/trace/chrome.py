"""Chrome trace-event JSON export for flit lifecycle records.

Serializes a :class:`~repro.trace.collector.TraceCollector`'s records
in the Chrome Trace Event Format ("JSON Object Format"), loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* every (port, stage) pair becomes one track (a ``tid`` under a single
  ``pid``), named by ``"M"`` thread-name metadata events;
* every stage span of every completed flit becomes one ``"X"``
  (complete) event with ``ts`` = stage-entry cycle and ``dur`` = cycles
  spent in the stage (one simulated cycle is rendered as 1 µs, the
  trace format's native unit);
* packet id, flit index, VC, and the packet's src/dest ports ride in
  ``args`` so Perfetto's query engine can slice by them — and so the
  export round-trips through
  :func:`repro.workloads.replay.from_chrome_trace`; workload flow and
  phase annotations (:meth:`TraceCollector.annotate_packet`) merge
  into the same ``args``;
* fault injections and recoveries (the collector's ``fault_events``
  log, see :mod:`repro.faults`) become ``"i"`` (instant) events on a
  dedicated ``faults`` track so degradation windows line up visually
  with the flit spans they perturb.

The output is deterministic: events are emitted in a canonical sort
order and serialized with sorted keys, so identical seeds produce
byte-identical JSON (pinned by ``tests/test_engine.py``).
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Tuple, Union

from .breakdown import stage_spans
from .collector import TraceCollector

#: The fault track lives under its own pid so its tid can never
#: collide with the (port, stage) track ids under pid 0.
FAULT_PID = 1


def chrome_trace_events(collector: TraceCollector) -> List[dict]:
    """The trace-event list: metadata first, then sorted span events."""
    stage_index = _stage_indexer(collector)
    n_stages = max(1, len(stage_index))
    events: List[dict] = []
    used_tracks: Dict[int, Tuple[int, str]] = {}
    for rec in collector.records(completed_only=True):
        for stage, start, end, port in stage_spans(rec):
            idx = stage_index.setdefault(stage, len(stage_index))
            tid = port * n_stages + idx
            used_tracks[tid] = (port, stage)
            # src/dest make the export replayable (see
            # repro.workloads.replay.from_chrome_trace); annotations
            # carry workload flow/phase labels when present.
            args = {
                "packet": rec.packet_id,
                "flit": rec.flit_index,
                "vc": rec.vc,
                "src": rec.src,
                "dest": rec.dest,
            }
            args.update(collector.annotations.get(rec.packet_id, {}))
            events.append({
                "name": stage,
                "ph": "X",
                "ts": start,
                "dur": end - start,
                "pid": 0,
                "tid": tid,
                "args": args,
            })
    events.sort(key=lambda e: (
        e["ts"], e["tid"], e["name"], e["args"]["packet"], e["args"]["flit"],
    ))
    meta: List[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": collector.label or "router"},
    }]
    for tid in sorted(used_tracks):
        port, stage = used_tracks[tid]
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": f"port {port} · {stage}"},
        })
    fault_events = _fault_instant_events(collector)
    if fault_events:
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": FAULT_PID,
            "args": {"name": "faults"},
        })
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": FAULT_PID,
            "tid": 0,
            "args": {"name": "fault events"},
        })
    return meta + events + fault_events


def _fault_instant_events(collector: TraceCollector) -> List[dict]:
    """Instant ("i") events for the collector's fault-event log.

    Already deterministic in content (the injector emits in cycle
    order); re-sorted on a canonical key anyway so the byte-identical
    guarantee never depends on injector emission order.
    """
    events = [
        {
            "name": f"{kind} {direction}",
            "ph": "i",
            "ts": cycle,
            "pid": FAULT_PID,
            "tid": 0,
            "s": "p",
            "args": {"where": list(where)},
        }
        for direction, kind, where, cycle in collector.fault_events
    ]
    events.sort(key=lambda e: (e["ts"], e["name"], str(e["args"]["where"])))
    return events


def _stage_indexer(collector: TraceCollector) -> Dict[str, int]:
    """Stage -> track slot, seeded from the router's declared pipeline.

    Stages outside the declaration (none today) get slots appended in
    first-seen order, which is deterministic.
    """
    return {
        stage: idx for idx, stage in enumerate(collector.declared_stages)
    }


def to_chrome_trace(
    collector: TraceCollector,
    scheduler_stats: Optional[Dict[str, int]] = None,
) -> dict:
    """The full trace document (``traceEvents`` envelope).

    ``scheduler_stats`` (e.g. ``{"cycles_skipped": 810, "ff_jumps": 12}``
    from an :class:`~repro.engine.EventScheduler`) lands under
    ``otherData["scheduler"]`` when given; omitted, the document is
    byte-identical to what earlier versions produced, so fast-forward
    observability never perturbs the pinned trace goldens.
    """
    other: dict = {"generator": "repro.trace", "timeUnit": "cycles"}
    if scheduler_stats is not None:
        other["scheduler"] = {
            key: scheduler_stats[key] for key in sorted(scheduler_stats)
        }
    return {
        "traceEvents": chrome_trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def chrome_trace_json(collector: TraceCollector) -> str:
    """Deterministic JSON serialization of :func:`to_chrome_trace`."""
    return json.dumps(
        to_chrome_trace(collector), sort_keys=True, separators=(",", ":")
    )


def dump_chrome_trace(
    collector: TraceCollector,
    out: Union[str, IO[str]],
    scheduler_stats: Optional[Dict[str, int]] = None,
) -> int:
    """Write the trace JSON to a path or file object; returns #events."""
    doc = to_chrome_trace(collector, scheduler_stats=scheduler_stats)
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    if hasattr(out, "write"):
        out.write(text)
    else:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(doc["traceEvents"])
