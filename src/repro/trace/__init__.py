"""Flit-lifecycle tracing and pipeline-stage observability.

Built on the :class:`~repro.engine.hooks.EngineHooks` bus: the routers
emit ``stage_enter`` / ``spec_outcome`` events (plus the pre-existing
``flit_move`` / ``grant`` / ``credit`` stream) and this package turns
them into

* per-flit lifecycle records in a bounded ring buffer
  (:class:`TraceCollector`, with :class:`TraceFilter` sampling);
* Chrome trace-event JSON loadable in Perfetto
  (:func:`dump_chrome_trace`, ``repro.cli trace --chrome out.json``);
* a measured per-stage latency breakdown cross-checked against the
  static pipeline tables (:func:`format_stage_breakdown`,
  :func:`~repro.core.pipeline_diagram.measured_pipeline`);
* channel/crosspoint utilization and speculation hit-rate counters
  folded into ``RouterStats.extra`` (:meth:`TraceCollector.fold_stats`).

Tracing is strictly opt-in: with no collector attached the hook lists
stay empty and the emission guards cost a truthiness test.
"""

from .breakdown import (
    StageSummary,
    format_stage_breakdown,
    stage_breakdown,
    stage_spans,
)
from .chrome import (
    chrome_trace_events,
    chrome_trace_json,
    dump_chrome_trace,
    to_chrome_trace,
)
from .collector import (
    COUNT_ONLY,
    FlitTrace,
    TraceCollector,
    TraceFilter,
)

__all__ = [
    "TraceCollector",
    "TraceFilter",
    "FlitTrace",
    "COUNT_ONLY",
    "stage_spans",
    "stage_breakdown",
    "StageSummary",
    "format_stage_breakdown",
    "chrome_trace_events",
    "to_chrome_trace",
    "chrome_trace_json",
    "dump_chrome_trace",
]
