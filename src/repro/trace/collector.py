"""Flit-lifecycle trace collection on the engine hook bus.

A :class:`TraceCollector` subscribes to a router's (or simulation's)
:class:`~repro.engine.hooks.EngineHooks` and records, for every flit
admitted by its :class:`TraceFilter`, a :class:`FlitTrace` lifecycle
record: the inject cycle, a timestamp for each pipeline stage the flit
enters (the ``stage_enter`` events the routers emit — ``"RC"``,
``"SA"``, ``"XB"``, ``"ROW"``, ``"SUB"``, ``"ST"``), and the eject
cycle.  Records live in a bounded ring buffer so full-detail tracing
stays opt-in and memory-bounded: when the buffer is full, the oldest
record is evicted (and counted) to make room.

Independently of the per-flit records — and unaffected by the filter —
the collector accumulates aggregate counters: speculation hit/miss
counts per allocation kind (``spec_outcome`` events), per-output-channel
grant counts (utilization), a per-(input, output) crosspoint traffic
matrix, and observed cycles.  :meth:`TraceCollector.fold_stats` folds
the aggregate summaries into :class:`~repro.routers.base.RouterStats`
``extra`` counters so they ride the existing ``stats.*`` reporting path
(:func:`~repro.harness.report.format_extras`).

Everything here is passive: attaching a collector never changes router
behavior, and with no collector attached the emission guards in the
routers are single truthiness tests (see the overhead benchmark in
``benchmarks/test_perf_simulator.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.flit import Flit

#: (packet_id, flit_index): the identity of one flit within one router.
TraceKey = Tuple[int, int]


@dataclass(frozen=True)
class TraceFilter:
    """Predicate deciding which flits get lifecycle records.

    All criteria must pass (conjunction); a criterion left ``None``
    admits everything.  The decision is made once, at the flit's
    ``accept`` — later stage/eject events for unadmitted flits are
    ignored, so a rejecting filter keeps per-event cost to a dict miss.

    * ``every_nth`` — admit packets whose ``packet_id`` is a multiple
      of ``n`` (deterministic 1-in-n packet sampling; flits of a packet
      are kept or dropped together);
    * ``ports`` — admit only flits arriving on these input ports;
    * ``vcs`` — admit only flits arriving on these VCs;
    * ``packets`` — admit only these packet ids (an empty set admits
      nothing: the "count, don't record" configuration).
    """

    every_nth: int = 1
    ports: Optional[FrozenSet[int]] = None
    vcs: Optional[FrozenSet[int]] = None
    packets: Optional[FrozenSet[int]] = None

    def __post_init__(self) -> None:
        if self.every_nth < 1:
            raise ValueError(
                f"every_nth must be >= 1, got {self.every_nth}"
            )

    def admits(self, flit: Flit, port: int) -> bool:
        """True if ``flit`` (arriving on input ``port``) is traced."""
        if self.every_nth > 1 and flit.packet_id % self.every_nth:
            return False
        if self.ports is not None and port not in self.ports:
            return False
        if self.vcs is not None and flit.vc not in self.vcs:
            return False
        if self.packets is not None and flit.packet_id not in self.packets:
            return False
        return True


#: A filter that records no flits: aggregate counters only.
COUNT_ONLY = TraceFilter(packets=frozenset())


@dataclass
class FlitTrace:
    """Lifecycle of one traced flit through one router."""

    packet_id: int
    flit_index: int
    src: int
    dest: int
    vc: int
    in_port: int
    injected_at: int
    is_head: bool
    is_tail: bool
    #: Every ``stage_enter`` event, in emission order:
    #: (stage name, entry cycle, port).  Stages may repeat when a
    #: speculative step retries (shared-buffer NACK relaunches, killed
    #: distributed-allocator bids).
    stages: List[Tuple[str, int, int]] = field(default_factory=list)
    ejected_at: Optional[int] = None
    out_port: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.ejected_at is not None

    @property
    def latency(self) -> Optional[int]:
        if self.ejected_at is None:
            return None
        return self.ejected_at - self.injected_at


class TraceCollector:
    """Ring-buffered flit-lifecycle recorder + aggregate trace counters.

    Usage (standalone router or a ``SwitchSimulation``)::

        collector = TraceCollector(capacity=4096)
        sim = SwitchSimulation(router, load=0.5, tracer=collector)
        sim.run()
        for rec in collector.records():
            ...

    or attach explicitly to anything exposing a ``hooks`` bus::

        TraceCollector().attach(router)
    """

    def __init__(
        self,
        capacity: int = 4096,
        trace_filter: Optional[TraceFilter] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.filter = trace_filter if trace_filter is not None else TraceFilter()
        self._records: "OrderedDict[TraceKey, FlitTrace]" = OrderedDict()
        #: Declared pipeline of the attached router (``TRACE_STAGES``).
        self.declared_stages: Tuple[str, ...] = ()
        self.label = ""
        self._flit_cycles = 1
        self._num_ports = 0
        # Aggregate counters (filter-independent).
        self.cycles = 0
        self.accepts = 0
        self.ejects = 0
        self.grants = 0
        self.opened = 0
        self.completed = 0
        self.evicted = 0
        self.reopened = 0
        self.double_ejects = 0
        #: kind -> [hits, misses] from ``spec_outcome`` events.
        self.spec: Dict[str, List[int]] = {}
        #: output port -> switch grants toward it.
        self.grants_by_output: Dict[int, int] = {}
        #: (source, output) -> grants: the crosspoint traffic matrix.
        self.crosspoint_grants: Dict[Tuple[int, int], int] = {}
        self.fault_injects = 0
        self.fault_recovers = 0
        #: Bounded (direction, kind, where, cycle) fault-event log from
        #: the ``fault_inject``/``fault_recover`` events (see
        #: :mod:`repro.faults`); capped at ``capacity`` entries, oldest
        #: evicted first — the counters above keep exact totals.
        self.fault_events: List[Tuple[str, str, Tuple, int]] = []
        #: packet_id -> extra labels merged into the packet's Chrome
        #: span args (workload flow/phase annotations; see
        #: :meth:`annotate_packet`).
        self.annotations: Dict[int, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, target) -> "TraceCollector":
        """Subscribe to ``target.hooks``.

        ``target`` is a router or anything wrapping one (a
        ``SwitchSimulation`` exposing ``hooks`` and ``router``).
        Returns ``self`` for chaining.  One collector traces one
        router: flit identity is (packet_id, flit_index), which is only
        unique per hop.
        """
        router = getattr(target, "router", target)
        # Unwrap checking wrappers (SimSanitizer) to reach the model.
        router = getattr(router, "inner", router)
        config = getattr(router, "config", None)
        if config is not None:
            self._flit_cycles = getattr(config, "flit_cycles", 1)
            self._num_ports = getattr(
                config, "radix", getattr(config, "num_ports", 0)
            )
        self.declared_stages = tuple(getattr(router, "TRACE_STAGES", ()))
        self.label = type(router).__name__
        hooks = target.hooks
        hooks.on_flit_move(self._on_flit_move)
        hooks.on_stage_enter(self._on_stage_enter)
        hooks.on_spec_outcome(self._on_spec_outcome)
        hooks.on_grant(self._on_grant)
        hooks.on_cycle_end(self._on_cycle_end)
        hooks.on_fault_inject(self._on_fault_inject)
        hooks.on_fault_recover(self._on_fault_recover)
        return self

    def attach_network(self, sim, switch) -> "TraceCollector":
        """Trace one router of a network simulation.

        Per-flit lifecycle events come from the traced router's own
        hook bus; per-cycle counts and fault injections/recoveries are
        network-wide events emitted on the *simulation* bus, so those
        handlers subscribe there.  (The router bus never carries cycle
        or fault events in a network simulation, and vice versa, so
        nothing is double-counted.)
        """
        router = sim.routers[switch]
        self.attach(router)
        self.label = f"{type(router).__name__}[{switch}]"
        hooks = sim.hooks
        hooks.on_cycle_end(self._on_cycle_end)
        hooks.on_fault_inject(self._on_fault_inject)
        hooks.on_fault_recover(self._on_fault_recover)
        return self

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_flit_move(self, kind: str, flit: Flit, port: int,
                      cycle: int) -> None:
        key = (flit.packet_id, flit.flit_index)
        if kind == "accept":
            self.accepts += 1
            if not self.filter.admits(flit, port):
                return
            if key in self._records:
                # Same identity accepted again (only possible if one
                # collector is shared across routers): keep the newest.
                del self._records[key]
                self.reopened += 1
            elif len(self._records) >= self.capacity:
                self._records.popitem(last=False)
                self.evicted += 1
            self._records[key] = FlitTrace(
                packet_id=flit.packet_id,
                flit_index=flit.flit_index,
                src=flit.src,
                dest=flit.dest,
                vc=flit.vc,
                in_port=port,
                injected_at=cycle,
                is_head=flit.is_head,
                is_tail=flit.is_tail,
            )
            self.opened += 1
        else:  # eject
            self.ejects += 1
            rec = self._records.get(key)
            if rec is None:
                return
            if rec.ejected_at is not None:
                self.double_ejects += 1
                return
            rec.ejected_at = cycle
            rec.out_port = port
            self.completed += 1

    def _on_stage_enter(self, flit: Flit, stage: str, port: int,
                        cycle: int) -> None:
        rec = self._records.get((flit.packet_id, flit.flit_index))
        if rec is not None and rec.ejected_at is None:
            rec.stages.append((stage, cycle, port))

    def _on_spec_outcome(self, kind: str, hit: bool, port: int,
                         cycle: int) -> None:
        bucket = self.spec.setdefault(kind, [0, 0])
        bucket[0 if hit else 1] += 1

    def _on_grant(self, flit: Flit, out_port: int, cycle: int) -> None:
        self.grants += 1
        self.grants_by_output[out_port] = (
            self.grants_by_output.get(out_port, 0) + 1
        )
        xpt = (flit.src, out_port)
        self.crosspoint_grants[xpt] = self.crosspoint_grants.get(xpt, 0) + 1

    def _on_cycle_end(self, cycle: int) -> None:
        self.cycles += 1

    def _on_fault_inject(self, kind: str, where, cycle: int) -> None:
        self.fault_injects += 1
        self._log_fault("inject", kind, where, cycle)

    def _on_fault_recover(self, kind: str, where, cycle: int) -> None:
        self.fault_recovers += 1
        self._log_fault("recover", kind, where, cycle)

    def _log_fault(self, direction: str, kind: str, where,
                   cycle: int) -> None:
        if len(self.fault_events) >= self.capacity:
            self.fault_events.pop(0)
        self.fault_events.append((direction, kind, tuple(where), cycle))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def annotate_packet(self, packet_id: int, **labels: str) -> None:
        """Attach string labels to one packet's exported trace spans.

        Labels accumulate (later calls merge over earlier ones) and
        surface in the Chrome export's span ``args``; the workload
        layer uses this to tag packets with their flow and phase.
        """
        if labels:
            self.annotations.setdefault(packet_id, {}).update(labels)

    def records(self, completed_only: bool = True) -> List[FlitTrace]:
        """Buffered lifecycle records, oldest first."""
        recs = list(self._records.values())
        if completed_only:
            recs = [r for r in recs if r.complete]
        return recs

    def spec_hit_rate(self, kind: str) -> Optional[float]:
        """Hits / attempts for one speculation kind, or None if unseen."""
        bucket = self.spec.get(kind)
        if bucket is None or bucket[0] + bucket[1] == 0:
            return None
        return bucket[0] / (bucket[0] + bucket[1])

    def channel_utilization(self) -> Dict[int, float]:
        """Per-output-channel busy fraction over the observed window.

        Each grant occupies its output channel for ``flit_cycles``
        cycles; utilization is busy cycles over observed cycles.
        """
        if self.cycles == 0:
            return {}
        fc = self._flit_cycles
        return {
            port: min(1.0, count * fc / self.cycles)
            for port, count in sorted(self.grants_by_output.items())
        }

    def crosspoint_utilization(self) -> Dict[Tuple[int, int], float]:
        """Per-(input, output) crosspoint busy fraction."""
        if self.cycles == 0:
            return {}
        fc = self._flit_cycles
        return {
            xpt: min(1.0, count * fc / self.cycles)
            for xpt, count in sorted(self.crosspoint_grants.items())
        }

    def fold_stats(self, stats) -> None:
        """Fold aggregate trace counters into ``RouterStats.extra``.

        Utilization fractions are scaled to integer per-mille so they
        fit the integer ``extra`` counter convention.
        """
        stats.bump("trace.records", self.completed)
        if self.evicted:
            stats.bump("trace.evicted", self.evicted)
        if self.fault_injects:
            stats.bump("trace.fault_injects", self.fault_injects)
        if self.fault_recovers:
            stats.bump("trace.fault_recovers", self.fault_recovers)
        for kind in sorted(self.spec):
            hits, misses = self.spec[kind]
            stats.bump(f"trace.spec_hits.{kind}", hits)
            stats.bump(f"trace.spec_misses.{kind}", misses)
        util = self.channel_utilization()
        if util:
            values = list(util.values())
            stats.bump(
                "trace.chan_util_mean_permille",
                round(1000 * sum(values) / max(1, self._num_ports or len(values))),
            )
            stats.bump("trace.chan_util_max_permille",
                       round(1000 * max(values)))
