"""Multi-process shard plumbing: worker processes over pipes.

This module is deliberately generic — it knows nothing about routers
or topologies.  A :class:`ShardPool` owns N worker processes, each
built in the child from a picklable ``factory(payload)`` call and then
driven by a request/reply protocol: the parent sends one message per
worker per step (:meth:`ShardPool.send`), the workers reply in shard
order (:meth:`ShardPool.gather`).  The network layer
(:mod:`repro.network.sharded`) supplies the factory and the message
vocabulary; the equivalent of the Tiny Tera chip slices exchanging
cells at clock boundaries.

Workers start under the ``spawn`` method, so the factory and every
payload must be module-level picklable objects (the same constraint
:func:`repro.harness.parallel.run_load_sweep_parallel` already
imposes) and no parent state leaks into a child except what the
payload carries — which is what makes the per-shard RNG streams
provably identical to the serial run's.

Failure model: a worker that raises ships its formatted traceback
back over the pipe; the parent wraps it in :class:`ShardWorkerError`
(original traceback embedded), terminates the remaining workers, and
re-raises — a crashed shard can never hang the parent on a ``recv``.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Callable, List, Sequence, Tuple


class ShardWorkerError(RuntimeError):
    """A shard worker process failed; carries the remote traceback."""

    def __init__(self, shard: int, remote_traceback: str) -> None:
        super().__init__(
            f"shard worker {shard} failed:\n{remote_traceback}"
        )
        self.shard = shard
        self.remote_traceback = remote_traceback


def partition(items: Sequence, shards: int) -> List[list]:
    """Split ``items`` into ``shards`` contiguous, balanced blocks.

    The assignment is a pure function of (len(items), shards) — no
    hashing, no randomness — so shard membership is reproducible
    across runs and machines, and block sizes differ by at most one.
    """
    n = len(items)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n:
        raise ValueError(
            f"cannot split {n} items across {shards} shards; "
            f"shards must be <= {n}"
        )
    return [
        list(items[n * w // shards:n * (w + 1) // shards])
        for w in range(shards)
    ]


def _worker_main(conn, factory: Callable[[Any], Any], payload: Any) -> None:
    """Child entry point: build the worker, serve requests until done.

    The worker object's ``handle(message)`` return value is shipped
    back as ``("ok", reply)``.  Any exception — including during
    construction — ships as ``("error", traceback)`` and ends the
    child.  A ``("stop",)`` message (or a ``("finish", ...)`` reply)
    ends the loop cleanly.
    """
    try:
        worker = factory(payload)
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            conn.send(("ok", worker.handle(message)))
            if message[0] == "finish":
                break
    except EOFError:
        pass  # parent went away; nothing to report to
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ShardPool:
    """N request/reply worker processes over dedicated pipes.

    Args:
        factory: Module-level callable building the worker object in
            the child; must be picklable under spawn.
        payloads: One constructor payload per worker.
        context: Start method; ``spawn`` (the default) keeps children
            free of inherited parent state.
    """

    def __init__(
        self,
        factory: Callable[[Any], Any],
        payloads: Sequence[Any],
        context: str = "spawn",
    ) -> None:
        ctx = multiprocessing.get_context(context)
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._closed = False
        try:
            for payload in payloads:
                parent_end, child_end = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_end, factory, payload),
                    daemon=True,
                )
                proc.start()
                child_end.close()
                self._procs.append(proc)
                self._conns.append(parent_end)
        except BaseException:
            self.terminate()
            raise

    def __len__(self) -> int:
        return len(self._procs)

    def send(self, shard: int, message: Tuple) -> None:
        """Ship one message to one worker (does not wait for a reply)."""
        self._conns[shard].send(message)

    def gather(self) -> List[Any]:
        """Collect one reply per worker, in shard order.

        A worker that reported an error (or died) aborts the gather:
        the remaining workers are terminated and
        :class:`ShardWorkerError` is raised with the child's original
        traceback, so a crashed shard surfaces immediately instead of
        deadlocking the exchange.
        """
        replies: List[Any] = []
        for shard, conn in enumerate(self._conns):
            try:
                kind, body = conn.recv()
            except (EOFError, ConnectionResetError):
                self.terminate()
                raise ShardWorkerError(
                    shard, "worker process died without reporting a "
                    "traceback"
                )
            if kind == "error":
                self.terminate()
                raise ShardWorkerError(shard, body)
            replies.append(body)
        return replies

    def close(self) -> None:
        """Graceful shutdown: stop every worker, join, then clean up."""
        if self._closed:
            return
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # already finished or dead; terminate() reaps it
        self.terminate()

    def terminate(self) -> None:
        """Hard shutdown: close pipes, kill any surviving children."""
        self._closed = True
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
