"""Active-set component scheduler.

The scheduler advances a fixed set of components one cycle at a time.
Each cycle it runs the compute phase for every *active* component, then
the commit phase for every active component (two-phase barrier), then
parks components whose :meth:`~repro.engine.component.Component.busy`
predicate went False.

Parked components are skipped entirely — at low offered load or in a
large multi-stage network most routers are empty most cycles, and
skipping them removes the O(routers x ports) per-cycle floor.  A parked
component is re-activated by :meth:`Scheduler.wake`, which the harness
calls at every external arrival site (flit injection, link delivery)
*before* handing the component the event, so the component can
fast-forward its local clock via ``on_wake``.

Correctness contract: a component may only report ``busy() == False``
when running its phases would not change its state or statistics.  The
routers guarantee this structurally — an empty router's arbitration
loops are mutation-free (round-robin pointers do not advance on empty
request sets) — which is what makes active-set scheduling byte-exact
versus stepping everything (the golden tests pin this).

Components are registered in a fixed order and both phases always run
in that order, so scheduling is deterministic regardless of wake
history.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .component import Component
from .hooks import EngineHooks


class Scheduler:
    """Drive a set of :class:`Component` objects with active-set parking.

    Args:
        components: Components in deterministic phase order.
        hooks: Optional scheduler-level bus for ``cycle_start`` /
            ``cycle_end`` events spanning the whole component set.
        active_set: When False, every component runs every cycle
            (reference mode for benchmarking the parking win and for
            bisecting suspected parking bugs).
    """

    def __init__(
        self,
        components: Iterable[Component] = (),
        hooks: Optional[EngineHooks] = None,
        active_set: bool = True,
    ) -> None:
        self.components: List[Component] = []
        self.hooks = hooks if hooks is not None else EngineHooks()
        self.active_set = active_set
        self._index: Dict[int, int] = {}
        self._active: List[bool] = []
        #: Cycles advanced via :meth:`run_cycle`.
        self.cycles_run = 0
        #: Total component-cycles actually executed (compute+commit
        #: pairs).  With parking this lags ``cycles_run * len(components)``;
        #: the gap is the work active-set scheduling skipped.
        self.component_steps = 0
        for comp in components:
            self.register(comp)

    def register(self, comp: Component) -> None:
        """Append a component; phase order is registration order."""
        self._index[id(comp)] = len(self.components)
        self.components.append(comp)
        self._active.append(True)
        if not self.active_set:
            comp.set_exhaustive()

    def wake(self, comp: Component, now: int) -> None:
        """Re-activate ``comp`` for cycle ``now`` if it is parked.

        Must be called before delivering the waking event (the
        component stamps arrivals with its local clock).  No-op for
        components that are already active.
        """
        slot = self._index[id(comp)]
        if not self._active[slot]:
            self._active[slot] = True
            comp.on_wake(now)

    def active_count(self) -> int:
        return sum(self._active)

    def run_cycle(self, now: int) -> None:
        """Advance every active component through one two-phase cycle."""
        hooks = self.hooks
        if hooks.cycle_start:
            hooks.emit_cycle_start(now)
        components = self.components
        active = self._active
        if self.active_set:
            for slot, comp in enumerate(components):
                if active[slot]:
                    comp.compute(now)
            live = 0
            for slot, comp in enumerate(components):
                if active[slot]:
                    comp.commit(now)
                    live += 1
                    if not comp.busy():
                        active[slot] = False
            self.component_steps += live
        else:
            for comp in components:
                comp.compute(now)
            for comp in components:
                comp.commit(now)
            self.component_steps += len(components)
        self.cycles_run += 1
        if hooks.cycle_end:
            hooks.emit_cycle_end(now + 1)
