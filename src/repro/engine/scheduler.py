"""Active-set component scheduler and event-driven fast-forward.

The scheduler advances a fixed set of components one cycle at a time.
Each cycle it runs the compute phase for every *active* component, then
the commit phase for every active component (two-phase barrier), then
parks components whose :meth:`~repro.engine.component.Component.busy`
predicate went False.

Parked components are skipped entirely — at low offered load or in a
large multi-stage network most routers are empty most cycles, and
skipping them removes the O(routers x ports) per-cycle floor.  A parked
component is re-activated by :meth:`Scheduler.wake`, which the harness
calls at every external arrival site (flit injection, link delivery)
*before* handing the component the event, so the component can
fast-forward its local clock via ``on_wake``.

Correctness contract: a component may only report ``busy() == False``
when running its phases would not change its state or statistics.  The
routers guarantee this structurally — an empty router's arbitration
loops are mutation-free (round-robin pointers do not advance on empty
request sets) — which is what makes active-set scheduling byte-exact
versus stepping everything (the golden tests pin this).

Components are registered in a fixed order and both phases always run
in that order, so scheduling is deterministic regardless of wake
history.

Two drive modes share the :meth:`Scheduler.run_until` interface:

:class:`Scheduler`
    The cycle stepper: executes every cycle in ``[now, end)`` one by
    one.  Parked components are skipped, but empty cycle *spans* are
    still walked.
:class:`EventScheduler`
    The fast-forward mode: when every component is parked, it jumps
    straight to the earliest *horizon* — the minimum over (a) a binary
    heap of one-shot wakes posted via :meth:`EventScheduler.post_wake`,
    (b) the registered wake-source callables (arrival predictors,
    in-flight delivery heaps, fault schedules), and (c) the parked
    components' own :meth:`~repro.engine.component.Component.next_event`
    declarations.  A cycle that executes runs exactly the same code as
    cycle mode, so the two modes are byte-identical; a skipped span is
    provably state-invariant, and its ``cycle_start``/``cycle_end``
    hook events are replayed in order when anything subscribes (so
    per-cycle instrumentation — trace cycle counters, sampled metrics,
    sanitizer checks — observes an identical event stream).

Horizon safety rule: a wake source may report a cycle *earlier* than
work actually exists (the cycle executes as a no-op) but never later —
skipping a cycle with live work is a correctness bug, not a slowdown.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core.errors import UnregisteredComponentError
from .component import Component
from .hooks import EngineHooks

#: A wake source reports the earliest cycle ``>= now`` at which it will
#: produce externally-driven work, or None for "never" (as known now).
WakeSource = Callable[[int], Optional[int]]


class Scheduler:
    """Drive a set of :class:`Component` objects with active-set parking.

    Args:
        components: Components in deterministic phase order.
        hooks: Optional scheduler-level bus for ``cycle_start`` /
            ``cycle_end`` events spanning the whole component set.
        active_set: When False, every component runs every cycle
            (reference mode for benchmarking the parking win and for
            bisecting suspected parking bugs).
    """

    def __init__(
        self,
        components: Iterable[Component] = (),
        hooks: Optional[EngineHooks] = None,
        active_set: bool = True,
    ) -> None:
        self.components: List[Component] = []
        self.hooks = hooks if hooks is not None else EngineHooks()
        self.active_set = active_set
        self._index: Dict[int, int] = {}
        self._active: List[bool] = []
        #: Sorted slot indices of active components — run_cycle iterates
        #: this, so a mostly-parked population costs O(active), not
        #: O(registered).  Kept consistent with ``_active`` by
        #: register/wake/park.
        self._active_slots: List[int] = []
        self._n_active = 0
        #: Current cycle of :meth:`run_until` (the next cycle to run).
        self.now = 0
        #: Cycles advanced via :meth:`run_cycle`.
        self.cycles_run = 0
        #: Total component-cycles actually executed (compute+commit
        #: pairs).  With parking this lags ``cycles_run * len(components)``;
        #: the gap is the work active-set scheduling skipped.
        self.component_steps = 0
        #: Cycles fast-forwarded over without executing (event mode;
        #: always 0 for the cycle stepper).
        self.cycles_skipped = 0
        #: Number of fast-forward jumps taken (event mode; always 0
        #: for the cycle stepper).
        self.ff_jumps = 0
        #: Harness phases hoisted into the drive loop: per-cycle work
        #: that used to live in hand-rolled ``for cycle in range(...)``
        #: loops (fault advance, packet generation, injection before
        #: the engine cycle; delivery collection after it).
        self._pre_cycle: List[Callable[[int], None]] = []
        self._post_cycle: List[Callable[[int], None]] = []
        self._wake_sources: List[WakeSource] = []
        for comp in components:
            self.register(comp)

    def register(self, comp: Component) -> None:
        """Append a component; phase order is registration order."""
        slot = len(self.components)
        self._index[id(comp)] = slot
        self.components.append(comp)
        self._active.append(True)
        self._active_slots.append(slot)  # ascending by construction
        self._n_active += 1
        if not self.active_set:
            comp.set_exhaustive()

    def add_pre_cycle(self, fn: Callable[[int], None]) -> None:
        """Run ``fn(now)`` before each executed engine cycle."""
        self._pre_cycle.append(fn)

    def add_post_cycle(self, fn: Callable[[int], None]) -> None:
        """Run ``fn(now)`` after each executed engine cycle."""
        self._post_cycle.append(fn)

    def add_wake_source(self, source: WakeSource) -> None:
        """Register a horizon callable consulted before fast-forwarding.

        Ignored by the cycle stepper (which never jumps), accepted on
        both modes so harnesses can wire unconditionally.
        """
        self._wake_sources.append(source)

    def wake(self, comp: Component, now: int) -> None:
        """Re-activate ``comp`` for cycle ``now`` if it is parked.

        Must be called before delivering the waking event (the
        component stamps arrivals with its local clock).  No-op for
        components that are already active.
        """
        slot = self._index.get(id(comp))
        if slot is None:
            raise UnregisteredComponentError(comp)
        if not self._active[slot]:
            self._active[slot] = True
            insort(self._active_slots, slot)
            self._n_active += 1
            comp.on_wake(now)

    def active_count(self) -> int:
        return self._n_active

    def _on_park(self, comp: Component, now: int) -> None:
        """A component just parked; ``now`` is the next cycle to run.

        The cycle stepper ignores parking beyond the active-set skip;
        :class:`EventScheduler` snapshots the component's ``next_event``
        horizon here, so jump decisions never need to re-poll the
        parked population.
        """

    def run_cycle(self, now: int) -> None:
        """Advance every active component through one two-phase cycle."""
        hooks = self.hooks
        if hooks.cycle_start:
            hooks.emit_cycle_start(now)
        components = self.components
        active = self._active
        if self.active_set:
            slots = self._active_slots
            for slot in slots:
                components[slot].compute(now)
            parked = False
            for slot in slots:
                comp = components[slot]
                comp.commit(now)
                if not comp.busy():
                    active[slot] = False
                    self._n_active -= 1
                    parked = True
                    self._on_park(comp, now + 1)
            self.component_steps += len(slots)
            if parked:
                self._active_slots = [s for s in slots if active[s]]
        else:
            for comp in components:
                comp.compute(now)
            for comp in components:
                comp.commit(now)
            self.component_steps += len(components)
        self.cycles_run += 1
        if hooks.cycle_end:
            hooks.emit_cycle_end(now + 1)

    def _tick(self) -> None:
        """Execute one full cycle: harness pre-phases, engine, post."""
        now = self.now
        for fn in self._pre_cycle:
            fn(now)
        self.run_cycle(now)
        for fn in self._post_cycle:
            fn(now)
        self.now = now + 1

    def run_until(
        self, end: int, stop: Optional[Callable[[], bool]] = None
    ) -> int:
        """Advance the simulation through cycles ``[now, end)``.

        ``stop`` is checked before each cycle (drain loops terminate
        the moment their outstanding count hits zero).  Returns the
        cycle reached.  The cycle stepper executes every cycle;
        :class:`EventScheduler` overrides this with fast-forward.
        """
        while self.now < end:
            if stop is not None and stop():
                break
            self._tick()
        return self.now

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    #: Wiring and derived attributes a snapshot must not capture: the
    #: registered components checkpoint themselves, callbacks and wake
    #: sources are re-wired by the owning harness at construction, and
    #: ``_active_slots``/``_n_active``/``_index`` are rebuilt from the
    #: ``active`` flags on restore.
    SNAPSHOT_WIRING = (
        "components", "hooks", "active_set", "_index", "_active",
        "_active_slots", "_n_active", "_pre_cycle", "_post_cycle",
        "_wake_sources",
    )

    def snapshot(self) -> Dict[str, Any]:
        """Picklable scheduler state: clock, counters, active flags."""
        return {
            "now": self.now,
            "cycles_run": self.cycles_run,
            "component_steps": self.component_steps,
            "cycles_skipped": self.cycles_skipped,
            "ff_jumps": self.ff_jumps,
            "active": list(self._active),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Apply a :meth:`snapshot` onto this scheduler in place.

        The registered component set must match the snapshotted one
        (same count, same order); the components themselves are
        restored separately by the owning harness.
        """
        active = state["active"]
        if len(active) != len(self.components):
            raise ValueError(
                f"snapshot captured {len(active)} components, scheduler "
                f"has {len(self.components)}"
            )
        self.now = state["now"]
        self.cycles_run = state["cycles_run"]
        self.component_steps = state["component_steps"]
        self.cycles_skipped = state["cycles_skipped"]
        self.ff_jumps = state["ff_jumps"]
        self._active = list(active)
        self._active_slots = [s for s, on in enumerate(active) if on]
        self._n_active = len(self._active_slots)

    def next_horizon(self, now: int) -> Optional[int]:
        """Earliest upcoming cycle with possible work, or None.

        Pure read over the wake sources (and, in event mode, the time
        wheel's live head); the cycle stepper never jumps, but exposes
        the same probe so sharded workers can report a horizon in
        either mode.
        """
        horizon: Optional[int] = None
        for source in self._wake_sources:
            h = source(now)
            if h is not None and (horizon is None or h < horizon):
                horizon = h
        return horizon


class EventScheduler(Scheduler):
    """Event-driven drive mode: fast-forward over provably-idle spans.

    Maintains a binary-heap time wheel of posted one-shot wake cycles
    (:meth:`post_wake`) with lazy expiry, merged at each jump decision
    with the dynamic horizons of the registered wake sources and of the
    parked components themselves.  Most producers of future work keep
    their own priority structure (the network's in-flight flit heap,
    per-source arrival predictions, sorted fault schedules), so their
    wake source just reports the head; the wheel serves producers with
    fire-and-forget timers (e.g. injection-throttle retries).

    When at least one component is busy the engine runs every cycle,
    exactly as the cycle stepper does — fast-forward only engages when
    *all* components are parked, so arbitration, round-robin pointers,
    and every other piece of committed state evolve identically in the
    two modes (the golden and property tests pin this byte-for-byte).
    """

    def __init__(
        self,
        components: Iterable[Component] = (),
        hooks: Optional[EngineHooks] = None,
        active_set: bool = True,
    ) -> None:
        super().__init__(components, hooks=hooks, active_set=active_set)
        self._wheel: List[int] = []

    def post_wake(self, cycle: int) -> None:
        """Post a one-shot wake: cycle ``cycle`` will not be skipped.

        Stale or duplicate posts are harmless — a posted cycle with no
        actual work executes as a no-op; they only cost speed, never
        correctness (horizon safety rule).
        """
        heapq.heappush(self._wheel, cycle)

    def _on_park(self, comp: Component, now: int) -> None:
        """Snapshot the parking component's horizon into the wheel.

        A parked component's state is frozen until it is woken (R013
        pins ``next_event`` purity, and the active-set contract pins
        that parked components are not stepped), so one poll at park
        time captures every event it can produce.  If it is woken and
        re-parks, it posts a fresh horizon; the stale earlier post
        then executes one harmless no-op cycle.  This keeps jump
        decisions O(wake sources + log wheel) instead of O(components).
        """
        horizon = comp.next_event(now)
        if horizon is not None:
            heapq.heappush(self._wheel, horizon)

    def _next_horizon(self, now: int) -> Optional[int]:
        """Earliest upcoming cycle with (possible) work, or None.

        May return ``now`` itself, meaning work is due this cycle and
        no jump is possible.
        """
        wheel = self._wheel
        while wheel and wheel[0] < now:
            heapq.heappop(wheel)
        horizon: Optional[int] = wheel[0] if wheel else None
        for source in self._wake_sources:
            h = source(now)
            if h is not None and (horizon is None or h < horizon):
                horizon = h
        return horizon

    def _skip_span(self, start: int, end: int) -> None:
        """Fast-forward over ``[start, end)`` without executing.

        State is frozen across the span (all components parked, no
        wake source fires), so when per-cycle instrumentation is
        subscribed the span's ``cycle_start``/``cycle_end`` events are
        replayed in order — every observation a subscriber would have
        made cycle-stepping an idle span is made here too, keeping
        trace cycle counters, sampled metrics, and sanitizer streams
        byte-identical between modes.  With no subscribers (the common
        case) nothing is emitted and the span costs O(1).
        """
        self.cycles_skipped += end - start
        self.ff_jumps += 1
        hooks = self.hooks
        if hooks.cycle_start or hooks.cycle_end:
            for cycle in range(start, end):
                if hooks.cycle_start:
                    hooks.emit_cycle_start(cycle)
                if hooks.cycle_end:
                    hooks.emit_cycle_end(cycle + 1)

    def run_until(
        self, end: int, stop: Optional[Callable[[], bool]] = None
    ) -> int:
        """Advance to ``end``, jumping over provably-idle cycle spans.

        A jump is taken only when every component is parked *and* no
        horizon falls on the current cycle; jumps land exactly on the
        next horizon (clamped to ``end``), so no cycle with work is
        ever skipped.  ``stop`` predicates stay exact: state can only
        change on executed cycles, so checking before each executed
        cycle (and before each jump) is equivalent to the cycle
        stepper's per-cycle check.
        """
        while self.now < end:
            if stop is not None and stop():
                break
            now = self.now
            if self.active_count() == 0:
                horizon = self._next_horizon(now)
                target = end if horizon is None else min(horizon, end)
                if target > now:
                    self._skip_span(now, target)
                    self.now = target
                    continue
            self._tick()
        return self.now

    def snapshot(self) -> Dict[str, Any]:
        state = super().snapshot()
        state["wheel"] = sorted(self._wheel)
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        super().restore(state)
        wheel = list(state["wheel"])
        heapq.heapify(wheel)
        self._wheel = wheel

    def next_horizon(self, now: int) -> Optional[int]:
        """Wheel head merged with the wake sources (see base class)."""
        return self._next_horizon(now)


def make_scheduler(
    mode: str,
    components: Iterable[Component] = (),
    hooks: Optional[EngineHooks] = None,
    active_set: bool = True,
) -> Scheduler:
    """Build the drive loop for ``mode``: "cycle" or "event"."""
    if mode == "cycle":
        return Scheduler(components, hooks=hooks, active_set=active_set)
    if mode == "event":
        return EventScheduler(components, hooks=hooks, active_set=active_set)
    raise ValueError(f"unknown scheduler mode {mode!r}; use 'cycle' or 'event'")
