"""Shared two-phase simulation kernel.

Both simulation stacks — the standalone switch organizations
(:mod:`repro.routers`) and the multi-router Clos network
(:mod:`repro.network`) — run on this kernel instead of hand-rolled
cycle loops:

``Component``
    The unit of simulation.  Each cycle splits into an explicit
    ``compute`` phase (read committed state, stage intents) and a
    ``commit`` phase (apply staged intents, advance).
``Scheduler``
    Drives a set of components with *active-set scheduling*: components
    that report themselves idle via :meth:`Component.busy` are parked
    and skipped until an external event (flit or credit arrival) wakes
    them.
``EventScheduler``
    The event-driven drive mode: behind the same ``run_until(cycle)``
    interface, fast-forwards over cycle spans in which every component
    is parked and no wake source (arrival predictor, in-flight
    delivery, fault schedule) or component ``next_event`` horizon has
    work due.  Byte-identical to the cycle stepper by construction.
``EngineHooks``
    A per-component event bus (cycle start/end, flit movement, switch
    grants, credit returns) that instrumentation — sanitizers, metrics,
    tracing — attaches through instead of wrapping or subclassing the
    simulated objects.
"""

from ..core.errors import UnregisteredComponentError
from .component import AlwaysActive, Component
from .hooks import EngineHooks
from .scheduler import EventScheduler, Scheduler, make_scheduler
from .shard import ShardPool, ShardWorkerError, partition

__all__ = [
    "AlwaysActive",
    "Component",
    "EngineHooks",
    "EventScheduler",
    "Scheduler",
    "ShardPool",
    "ShardWorkerError",
    "UnregisteredComponentError",
    "make_scheduler",
    "partition",
]
