"""Shared two-phase simulation kernel.

Both simulation stacks — the standalone switch organizations
(:mod:`repro.routers`) and the multi-router Clos network
(:mod:`repro.network`) — run on this kernel instead of hand-rolled
cycle loops:

``Component``
    The unit of simulation.  Each cycle splits into an explicit
    ``compute`` phase (read committed state, stage intents) and a
    ``commit`` phase (apply staged intents, advance).
``Scheduler``
    Drives a set of components with *active-set scheduling*: components
    that report themselves idle via :meth:`Component.busy` are parked
    and skipped until an external event (flit or credit arrival) wakes
    them.
``EngineHooks``
    A per-component event bus (cycle start/end, flit movement, switch
    grants, credit returns) that instrumentation — sanitizers, metrics,
    tracing — attaches through instead of wrapping or subclassing the
    simulated objects.
"""

from .component import AlwaysActive, Component
from .hooks import EngineHooks
from .scheduler import Scheduler

__all__ = ["AlwaysActive", "Component", "EngineHooks", "Scheduler"]
