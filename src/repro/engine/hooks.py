"""Event bus for engine instrumentation.

Hot-path design: each event kind is a plain list of callbacks exposed
as a public attribute, so emitters guard with a cheap truthiness test
(``if hooks.flit_move:``) and pay nothing when nobody is listening.
Callbacks run synchronously in registration order; a callback raising
(e.g. a sanitizer surfacing an :class:`InvariantViolation`) propagates
to whoever advanced the simulation, exactly like the old wrapper-based
checks did.

Event signatures:

======================  ================================================
``cycle_start(cycle)``  fired before a component's compute phase
``cycle_end(cycle)``    fired after commit; ``cycle`` is the
                        *post-increment* value (state is "as of the end
                        of cycle ``cycle - 1``")
``flit_move(kind, flit, port, cycle)``
                        flit crossed the component boundary; ``kind``
                        is ``"accept"`` (entered on input ``port``) or
                        ``"eject"`` (left toward output ``port``)
``grant(flit, out_port, cycle)``
                        switch allocation granted; the flit starts its
                        crossbar traversal this cycle
``credit(port, vc, cycle)``
                        a credit matured and was returned upstream for
                        ``(port, vc)``
``stage_enter(flit, stage, port, cycle)``
                        the flit entered a named pipeline stage
                        (``"RC"``, ``"SA"``, ``"XB"``, ``"ROW"``,
                        ``"SUB"``, ``"ST"`` — see each router's
                        ``TRACE_STAGES``) at ``cycle``; ``port`` is the
                        input port for ingress stages and the output
                        port once a destination is decided
``spec_outcome(kind, hit, port, cycle)``
                        a speculative allocation of ``kind`` (``"cva"``,
                        ``"ova"``, ``"xpva"``, ``"subva"``) resolved as
                        a hit (``hit=True``) or was killed/NACKed
``fault_inject(kind, where, cycle)``
                        the fault injector applied a fault of ``kind``
                        (``"corrupt"``, ``"credit_loss"``, ``"stuck"``,
                        ``"link_down"``) at location ``where`` (a small
                        tuple of stable indices, e.g. ``(port,)`` or
                        ``(port, vc)``)
``fault_recover(kind, where, cycle)``
                        a fault was recovered from: ``kind`` is
                        ``"retransmit"``, ``"credit_resync"``,
                        ``"unstuck"`` or ``"link_up"``
======================  ================================================

All emissions happen during the commit phase (or in externally driven
entry points such as ``accept``) — never during ``compute``, which must
stay pure.  Lint rule R007 enforces this.
"""

from __future__ import annotations

from typing import Callable, List


class EngineHooks:
    """Callback registry for one emitter (a router or a scheduler)."""

    __slots__ = (
        "cycle_start", "cycle_end", "flit_move", "grant", "credit",
        "stage_enter", "spec_outcome", "fault_inject", "fault_recover",
    )

    def __init__(self) -> None:
        self.cycle_start: List[Callable] = []
        self.cycle_end: List[Callable] = []
        self.flit_move: List[Callable] = []
        self.grant: List[Callable] = []
        self.credit: List[Callable] = []
        self.stage_enter: List[Callable] = []
        self.spec_outcome: List[Callable] = []
        self.fault_inject: List[Callable] = []
        self.fault_recover: List[Callable] = []

    def on_cycle_start(self, fn: Callable) -> Callable:
        self.cycle_start.append(fn)
        return fn

    def on_cycle_end(self, fn: Callable) -> Callable:
        self.cycle_end.append(fn)
        return fn

    def on_flit_move(self, fn: Callable) -> Callable:
        self.flit_move.append(fn)
        return fn

    def on_grant(self, fn: Callable) -> Callable:
        self.grant.append(fn)
        return fn

    def on_credit(self, fn: Callable) -> Callable:
        self.credit.append(fn)
        return fn

    def on_stage_enter(self, fn: Callable) -> Callable:
        self.stage_enter.append(fn)
        return fn

    def on_spec_outcome(self, fn: Callable) -> Callable:
        self.spec_outcome.append(fn)
        return fn

    def on_fault_inject(self, fn: Callable) -> Callable:
        self.fault_inject.append(fn)
        return fn

    def on_fault_recover(self, fn: Callable) -> Callable:
        self.fault_recover.append(fn)
        return fn

    def emit_cycle_start(self, cycle: int) -> None:
        for fn in self.cycle_start:
            fn(cycle)

    def emit_cycle_end(self, cycle: int) -> None:
        for fn in self.cycle_end:
            fn(cycle)

    def emit_flit_move(self, kind: str, flit, port: int, cycle: int) -> None:
        for fn in self.flit_move:
            fn(kind, flit, port, cycle)

    def emit_grant(self, flit, out_port: int, cycle: int) -> None:
        for fn in self.grant:
            fn(flit, out_port, cycle)

    def emit_credit(self, port: int, vc: int, cycle: int) -> None:
        for fn in self.credit:
            fn(port, vc, cycle)

    def emit_stage_enter(self, flit, stage: str, port: int,
                         cycle: int) -> None:
        for fn in self.stage_enter:
            fn(flit, stage, port, cycle)

    def emit_spec_outcome(self, kind: str, hit: bool, port: int,
                          cycle: int) -> None:
        for fn in self.spec_outcome:
            fn(kind, hit, port, cycle)

    def emit_fault_inject(self, kind: str, where, cycle: int) -> None:
        for fn in self.fault_inject:
            fn(kind, where, cycle)

    def emit_fault_recover(self, kind: str, where, cycle: int) -> None:
        for fn in self.fault_recover:
            fn(kind, where, cycle)
