"""The unit of simulation: a two-phase component.

A cycle splits into two explicit phases:

``compute(cycle)``
    Read committed state and *stage* intents.  Implementations may only
    write ``self.cycle`` and staged-intent attributes (conventionally
    prefixed ``_staged``); everything else is committed state and must
    not change.  Lint rule R006 enforces this statically.
``commit(cycle)``
    Apply the staged intents, run the component's internal datapath for
    the cycle, and advance ``self.cycle`` to ``cycle + 1``.

The split makes the simulation order-insensitive across components:
when a :class:`~repro.engine.scheduler.Scheduler` runs compute for
every live component before any commit, no component can observe
another's same-cycle output a phase early.
"""

from __future__ import annotations

import copy
from typing import Any, ClassVar, Dict, Optional, Tuple

from .hooks import EngineHooks


class AlwaysActive:
    """Stand-in for per-input activity flags in exhaustive mode.

    Reads as True for every index and swallows writes, so a component
    switched to the reference schedule keeps its flag-maintenance code
    unchanged while its scan loops degrade to checking every input —
    the pre-active-set behaviour.
    """

    __slots__ = ()

    def __getitem__(self, index: int) -> bool:
        return True

    def __setitem__(self, index: int, value: bool) -> None:
        return None


class Component:
    """Base class for objects driven by the engine scheduler.

    Subclasses own a ``hooks`` bus, a ``cycle`` counter, and implement
    the two phases.  ``busy()`` is the parking predicate for active-set
    scheduling; ``on_wake()`` re-synchronizes a parked component's
    local clock when an external event re-activates it.

    Components are also the unit of *checkpointing*: :meth:`snapshot`
    captures every attribute except the entries of
    :attr:`SNAPSHOT_WIRING` (live wiring — hook buses, injector
    handles — that a restored simulation reconstructs rather than
    deserializes), and :meth:`restore` applies such a capture back onto
    a freshly constructed twin *in place*, preserving the object's
    identity in schedulers and sinks.  The default implementation
    copies ``self.__dict__`` wholesale; components holding references
    to objects outside themselves (shared sinks, simulations) override
    ``_snapshot_state``/``_restore_state`` with an explicit encoding —
    lint rule R010 checks such explicit snapshots for completeness
    against what ``__init__`` assigns.
    """

    #: Attribute names excluded from :meth:`snapshot` because they are
    #: wiring or derived state that restore must *not* replace.
    SNAPSHOT_WIRING: ClassVar[Tuple[str, ...]] = ("hooks",)

    def __init__(self) -> None:
        self.cycle = 0
        self.hooks = EngineHooks()

    def compute(self, cycle: int) -> None:
        """Phase 1: read committed state, stage intents."""
        raise NotImplementedError

    def commit(self, cycle: int) -> None:
        """Phase 2: apply staged intents and advance to ``cycle + 1``."""
        raise NotImplementedError

    def busy(self) -> bool:
        """True while the component has work that needs cycles.

        A component returning False may be parked by the scheduler: it
        must be a no-op to skip its phases until an external arrival
        (delivered via :meth:`on_wake`) makes it busy again.
        """
        return True

    def next_event(self, now: int) -> Optional[int]:
        """Horizon: earliest future cycle this component must next run.

        Consulted by :class:`~repro.engine.scheduler.EventScheduler`
        when the component is parked, to decide how far the simulation
        may fast-forward.  Return the earliest cycle ``> now`` at which
        the component has self-scheduled work (e.g. a delay-line
        maturity), or None when only an external wake can make it busy
        again.  Reporting *earlier* than necessary is safe (the cycle
        executes as a no-op); reporting later than the real horizon
        skips live work and corrupts the run.

        Purity contract (lint rule R013): implementations — like
        :meth:`busy` — must not mutate any state or emit hook events;
        the scheduler may call them any number of times per cycle.
        """
        return None

    def set_exhaustive(self) -> None:
        """Switch to the reference schedule: scan everything, always.

        Called by a ``Scheduler(active_set=False)`` at registration.
        Components that keep internal activity tracking (per-input
        flags) disable it here so "active-set off" really measures the
        exhaustive baseline.  Results must be identical either way —
        only the amount of provably-idle work differs.
        """

    def on_wake(self, cycle: int) -> None:
        """Re-activation callback: fast-forward the local clock.

        Called by the scheduler when an external event (flit or credit
        arrival) targets a parked component, *before* that event is
        applied, so state stamped with ``self.cycle`` (e.g. flit
        arrival times) uses the current cycle rather than the cycle the
        component was parked on.
        """
        self.cycle = cycle

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _snapshot_state(self) -> Dict[str, Any]:
        """Reference dict of the attributes a snapshot must capture.

        Values are *live* references, not copies: callers that snapshot
        several coupled objects (a network of routers plus the harness
        heaps threading flits between them) collect every component's
        reference dict first and deep-copy the whole bundle in one
        pass, so aliasing across components survives the capture.
        """
        wiring = self._snapshot_wiring()
        return {
            name: value
            for name, value in self.__dict__.items()
            if name not in wiring
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Apply an already-copied state dict onto ``self`` in place."""
        for name, value in state.items():
            setattr(self, name, value)

    @classmethod
    def _snapshot_wiring(cls) -> frozenset:
        """Union of ``SNAPSHOT_WIRING`` along the class's MRO."""
        names = set()
        for klass in cls.__mro__:
            names.update(getattr(klass, "SNAPSHOT_WIRING", ()))
        return frozenset(names)

    def snapshot(self) -> Dict[str, Any]:
        """Independent, picklable capture of this component's state."""
        return copy.deepcopy(self._snapshot_state())

    def restore(self, state: Dict[str, Any]) -> None:
        """Apply a :meth:`snapshot` capture in place (wiring untouched).

        ``state`` is deep-copied first so one capture can seed any
        number of restores without sharing mutable structures.
        """
        self._restore_state(copy.deepcopy(state))

    def step(self) -> None:
        """Run one full cycle standalone (compute + commit + hooks).

        Equivalent to what a one-component scheduler would do; kept so
        components remain independently steppable in tests and small
        experiments.
        """
        now = self.cycle
        hooks = self.hooks
        if hooks.cycle_start:
            hooks.emit_cycle_start(now)
        self.compute(now)
        self.commit(now)
        if hooks.cycle_end:
            hooks.emit_cycle_end(self.cycle)
