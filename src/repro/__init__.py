"""repro: a reproduction of "Microarchitecture of a High-Radix Router".

Kim, Dally, Towles, Gupta — ISCA 2005.

This package implements, from scratch in pure Python:

* cycle-accurate models of the paper's four switch organizations
  (:mod:`repro.routers`): the low-radix centralized baseline, the
  high-radix router with distributed switch/VC allocation (CVA and
  OVA), the fully buffered crossbar, the shared-buffer crossbar of
  Section 5.4, and the hierarchical crossbar the paper proposes;
* the distributed allocator microarchitectures (:mod:`repro.allocation`);
* the traffic patterns and injection processes of Table 1
  (:mod:`repro.traffic`);
* the analytical latency / cost / power / area models of Section 2 and
  Figures 3, 15, 17(d) (:mod:`repro.models`);
* folded-Clos network simulation for Figure 19 (:mod:`repro.network`);
* the warm-up / sample / drain measurement harness of Section 4.3
  (:mod:`repro.harness`);
* determinism/conservation tooling (:mod:`repro.analysis`): an AST
  lint pass and the :class:`SimSanitizer` runtime invariant checker;
* flit-lifecycle tracing (:mod:`repro.trace`): the
  :class:`TraceCollector` hook-bus subscriber with per-stage latency
  breakdowns and Chrome trace-event export.

Quick start::

    from repro import RouterConfig, HierarchicalCrossbarRouter, SwitchSimulation

    config = RouterConfig(radix=64, num_vcs=4, subswitch_size=8)
    sim = SwitchSimulation(HierarchicalCrossbarRouter(config), load=0.7)
    result = sim.run()
    print(result.avg_latency, result.throughput)
"""

from .analysis import NetworkSanitizer, SimSanitizer
from .core.config import FAST_CONFIG, PAPER_CONFIG, RouterConfig
from .core.errors import InvariantViolation, SimulationError, invariant
from .core.flit import Flit, make_packet
from .harness.experiment import (
    SweepResult,
    SweepSettings,
    SwitchSimulation,
    run_load_sweep,
    saturation_throughput,
)
from .harness.stats import LatencySample, RunResult
from .network.netsim import ClosNetworkSimulation, NetworkConfig
from .network.topology import FoldedClos
from .routers.base import Router, RouterStats
from .routers.baseline import BaselineRouter
from .routers.buffered import BufferedCrossbarRouter
from .routers.distributed import DistributedRouter
from .routers.hierarchical import HierarchicalCrossbarRouter
from .routers.shared_buffer import SharedBufferCrossbarRouter
from .routers.voq import VoqRouter
from .trace import TraceCollector, TraceFilter
from .traffic.injection import Bernoulli, MarkovOnOff
from .traffic.patterns import (
    Diagonal,
    Hotspot,
    TrafficPattern,
    UniformRandom,
    WorstCaseHierarchical,
)

__version__ = "1.0.0"

__all__ = [
    "RouterConfig",
    "PAPER_CONFIG",
    "FAST_CONFIG",
    "Flit",
    "make_packet",
    "Router",
    "RouterStats",
    "BaselineRouter",
    "DistributedRouter",
    "BufferedCrossbarRouter",
    "SharedBufferCrossbarRouter",
    "HierarchicalCrossbarRouter",
    "VoqRouter",
    "TrafficPattern",
    "UniformRandom",
    "Diagonal",
    "Hotspot",
    "WorstCaseHierarchical",
    "Bernoulli",
    "MarkovOnOff",
    "TraceCollector",
    "TraceFilter",
    "SwitchSimulation",
    "SweepSettings",
    "SweepResult",
    "run_load_sweep",
    "saturation_throughput",
    "LatencySample",
    "RunResult",
    "FoldedClos",
    "NetworkConfig",
    "ClosNetworkSimulation",
    "SimSanitizer",
    "NetworkSanitizer",
    "InvariantViolation",
    "SimulationError",
    "invariant",
    "__version__",
]
