"""Runtime invariant checking for router models.

``CheckedRouter`` wraps any :class:`~repro.routers.base.Router` and
verifies, as the simulation runs, the contracts that every switch
organization must keep:

* **conservation** — a flit accepted is ejected exactly once, and
  never invented;
* **per-packet order** — flit indices of each packet eject in order;
* **output VC discipline** — between a packet's head and tail no other
  packet ejects on the same (output, output VC);
* **output bandwidth** — at most one flit per ``flit_cycles`` cycles
  per output;
* **destination correctness** — flits leave on the output they asked
  for.

Violations raise :class:`InvariantViolation` at the offending cycle,
which turns subtle microarchitecture bugs (double grants, credit leaks,
VC interleaving) into immediate, located failures.  The wrapper is used
by the test suite and is handy when developing a new router model:

    router = CheckedRouter(MyNewRouter(config))
    sim = SwitchSimulation(router, load=0.7)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import InvariantViolation
from ..core.flit import Flit
from ..routers.base import Router, RouterStats

__all__ = ["CheckedRouter", "InvariantViolation"]


class CheckedRouter:
    """Transparent invariant-checking proxy around a Router."""

    def __init__(self, inner: Router) -> None:
        self.inner = inner
        self._accepted: Dict[int, int] = {}  # flit id -> dest
        self._next_index: Dict[int, int] = {}  # packet id -> flit index
        self._open_vc: Dict[Tuple[int, Optional[int]], int] = {}
        self._last_eject: Dict[int, int] = {}
        self.violations_checked = 0

    # -- delegated interface -------------------------------------------

    @property
    def config(self):
        return self.inner.config

    @property
    def cycle(self) -> int:
        return self.inner.cycle

    @property
    def stats(self) -> RouterStats:
        return self.inner.stats

    def input_space(self, port: int, vc: int) -> int:
        return self.inner.input_space(port, vc)

    def occupancy(self) -> int:
        return self.inner.occupancy()

    def idle(self) -> bool:
        return self.inner.idle()

    # -- checked operations --------------------------------------------

    def record_accept(self, flit: Flit) -> None:
        """Register an accepted flit (without forwarding it anywhere).

        Split out from :meth:`accept` so hook-based checkers (see
        :class:`repro.analysis.sanitizer.SimSanitizer`) can record from
        a ``flit_move`` event instead of intercepting the call.
        """
        if id(flit) in self._accepted:
            raise InvariantViolation(
                f"flit {flit.packet_id}:{flit.flit_index} accepted twice"
            )
        self._accepted[id(flit)] = flit.dest

    def accept(self, port: int, flit: Flit) -> None:
        self.record_accept(flit)
        self.inner.accept(port, flit)

    def step(self) -> None:
        self.inner.step()

    def drain_ejected(self) -> List[Tuple[Flit, int]]:
        ejected = self.inner.drain_ejected()
        for flit, cycle in ejected:
            self._check_ejection(flit, cycle)
        return ejected

    # -- invariants ------------------------------------------------------

    def _check_ejection(self, flit: Flit, cycle: int) -> None:
        self.violations_checked += 1
        key = id(flit)
        if key not in self._accepted:
            raise InvariantViolation(
                f"cycle {cycle}: flit {flit.packet_id}:{flit.flit_index} "
                "ejected but never accepted (or ejected twice)"
            )
        dest = self._accepted.pop(key)
        if flit.dest != dest:
            raise InvariantViolation(
                f"cycle {cycle}: flit {flit.packet_id} requested output "
                f"{dest} but left on {flit.dest}"
            )
        expected = self._next_index.get(flit.packet_id, 0)
        if flit.flit_index != expected:
            raise InvariantViolation(
                f"cycle {cycle}: packet {flit.packet_id} delivered flit "
                f"{flit.flit_index}, expected {expected}"
            )
        self._next_index[flit.packet_id] = expected + 1
        if flit.is_tail:
            del self._next_index[flit.packet_id]
        self._check_vc_discipline(flit, cycle)
        self._check_bandwidth(flit, cycle)

    def _check_vc_discipline(self, flit: Flit, cycle: int) -> None:
        key = (flit.dest, flit.out_vc)
        owner = self._open_vc.get(key)
        if flit.is_head:
            if owner is not None:
                raise InvariantViolation(
                    f"cycle {cycle}: packet {flit.packet_id} head on "
                    f"{key} while packet {owner} is still open"
                )
            self._open_vc[key] = flit.packet_id
        elif owner != flit.packet_id:
            raise InvariantViolation(
                f"cycle {cycle}: flit of packet {flit.packet_id} on {key} "
                f"owned by {owner}"
            )
        if flit.is_tail:
            self._open_vc.pop(key, None)

    def _check_bandwidth(self, flit: Flit, cycle: int) -> None:
        last = self._last_eject.get(flit.dest)
        fc = self.inner.config.flit_cycles
        if last is not None and cycle - last < fc:
            raise InvariantViolation(
                f"cycle {cycle}: output {flit.dest} ejected flits "
                f"{cycle - last} cycles apart (minimum {fc})"
            )
        self._last_eject[flit.dest] = cycle

    # -- reporting -------------------------------------------------------

    def pending_flits(self) -> int:
        """Accepted flits not yet ejected (should reach 0 at drain)."""
        return len(self._accepted)

    def assert_drained(self) -> None:
        """Raise unless every accepted flit has been delivered."""
        if self._accepted:
            raise InvariantViolation(
                f"{len(self._accepted)} flits accepted but never delivered"
            )
        if self._open_vc:
            raise InvariantViolation(
                f"output VCs still open after drain: {self._open_vc}"
            )
