"""Checkpoint files: persist a paused simulation and resume it later.

A checkpoint is one pickle holding four keys:

* ``format`` — the integer format version (:data:`CHECKPOINT_FORMAT`);
* ``kind`` — ``"switch"`` (:class:`~repro.harness.SwitchSimulation`)
  or ``"network"``
  (:class:`~repro.network.netsim.NetworkSimulation`);
* ``spec`` — the constructor arguments needed to rebuild an
  *equivalent* simulation (router class and config or network config
  and topology, traffic pattern, fault plan, workload, tracer
  parameters, scheduler mode);
* ``state`` — the simulation's :meth:`snapshot` bundle, including the
  staged run program, so a run paused mid-flight resumes exactly
  where it stopped.

:func:`load_checkpoint` rebuilds the simulation from ``spec`` and then
applies ``state``; the resumed run is byte-identical to one that never
stopped (the differential tests in ``tests/test_checkpoint.py`` pin
this for every router organization, both schedulers, and the Clos
network).  Sanitized simulations refuse to checkpoint — re-wrap with
the sanitizer after restoring instead.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict

#: On-disk format version; bumped whenever the payload layout changes.
CHECKPOINT_FORMAT = 1


def save_checkpoint(sim, path) -> None:
    """Write ``sim``'s full state (and rebuild spec) to ``path``."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "kind": _kind(sim),
        "spec": _spec(sim),
        "state": sim.snapshot(),
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh)


def load_checkpoint(path):
    """Rebuild the simulation saved at ``path`` and restore its state.

    Returns a :class:`~repro.harness.SwitchSimulation` or
    :class:`~repro.network.netsim.NetworkSimulation` positioned at the
    saved cycle; continue with :meth:`advance_run`/:meth:`finish_run`
    (or plain stepping when no run program was active).
    """
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    fmt = payload.get("format") if isinstance(payload, dict) else None
    if fmt != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {fmt!r} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    kind = payload["kind"]
    if kind == "switch":
        sim = _build_switch(payload["spec"])
    elif kind == "network":
        sim = _build_network(payload["spec"])
    else:
        raise ValueError(f"unknown checkpoint kind {kind!r}")
    sim.restore(payload["state"])
    return sim


# ----------------------------------------------------------------------
# Spec capture / rebuild
# ----------------------------------------------------------------------


def _kind(sim) -> str:
    from ..network.netsim import NetworkSimulation
    from .experiment import SwitchSimulation

    if isinstance(sim, NetworkSimulation):
        return "network"
    if isinstance(sim, SwitchSimulation):
        return "switch"
    raise TypeError(f"cannot checkpoint a {type(sim).__name__}")


def _spec(sim) -> Dict[str, Any]:
    if _kind(sim) == "network":
        return _network_spec(sim)
    return _switch_spec(sim)


def _scheduler_mode(sched) -> str:
    from ..engine.scheduler import EventScheduler

    return "event" if isinstance(sched, EventScheduler) else "cycle"


def _tracer_spec(tracer):
    if tracer is None:
        return None
    return {"capacity": tracer.capacity, "trace_filter": tracer.filter}


def _build_tracer(spec):
    if spec is None:
        return None
    from ..trace import TraceCollector

    return TraceCollector(
        capacity=spec["capacity"], trace_filter=spec["trace_filter"]
    )


def _switch_spec(sim) -> Dict[str, Any]:
    spec = dict(sim._build_spec)
    spec.update(
        router_cls=type(sim._engine),
        router_config=sim._engine.config,
        active_set=sim._sched.active_set,
        scheduler=_scheduler_mode(sim._sched),
        faults=None if sim._faults is None else sim._faults.plan,
        workload=sim._workload,
        tracer=_tracer_spec(sim._tracer),
    )
    return spec


def _build_switch(spec: Dict[str, Any]):
    from .experiment import SwitchSimulation

    router = spec["router_cls"](spec["router_config"])
    return SwitchSimulation(
        router,
        load=spec["load"],
        packet_size=spec["packet_size"],
        pattern=spec["pattern"],
        injection=spec["injection"],
        avg_burst=spec["avg_burst"],
        seed=spec["seed"],
        record_delivered=spec["record_delivered"],
        active_set=spec["active_set"],
        tracer=_build_tracer(spec["tracer"]),
        faults=spec["faults"],
        scheduler=spec["scheduler"],
        workload=spec["workload"],
    )


def _network_spec(sim) -> Dict[str, Any]:
    return {
        "config": sim.config,
        "load": sim.load,
        "topology": sim.topology,
        "host_pattern": sim._host_pattern,
        "active_set": sim._scheduler.active_set,
        "scheduler": _scheduler_mode(sim._scheduler),
        "faults": None if sim._faults is None else sim._faults.plan,
        "workload": sim._workload,
        "tracer": _tracer_spec(sim._tracer),
        "trace_switch": sim._trace_switch,
    }


def _build_network(spec: Dict[str, Any]):
    from ..network.netsim import NetworkSimulation

    return NetworkSimulation(
        spec["config"],
        spec["load"],
        topology=spec["topology"],
        host_pattern=spec["host_pattern"],
        active_set=spec["active_set"],
        faults=spec["faults"],
        scheduler=spec["scheduler"],
        workload=spec["workload"],
        tracer=_build_tracer(spec["tracer"]),
        trace_switch=spec["trace_switch"],
    )
