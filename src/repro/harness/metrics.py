"""Fine-grained instrumentation for simulation runs.

The paper's figures report aggregate latency and throughput; debugging
and extending a router microarchitecture needs more: latency
*distributions*, per-port utilization, and buffer-occupancy behaviour
over time.  ``MetricsCollector`` attaches to a
:class:`~repro.harness.experiment.SwitchSimulation` loop and gathers:

* a latency histogram (log-spaced bins, since saturated tails are
  heavy);
* per-output delivered-flit counts (channel load balance);
* per-input source backlog samples (who is starved/congested);
* total router occupancy samples (aggregate buffer pressure).

There are two ways to feed it.  The original pull style calls
:meth:`MetricsCollector.observe_cycle` after each ``sim.step()`` and
needs ``record_delivered=True``.  The push style,
:meth:`MetricsCollector.attach`, subscribes to the simulation's
:class:`~repro.engine.EngineHooks` bus — deliveries arrive through
``flit_move`` eject events and sampling rides ``cycle_end``, so
nothing is buffered and no per-cycle call is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.flit import Flit


@dataclass
class Histogram:
    """Log-spaced latency histogram."""

    base: float = 2.0
    counts: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative value {value}")
        bucket = 0 if value < 1 else int(math.log(value, self.base)) + 1
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1

    def bucket_bounds(self, bucket: int) -> Tuple[float, float]:
        """(inclusive lower, exclusive upper) value range of a bucket."""
        if bucket == 0:
            return (0.0, 1.0)
        return (self.base ** (bucket - 1), self.base ** bucket)

    def rows(self) -> List[Tuple[float, float, int]]:
        """(lower, upper, count) rows in bucket order."""
        return [
            (*self.bucket_bounds(b), self.counts[b])
            for b in sorted(self.counts)
        ]

    def quantile_bucket(self, q: float) -> int:
        """Bucket containing the q-quantile (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError("empty histogram")
        target = q * self.total
        running = 0
        for b in sorted(self.counts):
            running += self.counts[b]
            if running >= target:
                return b
        return max(self.counts)


class MetricsCollector:
    """Accumulates per-cycle and per-flit metrics from a simulation.

    Usage::

        sim = SwitchSimulation(router, load=0.7)
        metrics = MetricsCollector(router.config.radix)
        for _ in range(cycles):
            sim.step()
            metrics.observe_cycle(sim)
        print(metrics.summary())
    """

    def __init__(self, num_ports: int, sample_every: int = 16) -> None:
        if num_ports < 1:
            raise ValueError(f"num_ports must be >= 1, got {num_ports}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.num_ports = num_ports
        self.sample_every = sample_every
        self.latency = Histogram()
        self.output_flits = [0] * num_ports
        self.backlog_samples: List[int] = []
        self.occupancy_samples: List[int] = []
        #: Fault-injection / recovery counts by kind (see
        #: :mod:`repro.faults`), fed by the ``fault_inject`` and
        #: ``fault_recover`` hook events when attached.
        self.fault_injects: Dict[str, int] = {}
        self.fault_recovers: Dict[str, int] = {}
        self._cycles = 0
        self._seen = 0
        self._sim = None  # set by attach()

    # ------------------------------------------------------------------
    # Push-style feeding: subscribe to a simulation's engine hooks.

    def attach(self, sim) -> "MetricsCollector":
        """Subscribe to ``sim.hooks`` so metrics accumulate as the
        simulation runs.

        Works with any simulation exposing an
        :class:`~repro.engine.EngineHooks` bus plus ``sources`` and
        ``router`` attributes (``SwitchSimulation`` does).  Unlike
        :meth:`observe_cycle`, no ``record_delivered=True`` buffer is
        required.  Returns ``self`` for chaining.
        """
        sim.hooks.on_flit_move(self._on_flit_move)
        self._sim = sim
        sim.hooks.on_cycle_end(self._on_cycle_end)
        sim.hooks.on_fault_inject(self._on_fault_inject)
        sim.hooks.on_fault_recover(self._on_fault_recover)
        return self

    def _on_flit_move(self, kind: str, flit: Flit, port: int,
                      cycle: int) -> None:
        if kind == "eject":
            self.observe_delivery(flit, cycle)

    def _on_fault_inject(self, kind: str, where, cycle: int) -> None:
        self.fault_injects[kind] = self.fault_injects.get(kind, 0) + 1

    def _on_fault_recover(self, kind: str, where, cycle: int) -> None:
        self.fault_recovers[kind] = self.fault_recovers.get(kind, 0) + 1

    def _on_cycle_end(self, cycle: int) -> None:
        sim = self._sim
        self._cycles += 1
        if self._cycles % self.sample_every == 0:
            self.backlog_samples.append(
                sum(s.backlog() for s in sim.sources)
            )
            self.occupancy_samples.append(sim.router.occupancy())

    # ------------------------------------------------------------------

    def observe_delivery(self, flit: Flit, cycle: int) -> None:
        """Record one delivered flit."""
        self.output_flits[flit.dest] += 1
        if flit.is_tail:
            self.latency.add(cycle - flit.created_at)

    def observe_cycle(self, sim) -> None:
        """Record state after one ``sim.step()`` call.

        The simulation must have been built with
        ``record_delivered=True`` so delivered flits are retained.
        """
        if not sim.record_delivered:
            raise ValueError(
                "MetricsCollector needs a SwitchSimulation constructed "
                "with record_delivered=True"
            )
        for flit, cycle in sim.delivered[self._seen:]:
            self.observe_delivery(flit, cycle)
        self._seen = len(sim.delivered)
        self._cycles += 1
        if self._cycles % self.sample_every == 0:
            self.backlog_samples.append(
                sum(s.backlog() for s in sim.sources)
            )
            self.occupancy_samples.append(sim.router.occupancy())

    # ------------------------------------------------------------------

    @property
    def delivered_flits(self) -> int:
        return sum(self.output_flits)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-output delivered flits (1.0 = even)."""
        mean = self.delivered_flits / self.num_ports
        if mean == 0:
            return 1.0
        return max(self.output_flits) / mean

    def output_utilization(self, flit_cycles: int = 1) -> List[float]:
        """Per-output delivered-bandwidth fraction over observed cycles.

        Each delivered flit occupied its output channel for
        ``flit_cycles`` cycles; pair with
        :meth:`repro.trace.TraceCollector.channel_utilization` for the
        grant-side (offered) view of the same channels.
        """
        if self._cycles == 0:
            return [0.0] * self.num_ports
        return [
            min(1.0, n * flit_cycles / self._cycles)
            for n in self.output_flits
        ]

    def mean_backlog(self) -> float:
        if not self.backlog_samples:
            return 0.0
        return sum(self.backlog_samples) / len(self.backlog_samples)

    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return sum(self.occupancy_samples) / len(self.occupancy_samples)

    def summary(self) -> str:
        """Human-readable digest of everything collected."""
        lines = [
            f"delivered flits:   {self.delivered_flits}",
            f"packets measured:  {self.latency.total}",
            f"load imbalance:    {self.load_imbalance():.2f}",
            f"mean src backlog:  {self.mean_backlog():.1f} flits",
            f"mean occupancy:    {self.mean_occupancy():.1f} flits",
        ]
        if self.fault_injects or self.fault_recovers:
            injected = ", ".join(
                f"{k}={self.fault_injects[k]}"
                for k in sorted(self.fault_injects)
            ) or "none"
            recovered = ", ".join(
                f"{k}={self.fault_recovers[k]}"
                for k in sorted(self.fault_recovers)
            ) or "none"
            lines.append(f"faults injected:   {injected}")
            lines.append(f"faults recovered:  {recovered}")
        lines.append("latency histogram (cycles):")
        for lo, hi, count in self.latency.rows():
            bar = "#" * max(1, round(40 * count / max(1, self.latency.total)))
            lines.append(f"  [{lo:>7.0f}, {hi:>7.0f})  {count:>6}  {bar}")
        return "\n".join(lines)
