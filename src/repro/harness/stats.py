"""Measurement statistics.

Implements the methodology of Section 4.3: warm up without measuring,
label a sample of packets injected during a measurement interval,
then run until every labeled packet has been delivered.  Provides
summary statistics (mean/percentile latency, accepted throughput) and
a batch-means confidence interval, mirroring the paper's "accurate to
within 3% with 99% confidence" criterion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Two-sided z values for common confidence levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass
class LatencySample:
    """Latency observations for measured packets."""

    latencies: List[int] = field(default_factory=list)

    def add(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.latencies.append(latency)

    def __len__(self) -> int:
        return len(self.latencies)

    @property
    def mean(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def maximum(self) -> float:
        """Largest observed latency; NaN on an empty sample.

        NaN (not 0) so an empty measurement window reads the same way
        across mean, percentile, and maximum — a 0 here is a plausible
        real latency and silently poisons downstream min/max folds.
        """
        return float(max(self.latencies)) if self.latencies else float("nan")

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, q in [0, 100].

        An out-of-range ``q`` raises even on an empty sample: the
        argument is invalid regardless of the data, and returning NaN
        would hide the caller's bug whenever the window happened to be
        empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.latencies:
            return float("nan")
        data = sorted(self.latencies)
        if len(data) == 1:
            return float(data[0])
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def confidence_halfwidth(
        self, confidence: float = 0.99, batches: int = 10
    ) -> float:
        """Batch-means half-width of the CI on the mean latency.

        Splits the sample into ``batches`` consecutive batches and uses
        the batch means' standard error; returns ``inf`` when there is
        not enough data.  When ``n`` is not a multiple of ``batches``
        the remainder observations are folded into the final batch so
        every sample contributes (dropping the tail would bias the
        estimate toward the early, possibly unconverged, observations).
        """
        if confidence not in _Z_VALUES:
            raise ValueError(
                f"confidence must be one of {sorted(_Z_VALUES)}, got "
                f"{confidence}"
            )
        n = len(self.latencies)
        if n < batches * 2:
            return float("inf")
        size = n // batches
        means = []
        for b in range(batches):
            if b == batches - 1:
                chunk = self.latencies[b * size :]
            else:
                chunk = self.latencies[b * size : (b + 1) * size]
            means.append(sum(chunk) / len(chunk))
        grand = sum(means) / batches
        var = sum((m - grand) ** 2 for m in means) / (batches - 1)
        return _Z_VALUES[confidence] * math.sqrt(var / batches)

    def converged(
        self,
        relative: float = 0.03,
        confidence: float = 0.99,
        batches: int = 10,
    ) -> bool:
        """True when the CI half-width is within ``relative`` of the mean."""
        if not self.latencies:
            return False
        half = self.confidence_halfwidth(confidence, batches)
        return half <= relative * self.mean


@dataclass
class RunResult:
    """Outcome of one simulation run at a fixed offered load."""

    offered_load: float
    avg_latency: float
    p99_latency: float
    #: NaN when no packets were measured, like the other latency fields.
    max_latency: float
    throughput: float
    packets_measured: int
    cycles: int
    saturated: bool
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Tuple[float, float, float]:
        """(offered load, average latency, accepted throughput)."""
        return (self.offered_load, self.avg_latency, self.throughput)


def summarize(
    offered_load: float,
    sample: LatencySample,
    measured_flits: int,
    measured_cycles: int,
    num_ports: int,
    capacity: float,
    saturated: bool,
    cycles: int,
) -> RunResult:
    """Fold raw observations into a :class:`RunResult`.

    ``throughput`` is the accepted traffic during the measurement
    window as a fraction of switch capacity
    (``num_ports * capacity`` flits per cycle).
    """
    denom = measured_cycles * num_ports * capacity
    throughput = measured_flits / denom if denom > 0 else 0.0
    return RunResult(
        offered_load=offered_load,
        avg_latency=sample.mean,
        p99_latency=sample.percentile(99.0),
        max_latency=sample.maximum,
        throughput=throughput,
        packets_measured=len(sample),
        cycles=cycles,
        saturated=saturated,
    )
