"""Measurement harness: Section 4.3 methodology, sweeps, reporting."""

from .checkpoint import CHECKPOINT_FORMAT, load_checkpoint, save_checkpoint
from .experiment import (
    SweepResult,
    SweepSettings,
    SwitchSimulation,
    find_saturation_load,
    run_load_sweep,
    saturation_throughput,
)
from .metrics import Histogram, MetricsCollector
from .parallel import run_load_sweep_parallel, run_network_sweep_parallel
from .persistence import load_metadata, load_sweeps, save_sweeps
from .plot import ascii_plot, plot_sweeps
from .report import format_saturation, format_sweeps, format_table
from .stats import LatencySample, RunResult, summarize
from .validation import CheckedRouter, InvariantViolation

__all__ = [
    "CHECKPOINT_FORMAT",
    "load_checkpoint",
    "save_checkpoint",
    "SwitchSimulation",
    "SweepSettings",
    "SweepResult",
    "run_load_sweep",
    "run_load_sweep_parallel",
    "run_network_sweep_parallel",
    "saturation_throughput",
    "find_saturation_load",
    "LatencySample",
    "RunResult",
    "summarize",
    "format_table",
    "format_sweeps",
    "format_saturation",
    "ascii_plot",
    "plot_sweeps",
    "Histogram",
    "MetricsCollector",
    "save_sweeps",
    "load_sweeps",
    "load_metadata",
    "CheckedRouter",
    "InvariantViolation",
]
