"""Saving and loading experiment results as JSON.

Sweeps at the paper's scale take real time in pure Python, so the
harness supports persisting :class:`~repro.harness.stats.RunResult`
curves to disk and reloading them for later analysis or plotting —
the benchmark result tables under ``benchmarks/results/`` are the
rendered form, these JSON files are the raw one.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

from .experiment import SweepResult
from .stats import RunResult

#: Format marker written into every file for forward compatibility.
FORMAT_VERSION = 1


def _finite_or_none(value: float) -> Optional[float]:
    """Map NaN/inf to None so the JSON stays standard-compliant.

    Empty-sample runs report ``avg_latency = nan``; ``json.dump``
    would happily serialize that as the bare token ``NaN``, which is
    not valid JSON and breaks strict parsers.  ``null`` round-trips.
    """
    if value is None or not math.isfinite(value):
        return None
    return value


def _none_to_nan(value: Optional[float]) -> float:
    """Inverse of :func:`_finite_or_none` for the read path."""
    return float("nan") if value is None else value


def result_to_dict(result: RunResult) -> Dict:
    """Serialize one RunResult to plain JSON-compatible types."""
    return {
        "offered_load": result.offered_load,
        "avg_latency": _finite_or_none(result.avg_latency),
        "p99_latency": _finite_or_none(result.p99_latency),
        "max_latency": _finite_or_none(result.max_latency),
        "throughput": result.throughput,
        "packets_measured": result.packets_measured,
        "cycles": result.cycles,
        "saturated": result.saturated,
        "extra": dict(result.extra),
    }


def result_from_dict(data: Dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    return RunResult(
        offered_load=data["offered_load"],
        avg_latency=_none_to_nan(data["avg_latency"]),
        p99_latency=_none_to_nan(data["p99_latency"]),
        max_latency=_none_to_nan(data["max_latency"]),
        throughput=data["throughput"],
        packets_measured=data["packets_measured"],
        cycles=data["cycles"],
        saturated=data["saturated"],
        extra=dict(data.get("extra", {})),
    )


def sweep_to_dict(sweep: SweepResult) -> Dict:
    return {
        "label": sweep.label,
        "results": [result_to_dict(r) for r in sweep.results],
    }


def sweep_from_dict(data: Dict) -> SweepResult:
    return SweepResult(
        label=data["label"],
        results=[result_from_dict(r) for r in data["results"]],
    )


def save_sweeps(
    path: Union[str, Path],
    sweeps: List[SweepResult],
    metadata: Dict = None,
) -> None:
    """Write sweeps (plus free-form metadata) to a JSON file."""
    payload = {
        "format_version": FORMAT_VERSION,
        "metadata": metadata or {},
        "sweeps": [sweep_to_dict(s) for s in sweeps],
    }
    # allow_nan=False makes any non-finite float that slips past
    # result_to_dict a loud error instead of invalid JSON on disk.
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    )


def load_sweeps(path: Union[str, Path]) -> List[SweepResult]:
    """Read sweeps from a JSON file written by :func:`save_sweeps`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result file version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return [sweep_from_dict(s) for s in payload["sweeps"]]


def load_metadata(path: Union[str, Path]) -> Dict:
    """Read only the metadata block of a result file."""
    payload = json.loads(Path(path).read_text())
    return payload.get("metadata", {})
