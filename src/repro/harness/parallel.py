"""Parallel execution of load sweeps.

A latency-load curve evaluates each offered-load point with an
independent simulation, so points parallelize perfectly.  In pure
Python this matters: the paper-scale (radix-64) configurations take
tens of seconds per point, and a sweep uses as many cores as it has
points.

``run_load_sweep_parallel`` mirrors
:func:`repro.harness.experiment.run_load_sweep` exactly — same
arguments, same deterministic per-point results (each point re-derives
its RNG streams from the seed, so parallel and serial runs produce
identical curves) — but fans the points out over a process pool.

Everything passed in must be picklable: router factories should be
router classes or module-level functions, and pattern factories
module-level functions or the default.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Sequence

from ..core.config import RouterConfig
from .experiment import (
    PatternFactory,
    RouterFactory,
    SweepResult,
    SweepSettings,
    SwitchSimulation,
    _default_pattern,
)
from .stats import RunResult


def _run_point(args) -> RunResult:
    """Worker: simulate one offered-load point (module-level so it
    pickles under the spawn start method)."""
    (
        make_router,
        config,
        load,
        packet_size,
        pattern_factory,
        injection,
        avg_burst,
        settings,
        seed,
        scheduler,
    ) = args
    router = make_router(config)
    sim = SwitchSimulation(
        router,
        load=load,
        packet_size=packet_size,
        pattern=pattern_factory(config),
        injection=injection,
        avg_burst=avg_burst,
        seed=seed,
        scheduler=scheduler,
    )
    return sim.run(settings)


def run_load_sweep_parallel(
    make_router: RouterFactory,
    config: RouterConfig,
    loads: Sequence[float],
    label: str = "",
    packet_size: int = 1,
    pattern_factory: PatternFactory = _default_pattern,
    injection: str = "bernoulli",
    avg_burst: float = 8.0,
    settings: Optional[SweepSettings] = None,
    seed: Optional[int] = None,
    processes: Optional[int] = None,
    scheduler: str = "cycle",
) -> SweepResult:
    """Parallel twin of :func:`run_load_sweep`.

    Args:
        processes: Pool size; defaults to ``min(len(loads), cpu_count)``.
            Must be >= 1 when given (``processes=0`` used to fall back
            to the default silently, masking caller bugs).  With
            ``processes=1`` the pool is skipped entirely (useful under
            profilers and debuggers).
    """
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    settings = settings or SweepSettings()
    jobs = [
        (
            make_router,
            config,
            load,
            packet_size,
            pattern_factory,
            injection,
            avg_burst,
            settings,
            seed,
            scheduler,
        )
        for load in loads
    ]
    if processes == 1 or len(jobs) <= 1:
        results = [_run_point(job) for job in jobs]
    else:
        workers = processes or min(len(jobs), multiprocessing.cpu_count())
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(_run_point, jobs)
    if not label:
        label = getattr(make_router, "__name__", "sweep")
    return SweepResult(label=label, results=list(results))
