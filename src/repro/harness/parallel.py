"""Parallel execution of load sweeps.

A latency-load curve evaluates each offered-load point with an
independent simulation, so points parallelize perfectly.  In pure
Python this matters: the paper-scale (radix-64) configurations take
tens of seconds per point, and a sweep uses as many cores as it has
points.

``run_load_sweep_parallel`` mirrors
:func:`repro.harness.experiment.run_load_sweep` exactly — same
arguments, same deterministic per-point results (each point re-derives
its RNG streams from the seed, so parallel and serial runs produce
identical curves) — but fans the points out over a process pool.

Everything passed in must be picklable: router factories should be
router classes or module-level functions, and pattern factories
module-level functions or the default.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Sequence

from ..core.config import RouterConfig
from .experiment import (
    PatternFactory,
    RouterFactory,
    SweepResult,
    SweepSettings,
    SwitchSimulation,
    _default_pattern,
)
from .stats import RunResult


def _run_point(args) -> RunResult:
    """Worker: simulate one offered-load point (module-level so it
    pickles under the spawn start method)."""
    (
        make_router,
        config,
        load,
        packet_size,
        pattern_factory,
        injection,
        avg_burst,
        settings,
        seed,
        scheduler,
    ) = args
    router = make_router(config)
    sim = SwitchSimulation(
        router,
        load=load,
        packet_size=packet_size,
        pattern=pattern_factory(config),
        injection=injection,
        avg_burst=avg_burst,
        seed=seed,
        scheduler=scheduler,
    )
    return sim.run(settings)


def _run_network_point(args) -> RunResult:
    """Worker: simulate one network load point (module-level so it
    pickles under the spawn start method)."""
    (config, load, topology, warmup, measure, drain, scheduler,
     shards) = args
    # Imported lazily: the harness is importable without the network
    # stack and the child only pays for what it runs.
    if shards is None:
        from ..network.netsim import NetworkSimulation

        sim = NetworkSimulation(config, load, topology=topology,
                                scheduler=scheduler)
        return sim.run(warmup=warmup, measure=measure, drain=drain)
    from ..network.sharded import ShardedNetworkSimulation

    sim = ShardedNetworkSimulation(config, load, shards=shards,
                                   topology=topology, scheduler=scheduler)
    try:
        return sim.run(warmup=warmup, measure=measure, drain=drain)
    finally:
        sim.close()


def run_network_sweep_parallel(
    config,
    loads: Sequence[float],
    label: str = "",
    topology=None,
    warmup: int = 2000,
    measure: int = 2000,
    drain: int = 30000,
    scheduler: str = "cycle",
    processes: Optional[int] = None,
    shards: Optional[int] = None,
) -> SweepResult:
    """Parallel twin of :func:`repro.network.netsim.run_network_sweep`.

    Two orthogonal levers: ``processes`` fans independent load points
    over a process pool (point-level parallelism, like
    :func:`run_load_sweep_parallel`); ``shards`` runs each point as a
    :class:`~repro.network.sharded.ShardedNetworkSimulation` over that
    many worker processes (cycle-level parallelism for big networks).
    Results are byte-identical to the serial sweep either way — each
    point re-derives every RNG stream from the seed, and sharding is
    proven byte-identical by construction (see
    ``docs/checkpoint_sharding.md``).

    Args:
        processes: Pool size; defaults to ``min(len(loads), cpu_count)``.
            Must be >= 1 when given.  With ``processes=1`` the pool is
            skipped entirely.
        shards: When set, each point runs sharded across this many
            worker processes.  Combining ``processes > 1`` with
            ``shards`` multiplies process counts; prefer one lever.
    """
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    jobs = [
        (config, load, topology, warmup, measure, drain, scheduler, shards)
        for load in loads
    ]
    if processes == 1 or len(jobs) <= 1:
        results = [_run_network_point(job) for job in jobs]
    else:
        workers = processes or min(len(jobs), multiprocessing.cpu_count())
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(_run_network_point, jobs)
    return SweepResult(label=label or "network", results=list(results))


def run_load_sweep_parallel(
    make_router: RouterFactory,
    config: RouterConfig,
    loads: Sequence[float],
    label: str = "",
    packet_size: int = 1,
    pattern_factory: PatternFactory = _default_pattern,
    injection: str = "bernoulli",
    avg_burst: float = 8.0,
    settings: Optional[SweepSettings] = None,
    seed: Optional[int] = None,
    processes: Optional[int] = None,
    scheduler: str = "cycle",
) -> SweepResult:
    """Parallel twin of :func:`run_load_sweep`.

    Args:
        processes: Pool size; defaults to ``min(len(loads), cpu_count)``.
            Must be >= 1 when given (``processes=0`` used to fall back
            to the default silently, masking caller bugs).  With
            ``processes=1`` the pool is skipped entirely (useful under
            profilers and debuggers).
    """
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    settings = settings or SweepSettings()
    jobs = [
        (
            make_router,
            config,
            load,
            packet_size,
            pattern_factory,
            injection,
            avg_burst,
            settings,
            seed,
            scheduler,
        )
        for load in loads
    ]
    if processes == 1 or len(jobs) <= 1:
        results = [_run_point(job) for job in jobs]
    else:
        workers = processes or min(len(jobs), multiprocessing.cpu_count())
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(_run_point, jobs)
    if not label:
        label = getattr(make_router, "__name__", "sweep")
    return SweepResult(label=label, results=list(results))
