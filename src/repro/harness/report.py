"""Plain-text reporting for experiment results.

The benchmark harness regenerates every table and figure of the paper
as text: each figure becomes a table of the same series the paper
plots.  These helpers render aligned tables and load-latency curves so
benchmark output is directly comparable against the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .experiment import SweepResult


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} "
                "columns"
            )
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_sweeps(
    sweeps: Sequence[SweepResult], title: Optional[str] = None
) -> str:
    """Render load-latency curves side by side (one figure's series).

    Saturated points are marked with a trailing ``*`` on the latency:
    their measured latency is unbounded in steady state and the value
    shown only reflects the finite measurement window, as in the
    paper's plots where curves end at saturation.
    """
    loads = sorted({round(l, 6) for s in sweeps for l in s.loads})
    headers = ["load"] + [s.label for s in sweeps]
    rows = []
    for load in loads:
        row: List[object] = [load]
        for s in sweeps:
            cell = "-"
            for r in s.results:
                if abs(r.offered_load - load) < 1e-9:
                    cell = f"{r.avg_latency:.1f}" + ("*" if r.saturated else "")
                    break
            row.append(cell)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_extras(
    sweep: SweepResult, title: Optional[str] = None
) -> str:
    """Per-load table of every ``RunResult.extra`` counter in a sweep.

    This includes the harness's own bookkeeping (``undelivered``,
    ``source_backlog``) and any ad-hoc ``stats.*`` counters a router
    recorded via :meth:`~repro.routers.base.RouterStats.bump` — the
    harness folds those into each result so they survive aggregation
    instead of dying with the router instance.  Counters absent at a
    load point render as ``-``.
    """
    names = sorted({name for r in sweep.results for name in r.extra})
    headers = ["counter"] + [
        f"{r.offered_load:.2f}" for r in sweep.results
    ]
    rows: List[Sequence[object]] = [
        [name] + [r.extra.get(name, float("nan")) for r in sweep.results]
        for name in names
    ]
    return format_table(headers, rows, title=title)


def format_saturation(
    sweeps: Sequence[SweepResult], title: Optional[str] = None
) -> str:
    """One-line-per-architecture saturation throughput summary."""
    rows = [
        (s.label, f"{s.saturation_throughput():.3f}")
        for s in sweeps
    ]
    return format_table(["architecture", "saturation throughput"], rows, title)


def format_stage_breakdown(*args, **kwargs) -> str:
    """Measured per-stage pipeline breakdown (see :mod:`repro.trace`).

    Convenience re-export so report consumers find every table
    formatter in one module; the implementation lives in
    :func:`repro.trace.breakdown.format_stage_breakdown` (imported
    lazily — the trace layer sits above the harness).
    """
    from ..trace.breakdown import format_stage_breakdown as impl

    return impl(*args, **kwargs)
