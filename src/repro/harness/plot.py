"""ASCII plotting for latency-load curves and sweeps.

The paper communicates nearly all of its evaluation through
latency-vs-offered-load plots; this module renders the same curves as
terminal-friendly ASCII so examples and benchmark outputs can show the
*shape* (flat region, knee, saturation wall) and not just a table of
numbers.  No plotting dependency is required anywhere in the package.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .experiment import SweepResult

#: Marker characters assigned to curves in order.
MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
    y_max: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render (x, y) series as an ASCII scatter/line chart.

    Args:
        series: (label, xs, ys) triples; NaN/inf points are skipped.
        width, height: Plot body size in characters.
        x_label, y_label: Axis captions.
        y_max: Clip the y axis (useful when saturated points explode).
        title: Optional heading.

    Returns:
        Multi-line string.
    """
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    points = []
    for idx, (label, xs, ys) in enumerate(series):
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r}: x and y lengths differ")
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in zip(xs, ys):
            if math.isfinite(x) and math.isfinite(y):
                points.append((x, y, marker))
    if not points:
        return "(no data)"

    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(p[1] for p in points)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        if y > y_hi:
            y = y_hi
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = height - 1 - round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max(len(f"{y_hi:.4g}"), len(f"{y_lo:.4g}"))
    for r, row in enumerate(grid):
        if r == 0:
            tick = f"{y_hi:.4g}".rjust(label_w)
        elif r == height - 1:
            tick = f"{y_lo:.4g}".rjust(label_w)
        else:
            tick = " " * label_w
        lines.append(f"{tick} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * (label_w + 2) + x_axis)
    if x_label or y_label:
        lines.append(
            " " * (label_w + 2)
            + (f"x: {x_label}" if x_label else "")
            + (f"   y: {y_label}" if y_label else "")
        )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {label}"
        for i, (label, _, _) in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


def plot_sweeps(
    sweeps: Sequence[SweepResult],
    width: int = 60,
    height: int = 18,
    y_max: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Plot latency-load curves for one or more sweeps.

    Saturated points are clipped at ``y_max`` (default: 3x the largest
    unsaturated latency) so the pre-saturation shape stays readable —
    the same visual convention as the paper's figures, whose curves
    shoot off the top of the axis at saturation.
    """
    if y_max is None:
        finite = [
            r.avg_latency
            for s in sweeps
            for r in s.results
            if not r.saturated and math.isfinite(r.avg_latency)
        ]
        y_max = 3 * max(finite) if finite else None
    series = [
        (
            s.label,
            [r.offered_load for r in s.results],
            [r.avg_latency for r in s.results],
        )
        for s in sweeps
    ]
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="offered load",
        y_label="avg latency (cycles)",
        y_max=y_max,
        title=title,
    )
