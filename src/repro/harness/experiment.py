"""Experiment driver: load-latency sweeps over a single router.

Mirrors the paper's measurement procedure (Section 4.3): the simulator
is warmed up under load without taking measurements, a sample of
packets injected during a measurement interval is labeled, and the
simulation runs until all labeled packets reach their destinations.
Offered load is expressed as a fraction of switch capacity (one flit
per ``flit_cycles`` cycles per port); latency is measured from packet
generation (so source queueing counts) to tail-flit ejection.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.config import RouterConfig
from ..core.errors import invariant
from ..core.flit import packet_id_state, set_packet_id_state
from ..engine import make_scheduler
from ..routers.base import Router
from ..traffic.injection import Bernoulli, InjectionProcess, MarkovOnOff
from ..traffic.patterns import TrafficPattern, UniformRandom
from ..traffic.source import TrafficSource
from ..workloads.base import Workload
from ..workloads.source import WorkloadSource
from .stats import LatencySample, RunResult, summarize

RouterFactory = Callable[[RouterConfig], Router]
PatternFactory = Callable[[RouterConfig], TrafficPattern]


def _default_pattern(config: RouterConfig) -> TrafficPattern:
    return UniformRandom(config.radix)


@dataclass
class SweepSettings:
    """Timing parameters of a measurement run (in cycles)."""

    warmup: int = 2000
    measure: int = 2000
    drain: int = 30000
    #: Treat the run as saturated when fewer than this fraction of the
    #: labeled packets drain within the drain budget.
    min_drain_fraction: float = 0.999

    def scaled(self, factor: float) -> "SweepSettings":
        """Scale all windows (used by reduced-scale benchmarks)."""
        return SweepSettings(
            warmup=max(1, int(self.warmup * factor)),
            measure=max(1, int(self.measure * factor)),
            drain=max(1, int(self.drain * factor)),
            min_drain_fraction=self.min_drain_fraction,
        )


class SwitchSimulation:
    """Drives one router instance with per-input traffic sources."""

    #: Attributes :meth:`snapshot` deliberately omits (lint rule R010):
    #: construction parameters (``config``/``load``/``packet_size`` and
    #: the build spec, which the checkpoint file header carries
    #: instead), live wiring (``hooks``, the engine's injector handle),
    #: and the ``record_delivered`` flag, all of which a restored twin
    #: gets from its own constructor.
    SNAPSHOT_WIRING = (
        "_build_spec", "hooks", "config", "load", "packet_size",
        "fault_injector", "record_delivered",
    )

    def __init__(
        self,
        router: Router,
        load: float = 0.0,
        packet_size: int = 1,
        pattern: Optional[TrafficPattern] = None,
        injection: str = "bernoulli",
        avg_burst: float = 8.0,
        seed: Optional[int] = None,
        record_delivered: bool = False,
        sanitize: bool = False,
        active_set: bool = True,
        tracer=None,
        faults=None,
        scheduler: str = "cycle",
        workload: Optional[Workload] = None,
    ) -> None:
        """``faults`` is an optional :class:`~repro.faults.FaultPlan`:
        when set (and enabled) a
        :class:`~repro.faults.SwitchFaultInjector` drives host-channel
        corruption with retransmission, credit loss with resync, and
        the plan's stuck-buffer schedule.  None — or a disabled plan —
        leaves the simulation byte-identical to a plain run.

        ``scheduler`` selects the drive loop: ``"cycle"`` executes
        every cycle; ``"event"`` fast-forwards over spans in which the
        router is parked and no arrival, injection retry, or fault
        event is due.  Results are byte-identical either way (the
        goldens and property tests pin this); only
        ``stats.engine.cycles_skipped`` / ``stats.engine.ff_jumps``
        and wall-clock time differ.

        ``workload`` replaces the synthetic sources with one
        :class:`~repro.workloads.WorkloadSource` per port, all sharing
        the workload's dependency DAG: a message injects only once its
        dependencies have been ejected.  Drive with
        :meth:`run_workload` instead of :meth:`run`."""
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        #: Constructor arguments a checkpoint file needs to rebuild an
        #: equivalent simulation (see :mod:`repro.harness.checkpoint`);
        #: everything else is recoverable from the built object.
        self._build_spec: Dict[str, Any] = {
            "load": load,
            "packet_size": packet_size,
            "pattern": pattern,
            "injection": injection,
            "avg_burst": avg_burst,
            "seed": seed,
            "record_delivered": record_delivered,
        }
        if sanitize:
            # Imported lazily: the analysis layer sits above the harness.
            from ..analysis.sanitizer import SimSanitizer

            if not isinstance(router, SimSanitizer):
                router = SimSanitizer(router)
        self.router = router
        # The engine drives the raw Router; checking wrappers
        # (SimSanitizer, CheckedRouter) expose it as ``.inner`` and
        # observe it through its hooks, not by intercepting step().
        self._engine: Router = getattr(router, "inner", router)
        #: The router's event bus (metrics/tracing attach here).
        self.hooks = self._engine.hooks
        self._sched = make_scheduler(
            scheduler,
            [self._engine],
            hooks=self._engine.hooks,
            active_set=active_set,
        )
        # The drive loop is inverted: the scheduler owns the per-cycle
        # sequence (faults -> generate -> inject -> engine -> collect)
        # and this harness contributes its phases and, for event mode,
        # its wake horizons.
        self._sched.add_pre_cycle(self._pre_cycle)
        self._sched.add_post_cycle(self._collect_ejected)
        self._sched.add_wake_source(self._next_work)
        #: Optional trace collector (see :mod:`repro.trace`): anything
        #: with ``attach(sim)`` and ``fold_stats(stats)``.  Attached
        #: here — before any cycle runs — so lifecycle records start at
        #: the first accept; its aggregate counters are folded into the
        #: run result's ``stats.trace.*`` extras by :meth:`run`.
        self._tracer = tracer
        if tracer is not None:
            tracer.attach(self)
        self.config = router.config
        self.load = load
        self.packet_size = packet_size
        seed = self.config.seed if seed is None else seed
        pattern = pattern or UniformRandom(self.config.radix)
        packet_rate = load * self.config.capacity_flits_per_cycle / packet_size
        peak_rate = self.config.capacity_flits_per_cycle / packet_size
        self._workload = workload
        self.sources: List[Union[TrafficSource, WorkloadSource]] = []
        if workload is not None:
            if workload.num_ranks > self.config.radix:
                raise ValueError(
                    f"workload has {workload.num_ranks} ranks but the "
                    f"router only has {self.config.radix} ports"
                )
            for i in range(self.config.radix):
                self.sources.append(WorkloadSource(i, workload))
        else:
            for i in range(self.config.radix):
                proc: InjectionProcess
                if injection == "bernoulli":
                    proc = Bernoulli(packet_rate)
                elif injection == "onoff":
                    proc = MarkovOnOff(packet_rate, peak_rate, avg_burst)
                else:
                    raise ValueError(f"unknown injection kind {injection!r}")
                self.sources.append(
                    TrafficSource(i, pattern, proc, packet_size, seed)
                )
        if faults is not None and faults.enabled:
            # Imported lazily: the faults layer sits above the harness.
            from ..faults import SwitchFaultInjector

            self._faults: Optional[SwitchFaultInjector] = (
                SwitchFaultInjector(faults, self._engine, seed)
            )
            # The sanitizer reads the injector's lost-credit ledger
            # through this handle when balancing the credit books.
            self._engine.fault_injector = self._faults
        else:
            self._faults = None
        k = self.config.radix
        self._next_inject = [0] * k
        self._packet_vc: List[Optional[int]] = [None] * k
        self._vc_rr = [0] * k
        self._measuring = False
        self._generating = True
        self._labeled_outstanding = 0
        self._labeled_total = 0
        self.sample = LatencySample()
        self.measured_flits = 0
        self._count_flits = False
        #: When record_delivered is set, every (flit, eject_cycle) pair
        #: is retained here for inspection (costs memory on long runs).
        self.record_delivered = record_delivered
        self.delivered: List[tuple] = []
        #: In-progress measurement program (see :meth:`start_run`), or
        #: None when no staged run is active.  Plain picklable data so
        #: a checkpoint taken mid-run resumes at the same stage.
        self._program: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current simulation cycle (owned by the drive loop)."""
        return self._sched.now

    def step(self) -> None:
        """Advance exactly one simulation cycle."""
        self._sched.run_until(self._sched.now + 1)

    def run_until(self, end: int) -> int:
        """Advance the simulation through cycles ``[cycle, end)``."""
        return self._sched.run_until(end)

    def _pre_cycle(self, now: int) -> None:
        """Harness work before the engine cycle: faults, traffic."""
        if self._faults is not None:
            # Apply scheduled stuck faults and deliver due credit
            # resyncs before anything else observes this cycle.
            self._faults.advance(now)
        if self._generating:
            measuring = self._measuring
            if self._workload is None:
                for src in self.sources:
                    # Pre-drawn arrival still ahead: generate() would be
                    # a no-op (it polls the same cached prediction), so
                    # skip the call on this hot per-source loop.
                    nxt = src._next_arrival
                    if nxt is not None and nxt > now:
                        continue
                    if src.generate(now, measuring) is not None and measuring:
                        self._labeled_outstanding += 1
                        self._labeled_total += 1
            else:
                for src in self.sources:
                    if src.generate(now, measuring) is not None and measuring:
                        self._labeled_outstanding += 1
                        self._labeled_total += 1
        self._inject(now)

    def _collect_ejected(self, now: int) -> None:
        """Harness work after the engine cycle: delivery accounting."""
        for flit, eject_cycle in self.router.drain_ejected():
            if self.record_delivered:
                self.delivered.append((flit, eject_cycle))
            if self._count_flits:
                self.measured_flits += 1
            if flit.is_tail and flit.measured:
                self.sample.add(eject_cycle - flit.created_at)
                self._labeled_outstanding -= 1
            if flit.is_tail and self._workload is not None:
                # Delivery unlocks the DAG successors; their ranks
                # become eligible on a later cycle (the event
                # scheduler's wake horizon sees this via eligible()).
                self._workload.deliver(flit.packet_id, eject_cycle)

    def _next_work(self, now: int) -> Optional[int]:
        """Wake horizon: earliest cycle >= ``now`` with harness work.

        Consulted by event mode before fast-forwarding past a span in
        which the router is parked: the next pre-drawn packet arrival,
        the earliest cycle a backlogged source can retry injection
        (channel bandwidth throttle, fault back-off), and the fault
        injector's schedule.  Horizons may be conservative (early) but
        never late — see the engine module docstring.
        """
        horizon: Optional[int] = None
        if self._generating:
            for src in self.sources:
                arrival = src.peek_arrival(now)
                if arrival is not None and (
                    horizon is None or arrival < horizon
                ):
                    horizon = arrival
        faults = self._faults
        for i, src in enumerate(self.sources):
            if not src.queue:
                continue
            retry = self._next_inject[i]
            if faults is not None:
                retry = max(retry, faults.channel_retry_at(i))
            retry = max(retry, now)
            if horizon is None or retry < horizon:
                horizon = retry
        if faults is not None:
            due = faults.next_event(now)
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        return horizon

    def _inject(self, now: int) -> None:
        """Move flits from source queues into input buffers.

        One flit per ``flit_cycles`` cycles per input (channel
        bandwidth); each packet is assigned an input VC round-robin
        among VCs with free buffer space when its head flit enters.
        """
        fc = self.config.flit_cycles
        faults = self._faults
        next_inject = self._next_inject
        packet_vc = self._packet_vc
        banks = self._engine.inputs
        for i, src in enumerate(self.sources):
            if now < next_inject[i]:
                continue
            if faults is not None and not faults.channel_ready(i, now):
                continue
            queue = src.queue
            if not queue:
                continue
            flit = queue[0]
            vc = packet_vc[i]
            if vc is None:
                invariant(flit.is_head, "packet VC lost mid-packet",
                          cycle=now, port=i, check="injection")
                vc = self._pick_vc(i)
                if vc is None:
                    continue
                packet_vc[i] = vc
            # Inlined input_space(i, vc) >= 1: this backpressure check
            # runs for every backlogged port every cycle, so it reads
            # the buffer directly instead of going through two calls.
            q = banks[i].queues[vc]
            if len(q._q) >= q.maxlen:
                continue
            flit.vc = vc
            if faults is not None and not faults.attempt_transmit(
                i, flit, now
            ):
                # Corrupted on the wire: the receiver's CRC check drops
                # it, the sender keeps it queued for retransmission.
                # The corrupted transmission still occupied the channel.
                self._next_inject[i] = now + fc
                continue
            src.pop()
            # Wake a parked router *before* accept so the flit's
            # injection timestamp uses the current cycle.
            self._sched.wake(self._engine, now)
            self.router.accept(i, flit)
            self._next_inject[i] = now + fc
            if flit.is_tail:
                self._packet_vc[i] = None

    def stop_sources(self) -> None:
        """Stop generating new packets (used to drain the system)."""
        self._generating = False

    def _pick_vc(self, i: int) -> Optional[int]:
        v = self.config.num_vcs
        # Direct buffer reads (== input_space >= 1): a head flit stuck
        # behind full buffers rescans every VC every cycle, making this
        # the harness's hottest loop at saturation.
        queues = self._engine.inputs[i].queues
        rr = self._vc_rr[i]
        for offset in range(v):
            vc = rr + offset
            if vc >= v:
                vc -= v
            q = queues[vc]
            if len(q._q) < q.maxlen:
                self._vc_rr[i] = (vc + 1) % v
                return vc
        return None

    # ------------------------------------------------------------------

    def run(self, settings: Optional[SweepSettings] = None) -> RunResult:
        """Warm up, measure, drain; return the summarized result.

        Each phase is one ``run_until`` call, so fast-forward jumps
        never cross a warm-up/measurement boundary — the flag flips
        happen between calls, exactly where the per-cycle loop
        flipped them.
        """
        self.start_run(settings)
        self.advance_run()
        return self.finish_run()

    # ------------------------------------------------------------------
    # Staged measurement program (checkpointable run)
    # ------------------------------------------------------------------

    def start_run(self, settings: Optional[SweepSettings] = None) -> None:
        """Begin the warm-up/measure/drain program without running it.

        The program is plain data (absolute stage boundaries plus
        bookkeeping), so a snapshot taken between :meth:`advance_run`
        calls resumes mid-run byte-identically.
        """
        if self._program is not None:
            raise RuntimeError("a run is already in progress")
        settings = settings or SweepSettings()
        start = self.cycle
        warm_end = start + settings.warmup
        measure_end = warm_end + settings.measure
        self._program = {
            "kind": "measure",
            "stage": 0,
            "final": 3,
            "bounds": [warm_end, measure_end, measure_end + settings.drain],
            "measure_start": 0,
            "measured_cycles": 0,
            "min_drain_fraction": settings.min_drain_fraction,
        }

    def start_workload_run(self, max_cycles: int = 1_000_000) -> None:
        """Begin the workload-DAG program without running it."""
        if self._program is not None:
            raise RuntimeError("a run is already in progress")
        if self._workload is None:
            raise ValueError(
                "run_workload() needs a SwitchSimulation(workload=...)"
            )
        if max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {max_cycles}")
        self._count_flits = True
        self._program = {
            "kind": "workload",
            "stage": 0,
            "final": 1,
            "bounds": [self.cycle + max_cycles],
            "run_start": self.cycle,
        }

    def advance_run(self, stop_at: Optional[int] = None) -> bool:
        """Advance the active program; True once it has completed.

        With ``stop_at`` set, pauses at the first *executed* cycle at
        or beyond it (fast-forward jumps land on their natural targets
        first, so pausing never perturbs the jump structure and the
        resumed run stays byte-identical to an uninterrupted one).
        """
        program = self._program
        if program is None:
            raise RuntimeError("no run in progress; call start_run() first")
        paused = (
            None if stop_at is None
            else (lambda: self._sched.now >= stop_at)
        )
        while program["stage"] < program["final"]:
            stage = program["stage"]
            end = program["bounds"][stage]
            stop = self._stage_stop(program, stage, paused)
            self._sched.run_until(end, stop=stop)
            if self._stage_done(program, stage, end):
                self._finish_stage(program, stage)
            else:
                return False  # paused mid-stage
        return True

    def _stage_stop(
        self,
        program: Dict[str, Any],
        stage: int,
        paused: Optional[Callable[[], bool]],
    ) -> Optional[Callable[[], bool]]:
        """Combined stop predicate for one program stage."""
        inner = self._stage_predicate(program, stage)
        if inner is None:
            return paused
        if paused is None:
            return inner
        return lambda: paused() or inner()

    def _stage_predicate(
        self, program: Dict[str, Any], stage: int
    ) -> Optional[Callable[[], bool]]:
        if program["kind"] == "workload":
            return self._workload.done
        if stage == 2:  # drain
            return lambda: self._labeled_outstanding <= 0
        return None

    def _stage_done(
        self, program: Dict[str, Any], stage: int, end: int
    ) -> bool:
        """Did the stage complete (vs. pausing for a checkpoint)?"""
        if self._sched.now >= end:
            return True
        inner = self._stage_predicate(program, stage)
        return inner is not None and inner()

    def _finish_stage(self, program: Dict[str, Any], stage: int) -> None:
        """Apply the flag flips at a completed stage boundary."""
        program["stage"] = stage + 1
        if program["kind"] != "measure":
            return
        if stage == 0:  # warm-up done: start labeling
            self._measuring = True
            self._count_flits = True
            program["measure_start"] = self.cycle
        elif stage == 1:  # measurement window closed
            self._measuring = False
            self._count_flits = False
            program["measured_cycles"] = (
                self.cycle - program["measure_start"]
            )

    def finish_run(self) -> RunResult:
        """Summarize a completed program into a :class:`RunResult`."""
        program = self._program
        if program is None:
            raise RuntimeError("no run in progress")
        if program["stage"] < program["final"]:
            raise RuntimeError("run has not completed; advance_run() first")
        self._program = None
        if program["kind"] == "workload":
            return self._finish_workload(program)
        undelivered = self._labeled_outstanding
        delivered_fraction = (
            1.0
            if self._labeled_total == 0
            else 1.0 - undelivered / self._labeled_total
        )
        saturated = delivered_fraction < program["min_drain_fraction"]
        result = summarize(
            offered_load=self.load,
            sample=self.sample,
            measured_flits=self.measured_flits,
            measured_cycles=program["measured_cycles"],
            num_ports=self.config.radix,
            capacity=self.config.capacity_flits_per_cycle,
            saturated=saturated,
            cycles=self.cycle,
        )
        result.extra["undelivered"] = float(undelivered)
        self._fold_extras(result)
        return result

    def _finish_workload(self, program: Dict[str, Any]) -> RunResult:
        workload = self._workload
        self._count_flits = False
        for latency in workload.message_latencies():
            self.sample.add(latency)
        result = summarize(
            offered_load=0.0,
            sample=self.sample,
            measured_flits=self.measured_flits,
            measured_cycles=max(1, self.cycle - program["run_start"]),
            num_ports=self.config.radix,
            capacity=self.config.capacity_flits_per_cycle,
            saturated=not workload.done(),
            cycles=self.cycle,
        )
        result.extra["undelivered"] = float(workload.remaining)
        self._fold_extras(result)
        return result

    def _fold_extras(self, result: RunResult) -> None:
        """Fold shared observability extras into a run result."""
        result.extra["source_backlog"] = float(
            sum(s.backlog() for s in self.sources)
        )
        # Peak injection-queue depth across ports: how far the worst
        # source queue got behind channel bandwidth.
        result.extra["stats.traffic.max_source_queue"] = float(
            max((s.peak_backlog for s in self.sources), default=0)
        )
        # Drive-loop observability: how much of the run fast-forward
        # skipped (0 in cycle mode).  Deliberately excluded from
        # mode-equivalence comparisons — they are the only legitimate
        # difference between the two schedulers.
        result.extra["stats.engine.cycles_skipped"] = float(
            self._sched.cycles_skipped
        )
        result.extra["stats.engine.ff_jumps"] = float(self._sched.ff_jumps)
        if self._tracer is not None:
            if self._workload is not None:
                self._workload.annotate(self._tracer)
            self._tracer.fold_stats(self.router.stats)
        if self._workload is not None:
            self._workload.fold_stats(self.router.stats)
        # Ad-hoc RouterStats.bump() counters ride along under a
        # ``stats.`` prefix so they survive into reports and sweeps
        # instead of being silently dropped with the router instance.
        stats_extra = self.router.stats.extra
        for name in sorted(stats_extra):
            result.extra[f"stats.{name}"] = float(stats_extra[name])

    def run_workload(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run the attached workload DAG to completion; summarize.

        The simulation advances until every workload message has been
        delivered (or ``max_cycles`` elapse — the result is then marked
        saturated and ``undelivered`` counts the stuck messages).  The
        latency sample holds per-message send-to-ejection latencies
        from the workload's own records; aggregate DAG metrics (flow
        percentiles, per-phase step time and skew, makespan) land in
        the ``stats.workload.*`` extras.
        """
        self.start_workload_run(max_cycles)
        self.advance_run()
        return self.finish_run()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable capture of the whole simulation at a cycle boundary.

        Every coupled piece — router, scheduler, sources, sample,
        injector, tracer, the staged-run program, and the global
        packet-id stream — is collected as live references and
        deep-copied in one pass, so aliasing (e.g. the workload shared
        by every source) survives into the capture.  Restore onto a
        simulation constructed with identical parameters.
        """
        if self.router is not self._engine:
            raise ValueError(
                "cannot checkpoint a sanitized simulation; rerun the "
                "sanitizer after restore instead"
            )
        faults = self._faults
        if faults is not None:
            # Keep the captured credit pipes free of injector taps (the
            # tap would drag the hook bus, and through it the whole
            # simulation, into the copied graph).
            faults.detach_credit_hooks()
        try:
            bundle = {
                "engine": self._engine._snapshot_state(),
                "sched": self._sched.snapshot(),
                "packet_ids": packet_id_state(),
                "program": self._program,
                "workload": self._workload,
                "sources": [vars(src) for src in self.sources],
                "harness": {
                    "next_inject": self._next_inject,
                    "packet_vc": self._packet_vc,
                    "vc_rr": self._vc_rr,
                    "measuring": self._measuring,
                    "generating": self._generating,
                    "labeled_outstanding": self._labeled_outstanding,
                    "labeled_total": self._labeled_total,
                    "sample": self.sample,
                    "measured_flits": self.measured_flits,
                    "count_flits": self._count_flits,
                    "delivered": self.delivered,
                },
                "faults": None if faults is None else faults.snapshot(),
                "tracer": (
                    None if self._tracer is None
                    else dict(vars(self._tracer))
                ),
            }
            return copy.deepcopy(bundle)
        finally:
            if faults is not None:
                faults.attach_credit_hooks()

    def restore(self, state: Dict[str, Any]) -> None:
        """Apply a :meth:`snapshot` capture onto this simulation.

        The simulation must have been constructed with the same
        parameters as the one captured (router organization, load,
        pattern, seed, fault plan, tracer, scheduler mode); only
        mutable state is replaced, in place, so scheduler registration
        and hook subscriptions stay wired.
        """
        if self.router is not self._engine:
            raise ValueError("cannot restore onto a sanitized simulation")
        if (state["faults"] is None) != (self._faults is None):
            raise ValueError(
                "fault plan mismatch between snapshot and simulation"
            )
        if (state["tracer"] is None) != (self._tracer is None):
            raise ValueError(
                "tracer mismatch between snapshot and simulation"
            )
        if len(state["sources"]) != len(self.sources):
            raise ValueError(
                f"snapshot captured {len(state['sources'])} sources, "
                f"simulation has {len(self.sources)}"
            )
        state = copy.deepcopy(state)
        self._engine._restore_state(state["engine"])
        self._sched.restore(state["sched"])
        set_packet_id_state(state["packet_ids"])
        self._program = state["program"]
        self._workload = state["workload"]
        for src, src_state in zip(self.sources, state["sources"]):
            vars(src).update(src_state)
        harness = state["harness"]
        self._next_inject = harness["next_inject"]
        self._packet_vc = harness["packet_vc"]
        self._vc_rr = harness["vc_rr"]
        self._measuring = harness["measuring"]
        self._generating = harness["generating"]
        self._labeled_outstanding = harness["labeled_outstanding"]
        self._labeled_total = harness["labeled_total"]
        self.sample = harness["sample"]
        self.measured_flits = harness["measured_flits"]
        self._count_flits = harness["count_flits"]
        self.delivered = harness["delivered"]
        if self._faults is not None:
            self._faults.restore(state["faults"])
        if self._tracer is not None:
            vars(self._tracer).clear()
            vars(self._tracer).update(state["tracer"])

    def save_checkpoint(self, path) -> None:
        """Persist this simulation (state plus rebuild spec) to disk.

        Resume with :func:`repro.harness.checkpoint.load_checkpoint`.
        """
        from .checkpoint import save_checkpoint

        save_checkpoint(self, path)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------


@dataclass
class SweepResult:
    """A load-latency curve for one router configuration."""

    label: str
    results: List[RunResult] = field(default_factory=list)

    @property
    def loads(self) -> List[float]:
        return [r.offered_load for r in self.results]

    @property
    def latencies(self) -> List[float]:
        return [r.avg_latency for r in self.results]

    @property
    def throughputs(self) -> List[float]:
        return [r.throughput for r in self.results]

    def saturation_throughput(self) -> float:
        """Largest accepted throughput observed on the curve."""
        return max((r.throughput for r in self.results), default=0.0)

    def zero_load_latency(self) -> float:
        """Latency of the lowest-load point on the curve."""
        if not self.results:
            return float("nan")
        return min(self.results, key=lambda r: r.offered_load).avg_latency


def run_load_sweep(
    make_router: RouterFactory,
    config: RouterConfig,
    loads: Sequence[float],
    label: str = "",
    packet_size: int = 1,
    pattern_factory: PatternFactory = _default_pattern,
    injection: str = "bernoulli",
    avg_burst: float = 8.0,
    settings: Optional[SweepSettings] = None,
    seed: Optional[int] = None,
    sanitize: bool = False,
    scheduler: str = "cycle",
) -> SweepResult:
    """Simulate one router at each offered load; returns the curve."""
    sweep = SweepResult(label=label or type(make_router(config)).__name__)
    for load in loads:
        router = make_router(config)
        sim = SwitchSimulation(
            router,
            load=load,
            packet_size=packet_size,
            pattern=pattern_factory(config),
            injection=injection,
            avg_burst=avg_burst,
            seed=seed,
            sanitize=sanitize,
            scheduler=scheduler,
        )
        sweep.results.append(sim.run(settings))
    return sweep


def saturation_throughput(
    make_router: RouterFactory,
    config: RouterConfig,
    packet_size: int = 1,
    pattern_factory: PatternFactory = _default_pattern,
    injection: str = "bernoulli",
    avg_burst: float = 8.0,
    settings: Optional[SweepSettings] = None,
    load: float = 1.0,
    seed: Optional[int] = None,
    sanitize: bool = False,
    scheduler: str = "cycle",
) -> float:
    """Accepted throughput at (near-)unit offered load."""
    router = make_router(config)
    sim = SwitchSimulation(
        router,
        load=load,
        packet_size=packet_size,
        pattern=pattern_factory(config),
        injection=injection,
        avg_burst=avg_burst,
        seed=seed,
        sanitize=sanitize,
        scheduler=scheduler,
    )
    return sim.run(settings).throughput


def find_saturation_load(
    make_router: RouterFactory,
    config: RouterConfig,
    packet_size: int = 1,
    pattern_factory: PatternFactory = _default_pattern,
    injection: str = "bernoulli",
    avg_burst: float = 8.0,
    settings: Optional[SweepSettings] = None,
    tolerance: float = 0.02,
    seed: Optional[int] = None,
    sanitize: bool = False,
    scheduler: str = "cycle",
) -> float:
    """Binary-search the saturation load of a router configuration.

    A point is *unsaturated* when the accepted throughput tracks the
    offered load (within ``slack = max(0.03, tolerance)``) and the
    labeled packets drain — i.e. a steady state exists, which is what
    the paper's methodology presumes below saturation.  Returns the
    largest load, within ``tolerance``, that is still unsaturated.

    This is the load at which the latency-load curve turns vertical —
    the quantity the paper reads off its figures as "saturates at
    approximately X% of capacity".  It agrees with
    :func:`saturation_throughput` (accepted throughput at load 1.0) up
    to the queueing growth near the knee.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    settings = settings or SweepSettings()
    slack = max(0.03, tolerance)

    def saturated_at(load: float) -> bool:
        router = make_router(config)
        sim = SwitchSimulation(
            router,
            load=load,
            packet_size=packet_size,
            pattern=pattern_factory(config),
            injection=injection,
            avg_burst=avg_burst,
            seed=seed,
            sanitize=sanitize,
            scheduler=scheduler,
        )
        result = sim.run(settings)
        return result.saturated or result.throughput < load - slack

    lo, hi = 0.0, 1.0
    if not saturated_at(1.0):
        return 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if saturated_at(mid):
            hi = mid
        else:
            lo = mid
    return lo
