"""Fault injection split across shard boundaries.

The serial :class:`~repro.faults.injector.NetworkFaultInjector` sees
every router of the network.  A sharded run
(:class:`~repro.network.sharded.ShardedNetworkSimulation`) splits that
single injector into cooperating halves that together make *exactly*
the draws, counter bumps, and hook emissions of the serial one:

* :class:`MirrorFaultInjector` runs in the parent process against the
  router-less front-end.  It owns everything the parent drives: the
  host-channel corruption machinery (the parent injects all host
  traffic) and the ``dead_links`` view consumed by dead-link-aware
  routing (the parent computes all routes).  It mirrors the link-fault
  schedule only to track ``dead_links`` — the counter bumps and hook
  events for a link transition come from the worker that owns the
  switch, so nothing is double-counted.

* :class:`ShardFaultInjector` runs inside each worker against the
  shard's local routers, with the plan narrowed by
  :func:`plan_for_shard`.  Credit-loss draws use the same per-router
  ``derive_rng(seed, "fault", "credit", name)`` streams as serial; for
  credits that will mature next cycle the worker *pre-draws* the
  verdicts during the boundary exchange (in
  :meth:`~repro.core.pipeline.DelayLine.pending` order — the exact
  order the commit will consume them), so the decision for a
  cross-shard credit is known before the remote restore must be
  announced.  A dropped cross-shard credit books its resync locally
  (the drop-side injector keeps the ``faults.credit_lost`` /
  ``faults.credit_resyncs`` bumps and the ``CREDIT_LOSS`` /
  ``CREDIT_RESYNC`` events, matching serial totals) while the actual
  ``restore_credit`` is shipped to the owning worker for the due cycle.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

from .injector import NetworkFaultInjector
from .plan import CREDIT_LOSS, CREDIT_RESYNC, FaultPlan


def plan_for_shard(plan: FaultPlan, local: Iterable[Any]) -> Optional[FaultPlan]:
    """Narrow ``plan`` to what one shard's workers inject themselves.

    Host-channel corruption is zeroed (the parent owns host injection)
    and the link schedule is filtered to switches in ``local``.  Credit
    loss stays: every worker needs the per-router streams for its own
    routers.  Returns None when nothing remains enabled, so idle
    workers skip the injector entirely.
    """
    local_set = set(local)
    narrowed = dataclasses.replace(
        plan,
        corrupt_rate=0.0,
        links=tuple(f for f in plan.links if f.switch in local_set),
    )
    return narrowed if narrowed.enabled else None


class MirrorFaultInjector(NetworkFaultInjector):
    """Parent-side injector for a router-less sharded front-end.

    The base constructor degrades gracefully against an empty
    ``sim.routers``: the credit-loss machinery attaches to no router
    (workers own those streams), while the corruption machinery — keyed
    only by host count — attaches in full.
    """

    def _build_schedule(self) -> List[Tuple[int, int, str, object]]:
        """Validate the link schedule against the topology, not routers.

        Same events, same order, same error contract as the base —
        only the lookup changes, because the parent builds no routers.
        """
        topo = self.sim.topology
        switches = set(topo.switch_ids())
        events: List[Tuple[int, int, str, object]] = []
        for idx, fault in enumerate(self.plan.links):
            if fault.switch not in switches:
                raise ValueError(f"LinkFault names unknown switch "
                                 f"{fault.switch!r}")
            if not 0 <= fault.port < topo.ports_used(fault.switch):
                raise ValueError(
                    f"LinkFault port {fault.port} out of range on "
                    f"{fault.switch!r}"
                )
            events.append((fault.cycle, idx, "down", fault))
            if fault.until is not None:
                events.append((fault.until, idx, "up", fault))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    def _apply_link(self, fault, down: bool, now: int) -> None:
        """Track ``dead_links`` only; the owning worker flips the live
        link, bumps the counters, and emits the hook events."""
        key = (fault.switch, fault.port)
        if down:
            self.dead_links.add(key)
        else:
            self.dead_links.discard(key)


class ShardFaultInjector(NetworkFaultInjector):
    """Worker-side injector over one shard's local routers.

    Construct with a :func:`plan_for_shard` plan against the worker
    facade (which exposes ``routers``/``hooks``/``topology`` like a
    simulation).  Two extensions over the base:

    * **Pre-drawn credit verdicts.**  :meth:`predraw_drop` consumes the
      router's credit stream ahead of the commit that acts on it and
      queues the verdict; :meth:`_decide_drop` replays queued verdicts
      before touching the stream again.  Because pre-draws happen in
      :meth:`~repro.core.pipeline.DelayLine.pending` order — the exact
      pop order of the next commit — the stream is consumed in the
      serial order even though the draw moved one cycle earlier.

    * **Cross-shard resyncs.**  :meth:`record_drop` recognizes remote
      credit sinks by their ``remote_address`` attribute: the restore
      is queued for the owning worker (drained by the boundary exchange
      via :meth:`drain_resyncs`) while the due-cycle bump and
      ``CREDIT_RESYNC`` event stay local, preserving serial totals.
    """

    def __init__(self, plan: FaultPlan, sim, seed: int) -> None:
        from collections import deque

        self._predrawn: dict = {}
        self._deque = deque
        #: (due, remote switch, remote port, vc) restores awaiting export.
        self._resync_out: List[Tuple[int, Any, int, int]] = []
        #: (due, vc) heap of remote drops still owing their local
        #: bump/emit at the due cycle.
        self._resync_due: List[Tuple[int, int]] = []
        super().__init__(plan, sim, seed)

    # -- credit verdicts -----------------------------------------------

    def predraw_drop(self, router) -> bool:
        """Draw (and queue) the next loss verdict for ``router``."""
        verdict = super()._decide_drop(router)
        queue = self._predrawn.get(router.name)
        if queue is None:
            queue = self._predrawn[router.name] = self._deque()
        queue.append(verdict)
        return verdict

    def _decide_drop(self, router) -> bool:
        queue = self._predrawn.get(router.name)
        if queue:
            return queue.popleft()
        return super()._decide_drop(router)

    # -- cross-shard resyncs -------------------------------------------

    def record_drop(self, router, sink: Callable[[int], None], vc: int,
                    cycle: int) -> None:
        address = getattr(sink, "remote_address", None)
        if address is None:
            super().record_drop(router, sink, vc, cycle)
            return
        due = cycle + self.plan.credit_resync_timeout
        self._resync_out.append((due, address[0], address[1], vc))
        heapq.heappush(self._resync_due, (due, vc))
        self._bump("faults.credit_lost")
        if self.hooks.fault_inject:
            self.hooks.emit_fault_inject(CREDIT_LOSS, (router.name, vc),
                                         cycle)

    def drain_resyncs(self) -> List[Tuple[int, Any, int, int]]:
        """Hand the queued cross-shard restores to the exchange."""
        out, self._resync_out = self._resync_out, []
        return out

    def advance(self, now: int) -> None:
        super().advance(now)
        while self._resync_due and self._resync_due[0][0] <= now:
            _, vc = heapq.heappop(self._resync_due)
            self._bump("faults.credit_resyncs")
            if self.hooks.fault_recover:
                self.hooks.emit_fault_recover(CREDIT_RESYNC, (vc,), now)

    def next_event(self, now: int) -> Optional[int]:
        horizon = super().next_event(now)
        if self._resync_due:
            due = self._resync_due[0][0]
            if horizon is None or due < horizon:
                horizon = due
        return horizon
