"""Fault injectors: interpret a :class:`~repro.faults.plan.FaultPlan`
against a live simulation.

Two injectors, one per simulation stack:

* :class:`SwitchFaultInjector` drives a standalone switch simulation
  (``harness.SwitchSimulation``): host-channel flit corruption with
  CRC-style detection and sender retransmission, credit loss on the
  credit-return wires/buses with a resync timeout, and scheduled stuck
  crosspoint/subswitch/input buffers.
* :class:`NetworkFaultInjector` drives a multi-router simulation
  (``network.NetworkSimulation``): host-channel corruption, credit
  loss on the inter-router credit return, and scheduled dead links
  that routing then avoids (graceful degradation).

Both emit ``fault_inject`` / ``fault_recover`` on the simulation's
hook bus (commit-phase or externally driven — never inside a
component's ``compute``), and both are driven by an explicit
``advance(now)`` call at the top of the owning simulation's ``step``,
so every injection and recovery lands at a schedule-independent point.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.credit import CreditCounter
from ..core.rng import derive_rng
from .plan import (
    CORRUPT,
    CREDIT_LOSS,
    CREDIT_RESYNC,
    LINK_DOWN,
    LINK_UP,
    RETRANSMIT,
    STUCK,
    UNSTUCK,
    FaultPlan,
    flit_checksum,
)


def _flatten_counters(node) -> List[CreditCounter]:
    """All CreditCounters reachable under ``node`` (nested lists/dicts)."""
    if isinstance(node, CreditCounter):
        return [node]
    if isinstance(node, dict):
        values = [node[k] for k in sorted(node)]
    else:
        values = list(node)
    found: List[CreditCounter] = []
    for value in values:
        found.extend(_flatten_counters(value))
    return found


class _ChannelFaults:
    """Shared host-channel corruption machinery (both injectors).

    One RNG stream per channel, one draw per actual transmission
    attempt: a draw below ``corrupt_rate`` corrupts the flit on the
    wire.  The receiver's CRC check detects the nonzero syndrome and
    discards the flit; the sender keeps it queued and retries after a
    growing back-off (``retry_delay``).  The first clean transmission
    after one or more corruptions is the retransmission recovery.
    """

    #: Construction-time wiring, reattached (not serialized) on restore.
    SNAPSHOT_WIRING = ("plan", "hooks", "_bump")

    def __init__(self, plan: FaultPlan, seed: int, num_channels: int,
                 hooks, bump: Callable[[str], None]) -> None:
        self.plan = plan
        self.hooks = hooks
        self._bump = bump
        self._rngs = [
            derive_rng(seed, "fault", "corrupt", c)
            for c in range(num_channels)
        ]
        self._attempts = [0] * num_channels
        self._retry_at = [0] * num_channels

    def snapshot(self) -> Dict[str, Any]:
        """Picklable capture: per-channel RNG states and back-off state."""
        return {
            "rngs": [rng.getstate() for rng in self._rngs],
            "attempts": list(self._attempts),
            "retry_at": list(self._retry_at),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        for rng, rng_state in zip(self._rngs, state["rngs"]):
            rng.setstate(rng_state)
        self._attempts = list(state["attempts"])
        self._retry_at = list(state["retry_at"])

    def rebind_bump(self, bump: Callable[[str], None]) -> None:
        """Repoint the counter sink (the owner's stats object may have
        been replaced by a restore)."""
        self._bump = bump

    def channel_ready(self, channel: int, now: int) -> bool:
        """False while ``channel`` is backing off after a corruption."""
        return self._retry_at[channel] <= now

    def retry_at(self, channel: int) -> int:
        """Cycle at which ``channel``'s back-off expires (0 = ready).

        Horizon for event-driven scheduling: a backlogged source whose
        channel is backing off need not run before this.  Pure read —
        no RNG is consulted until an actual transmission attempt.
        """
        return self._retry_at[channel]

    def attempt_transmit(self, channel: int, flit, now: int) -> bool:
        """One transmission attempt; True when the flit goes through."""
        rng = self._rngs[channel]
        if rng.random() < self.plan.corrupt_rate:
            # The wire flips bits: a nonzero syndrome lands on the check
            # symbol, so the receiver's CRC-8 recomputation can't match
            # (single-error model) and the flit is discarded on arrival.
            syndrome = 1 + rng.randrange(255)
            expected = flit_checksum(flit)
            detected = (expected ^ syndrome) != expected
            assert detected  # nonzero syndrome: always caught
            self._attempts[channel] += 1
            self._retry_at[channel] = now + self.plan.retry_delay(
                self._attempts[channel]
            )
            self._bump("faults.corrupt")
            if self.hooks.fault_inject:
                self.hooks.emit_fault_inject(CORRUPT, (channel,), now)
            return False
        if self._attempts[channel]:
            self._bump("faults.retransmits")
            if self.hooks.fault_recover:
                self.hooks.emit_fault_recover(RETRANSMIT, (channel,), now)
            self._attempts[channel] = 0
        return True


class _DropHook:
    """Credit-loss tap installed on credit pipes/buses.

    A module-level callable class rather than a bound method so the
    router object graph stays picklable for checkpoint/restore.
    """

    __slots__ = ("injector",)

    def __init__(self, injector: "SwitchFaultInjector") -> None:
        self.injector = injector

    def __call__(self, sink: Callable[[], None]) -> bool:
        return self.injector.maybe_drop(sink)


class SwitchFaultInjector:
    """Applies a FaultPlan to one standalone switch simulation.

    Owns three mechanisms:

    * host-channel corruption (via :class:`_ChannelFaults`), consulted
      by ``SwitchSimulation._inject`` at each transmission attempt;
    * credit loss: a ``drop_hook`` installed on the router's
      credit-return pipes/buses claims delivered credits with
      probability ``credit_loss_rate`` and re-delivers them
      ``credit_resync_timeout`` cycles later (the resync handshake) —
      organizations without a credit-return wire (baseline,
      distributed, VOQ, and the shared-buffer model's internal ACK
      path) are unaffected;
    * the stuck-buffer schedule: at each ``StuckFault.cycle`` the named
      crosspoint/subswitch counters are marked ``stuck`` (they stop
      accepting flits) or the named input read port is wedged via
      ``Router.stick_input``.

    Fault counters land in ``router.stats.extra["faults.*"]`` and are
    folded into run results as ``stats.faults.*``.
    """

    #: Wiring and derived indexes rebuilt by :meth:`restore` rather than
    #: captured in :meth:`snapshot` (see lint rule R010).
    SNAPSHOT_WIRING = ("plan", "router", "hooks", "credit_capable",
                       "_counter_where", "_schedule")

    def __init__(self, plan: FaultPlan, router, seed: int) -> None:
        if not plan.enabled:
            raise ValueError("refusing to attach a disabled FaultPlan")
        self.plan = plan
        self.router = router
        self.hooks = router.hooks
        self._now = 0
        fault_seed = plan.seed if plan.seed is not None else seed
        self._channels: Optional[_ChannelFaults] = None
        if plan.corrupt_rate > 0.0:
            self._channels = _ChannelFaults(
                plan, fault_seed, router.config.radix, self.hooks,
                router.stats.bump,
            )
        # --- credit loss -------------------------------------------------
        #: Lost credits awaiting resync: (due_cycle, sink) FIFO (the due
        #: cycles are monotonic because the timeout is fixed).
        self._lost: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._credit_rng = derive_rng(fault_seed, "fault", "credit")
        self._counter_where: Dict[int, Tuple[int, ...]] = {}
        if plan.credit_loss_rate > 0.0:
            self._install_credit_hooks()
        # --- stuck schedule ----------------------------------------------
        self._schedule = self._build_schedule()
        self._next_event = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _credit_taps(self) -> List[object]:
        taps = list(getattr(self.router, "_credit_pipes", ()) or ())
        taps.extend(getattr(self.router, "_credit_buses", ()) or ())
        pipe = getattr(self.router, "_credit_pipe", None)
        if pipe is not None:
            taps.append(pipe)
        return taps

    def _install_credit_hooks(self) -> None:
        taps = self._credit_taps()
        for tap in taps:
            tap.drop_hook = _DropHook(self)
        self.credit_capable = bool(taps)
        self._map_counters()

    def detach_credit_hooks(self) -> None:
        """Remove the drop taps (pipes revert to the zero-cost path).

        The checkpoint layer detaches around a router snapshot so the
        captured pipes don't drag the injector (and through its hook
        bus, the whole simulation) into the copied object graph;
        :meth:`attach_credit_hooks` re-installs the taps.
        """
        for tap in self._credit_taps():
            tap.drop_hook = None

    def attach_credit_hooks(self) -> None:
        """Re-install the taps removed by :meth:`detach_credit_hooks`."""
        if self.plan.credit_loss_rate > 0.0:
            self._install_credit_hooks()

    def _walk_counters(self) -> List[Tuple[Tuple[int, ...], CreditCounter]]:
        """(address, counter) pairs over the router's credit tree.

        Addresses are the stable (i, j[, vc]) coordinates; the tree is
        walked in deterministic index order, so the same address names
        the same logical buffer before and after a restore replaces the
        counter objects.
        """
        root = getattr(self.router, "_credits", None)
        if root is None:
            root = getattr(self.router, "_in_credits", None)
        found: List[Tuple[Tuple[int, ...], CreditCounter]] = []

        def walk(node, prefix: Tuple[int, ...]) -> None:
            if isinstance(node, CreditCounter):
                found.append((prefix, node))
                return
            for idx, child in enumerate(node):
                walk(child, prefix + (idx,))

        if root is not None:
            walk(root, ())
        return found

    def _map_counters(self) -> None:
        """Label credit counters by their stable (i, j[, vc]) address,
        so dropped-credit events can name a location (the runtime keys
        are object ids, but the emitted labels are the addresses)."""
        self._counter_where = {
            id(counter): where for where, counter in self._walk_counters()
        }

    def _build_schedule(self) -> List[Tuple[int, int, str, object]]:
        events: List[Tuple[int, int, str, object]] = []
        for idx, fault in enumerate(self.plan.stuck):
            events.append((fault.cycle, idx, "stick", fault))
            if fault.until is not None:
                events.append((fault.until, idx, "unstick", fault))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    # ------------------------------------------------------------------
    # Per-cycle driver (called at the top of SwitchSimulation.step)
    # ------------------------------------------------------------------

    def advance(self, now: int) -> None:
        self._now = now
        while (
            self._next_event < len(self._schedule)
            and self._schedule[self._next_event][0] <= now
        ):
            _, _, action, fault = self._schedule[self._next_event]
            self._apply_stuck(fault, action == "stick", now)
            self._next_event += 1
        while self._lost and self._lost[0][0] <= now:
            _, sink = self._lost.popleft()
            sink()
            self.router.stats.bump("faults.credit_resyncs")
            if self.hooks.fault_recover:
                where = self._counter_where.get(id(sink.__self__), ())
                self.hooks.emit_fault_recover(CREDIT_RESYNC, where, now)

    # ------------------------------------------------------------------
    # Corruption (delegated to the harness injection loop)
    # ------------------------------------------------------------------

    def channel_ready(self, port: int, now: int) -> bool:
        if self._channels is None:
            return True
        return self._channels.channel_ready(port, now)

    def channel_retry_at(self, port: int) -> int:
        """Back-off expiry cycle for ``port`` (0 when never corrupted)."""
        if self._channels is None:
            return 0
        return self._channels.retry_at(port)

    def attempt_transmit(self, port: int, flit, now: int) -> bool:
        if self._channels is None:
            return True
        return self._channels.attempt_transmit(port, flit, now)

    def next_event(self, now: int) -> Optional[int]:
        """Horizon: the next scheduled stuck event or due credit resync.

        Pure read over the pre-sorted schedule (``_next_event`` cursor)
        and the resync FIFO (due cycles are monotonic: the timeout is
        fixed), so event-driven fast-forward never jumps over a fault
        injection or a recovery.
        """
        horizon: Optional[int] = None
        if self._next_event < len(self._schedule):
            horizon = self._schedule[self._next_event][0]
        if self._lost and (horizon is None or self._lost[0][0] < horizon):
            horizon = self._lost[0][0]
        return horizon

    # ------------------------------------------------------------------
    # Credit loss
    # ------------------------------------------------------------------

    def maybe_drop(self, sink: Callable[[], None]) -> bool:
        """drop_hook decision, called through the installed :class:`_DropHook`."""
        if self._credit_rng.random() >= self.plan.credit_loss_rate:
            return False
        self._lost.append(
            (self._now + self.plan.credit_resync_timeout, sink)
        )
        self.router.stats.bump("faults.credit_lost")
        if self.hooks.fault_inject:
            where = self._counter_where.get(id(sink.__self__), ())
            self.hooks.emit_fault_inject(CREDIT_LOSS, where, self._now)
        return True

    def pending_credit_sinks(self) -> List[Callable[[], None]]:
        """Sinks held for resync (credit-conservation accounting)."""
        return [sink for _, sink in self._lost]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable capture of the injector's mutable state.

        Held resync sinks (bound counter methods) are encoded by the
        owning counter's stable address plus the method name, so the
        capture carries no live object references; :meth:`restore`
        re-resolves them against the (by then restored) router.
        """
        lost = []
        for due, sink in self._lost:
            where = self._counter_where.get(id(sink.__self__))
            if where is None:
                raise RuntimeError(
                    "cannot checkpoint a resync sink whose counter has "
                    "no stable address"
                )
            lost.append((due, where, sink.__func__.__name__))
        return {
            "now": self._now,
            "next_event": self._next_event,
            "credit_rng": self._credit_rng.getstate(),
            "lost": lost,
            "channels": (
                None if self._channels is None else self._channels.snapshot()
            ),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Apply a :meth:`snapshot` capture; call *after* the router's
        own state has been restored (sink resolution and hook taps run
        against the live counter tree)."""
        self._now = state["now"]
        self._next_event = state["next_event"]
        self._credit_rng.setstate(state["credit_rng"])
        if self._channels is not None:
            self._channels.restore(state["channels"])
            # The router restore replaced its stats object; counters
            # must land on the live one.
            self._channels.rebind_bump(self.router.stats.bump)
        if self.plan.credit_loss_rate > 0.0:
            # The restore may have replaced pipes and counters: re-tap
            # the credit wires and re-index the counter addresses.
            self._install_credit_hooks()
        by_address = dict(self._walk_counters())
        self._lost = deque(
            (due, getattr(by_address[tuple(where)], method))
            for due, where, method in state["lost"]
        )

    # ------------------------------------------------------------------
    # Stuck buffers
    # ------------------------------------------------------------------

    def _apply_stuck(self, fault, stick: bool, now: int) -> None:
        if fault.kind == "crosspoint":
            for counter in self._resolve_crosspoint(fault.where):
                counter.stuck = stick
        else:  # "input"
            port = fault.where[0]
            vc = fault.where[1] if len(fault.where) > 1 else None
            if stick:
                self.router.stick_input(port, vc)
            else:
                self.router.unstick_input(port, vc)
        if stick:
            self.router.stats.bump("faults.stuck")
            if self.hooks.fault_inject:
                self.hooks.emit_fault_inject(STUCK, fault.where, now)
        else:
            self.router.stats.bump("faults.unstuck")
            if self.hooks.fault_recover:
                self.hooks.emit_fault_recover(UNSTUCK, fault.where, now)

    def _resolve_crosspoint(self, where) -> List[CreditCounter]:
        root = getattr(self.router, "_credits", None)
        if root is None:
            root = getattr(self.router, "_in_credits", None)
        if root is None:
            raise ValueError(
                f"{type(self.router).__name__} has no crosspoint or "
                f"subswitch buffers; use kind='input' stuck faults"
            )
        node = root
        for idx in where:
            node = node[idx]
        counters = _flatten_counters(node)
        if not counters:
            raise ValueError(f"stuck-fault address {where} names no buffer")
        return counters


class NetworkFaultInjector:
    """Applies a FaultPlan to a multi-router network simulation.

    Host-channel corruption mirrors the switch injector.  Credit loss
    intercepts the committed inter-router credit deliveries (each
    ``NetworkRouter`` consults its ``fault_injector`` attribute before
    calling a staged credit sink) and re-delivers after the resync
    timeout.  Scheduled :class:`~repro.faults.plan.LinkFault` events
    take output links down/up; route computation then avoids dead
    links (``route_avoiding`` when the topology provides it, bounded
    re-rolls of the oblivious route otherwise), counting reroutes and
    give-ups.  Counters land in the run result as ``stats.faults.*``.
    """

    #: Wiring and the pre-validated link schedule, rebuilt from the plan
    #: at construction rather than captured by :meth:`snapshot`.
    SNAPSHOT_WIRING = ("plan", "sim", "hooks", "_schedule")

    def __init__(self, plan: FaultPlan, sim, seed: int) -> None:
        if not plan.enabled:
            raise ValueError("refusing to attach a disabled FaultPlan")
        self.plan = plan
        self.sim = sim
        self.hooks = sim.hooks
        self.counters: Dict[str, int] = {}
        fault_seed = plan.seed if plan.seed is not None else seed
        self._channels: Optional[_ChannelFaults] = None
        if plan.corrupt_rate > 0.0:
            self._channels = _ChannelFaults(
                plan, fault_seed, sim.topology.num_hosts, self.hooks,
                self._bump,
            )
        # --- credit loss -------------------------------------------------
        self._lost: Deque[Tuple[int, Callable[[int], None], int]] = deque()
        self._credit_rngs: Dict[str, object] = {}
        if plan.credit_loss_rate > 0.0:
            for sid, router in sim.routers.items():
                router.fault_injector = self
                self._credit_rngs[router.name] = derive_rng(
                    fault_seed, "fault", "credit", router.name
                )
        # --- link schedule -----------------------------------------------
        self.dead_links: set = set()
        self._schedule = self._build_schedule()
        self._next_event = 0

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _build_schedule(self) -> List[Tuple[int, int, str, object]]:
        events: List[Tuple[int, int, str, object]] = []
        for idx, fault in enumerate(self.plan.links):
            router = self.sim.routers.get(fault.switch)
            if router is None:
                raise ValueError(f"LinkFault names unknown switch "
                                 f"{fault.switch!r}")
            if not 0 <= fault.port < len(router.links):
                raise ValueError(
                    f"LinkFault port {fault.port} out of range on "
                    f"{fault.switch!r}"
                )
            events.append((fault.cycle, idx, "down", fault))
            if fault.until is not None:
                events.append((fault.until, idx, "up", fault))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    # ------------------------------------------------------------------
    # Per-cycle driver (called at the top of NetworkSimulation.step)
    # ------------------------------------------------------------------

    def advance(self, now: int) -> None:
        while (
            self._next_event < len(self._schedule)
            and self._schedule[self._next_event][0] <= now
        ):
            _, _, action, fault = self._schedule[self._next_event]
            self._apply_link(fault, action == "down", now)
            self._next_event += 1
        while self._lost and self._lost[0][0] <= now:
            _, sink, vc = self._lost.popleft()
            sink(vc)
            self._bump("faults.credit_resyncs")
            if self.hooks.fault_recover:
                self.hooks.emit_fault_recover(CREDIT_RESYNC, (vc,), now)

    def _apply_link(self, fault, down: bool, now: int) -> None:
        router = self.sim.routers[fault.switch]
        link = router.links[fault.port]
        link.alive = not down
        key = (fault.switch, fault.port)
        where = (str(fault.switch), fault.port)
        if down:
            self.dead_links.add(key)
            self._bump("faults.link_down")
            if self.hooks.fault_inject:
                self.hooks.emit_fault_inject(LINK_DOWN, where, now)
        else:
            self.dead_links.discard(key)
            self._bump("faults.link_up")
            if self.hooks.fault_recover:
                self.hooks.emit_fault_recover(LINK_UP, where, now)

    # ------------------------------------------------------------------
    # Corruption (delegated to the netsim host-injection loop)
    # ------------------------------------------------------------------

    def channel_ready(self, host: int, now: int) -> bool:
        if self._channels is None:
            return True
        return self._channels.channel_ready(host, now)

    def channel_retry_at(self, host: int) -> int:
        """Back-off expiry cycle for ``host`` (0 when never corrupted)."""
        if self._channels is None:
            return 0
        return self._channels.retry_at(host)

    def attempt_transmit(self, host: int, flit, now: int) -> bool:
        if self._channels is None:
            return True
        return self._channels.attempt_transmit(host, flit, now)

    def next_event(self, now: int) -> Optional[int]:
        """Horizon: the next scheduled link event or due credit resync.

        Mirrors :meth:`SwitchFaultInjector.next_event`; pure read.
        """
        horizon: Optional[int] = None
        if self._next_event < len(self._schedule):
            horizon = self._schedule[self._next_event][0]
        if self._lost and (horizon is None or self._lost[0][0] < horizon):
            horizon = self._lost[0][0]
        return horizon

    # ------------------------------------------------------------------
    # Credit loss (consulted from NetworkRouter.commit)
    # ------------------------------------------------------------------

    def _decide_drop(self, router) -> bool:
        """One loss decision on ``router``'s private credit stream.

        Split from the bookkeeping so the sharded engine can pre-draw
        decisions for credits that mature on a later cycle (the stream
        is per-router, so consuming it ahead of the commit that acts on
        the decision preserves the serial draw order).
        """
        rng = self._credit_rngs.get(router.name)
        return rng is not None and rng.random() < self.plan.credit_loss_rate

    def record_drop(self, router, sink: Callable[[int], None], vc: int,
                    cycle: int) -> None:
        """Book a dropped credit: queue its resync, count it, emit."""
        self._lost.append(
            (cycle + self.plan.credit_resync_timeout, sink, vc)
        )
        self._bump("faults.credit_lost")
        if self.hooks.fault_inject:
            self.hooks.emit_fault_inject(
                CREDIT_LOSS, (router.name, vc), cycle
            )

    def drop_credit(self, router, sink: Callable[[int], None], vc: int,
                    cycle: int) -> bool:
        if not self._decide_drop(router):
            return False
        self.record_drop(router, sink, vc, cycle)
        return True

    def pending_credits(self) -> List[Tuple[Callable[[int], None], int]]:
        """(sink, vc) pairs held for resync (conservation accounting)."""
        return [(sink, vc) for _, sink, vc in self._lost]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _sink_addresses(self) -> Dict[int, Tuple[object, int]]:
        """id(credit sink) -> (switch id, port) over the live network."""
        where: Dict[int, Tuple[object, int]] = {}
        for sid, router in self.sim.routers.items():
            for port, sink in enumerate(router.credit_sinks):
                if sink is not None:
                    where[id(sink)] = (sid, port)
        return where

    def snapshot(self) -> Dict[str, Any]:
        """Picklable capture of the injector's mutable state.

        Held resync sinks are encoded as the (switch, port) coordinates
        of the credit-sink slot they occupy; :meth:`restore` resolves
        the coordinates back to the live sink objects.
        """
        where = self._sink_addresses()
        lost = []
        for due, sink, vc in self._lost:
            address = where.get(id(sink))
            if address is None:
                raise RuntimeError(
                    "cannot checkpoint a resync sink that is not a "
                    "registered credit sink"
                )
            lost.append((due, address, vc))
        return {
            "counters": dict(self.counters),
            "dead_links": sorted(self.dead_links),
            "next_event": self._next_event,
            "lost": lost,
            "credit_rngs": {
                name: rng.getstate()
                for name, rng in sorted(self._credit_rngs.items())
            },
            "channels": (
                None if self._channels is None else self._channels.snapshot()
            ),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Apply a :meth:`snapshot` capture (routers restored first)."""
        self.counters = dict(state["counters"])
        self.dead_links = {
            (sid, port) for sid, port in state["dead_links"]
        }
        self._next_event = state["next_event"]
        for name, rng_state in state["credit_rngs"].items():
            self._credit_rngs[name].setstate(rng_state)
        if self._channels is not None:
            self._channels.restore(state["channels"])
        routers = self.sim.routers
        self._lost = deque(
            (due, routers[sid].credit_sinks[port], vc)
            for due, (sid, port), vc in state["lost"]
        )

    # ------------------------------------------------------------------
    # Dead-link-aware routing
    # ------------------------------------------------------------------

    def route(self, topo, src_host: int, dst_host: int, rng) -> List[int]:
        """Route ``src -> dst``, avoiding dead links when possible."""
        ports = topo.route(src_host, dst_host, rng)
        if not self.dead_links or self._route_clean(topo, src_host, ports):
            return ports
        self._bump("faults.reroutes")
        avoid = getattr(topo, "route_avoiding", None)
        if avoid is not None:
            alt = avoid(src_host, dst_host, rng, self._link_ok)
            if alt is not None:
                return alt
        else:
            for _ in range(16):
                alt = topo.route(src_host, dst_host, rng)
                if self._route_clean(topo, src_host, alt):
                    return alt
        # No clean path found: ship the blind route — the packet waits
        # at the dead link until (if ever) it comes back up.
        self._bump("faults.route_giveups")
        return ports

    def _link_ok(self, switch, port: int) -> bool:
        return (switch, port) not in self.dead_links

    def _route_clean(self, topo, src_host: int, ports: List[int]) -> bool:
        switch = topo.host_attachment(src_host).switch
        for port in ports:
            if (switch, port) in self.dead_links:
                return False
            ref = topo.neighbor(switch, port)
            if ref.switch is None:
                break
            switch = ref.switch
        return True
