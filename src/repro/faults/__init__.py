"""Deterministic fault injection and graceful degradation.

The paper's flow-control machinery (credit-based crosspoint flow
control, Section 5.2; speculation retry, Section 4.4) defines natural
recovery semantics; this package exercises them under loss.  A
:class:`FaultPlan` describes transient faults (flit corruption on host
channels, credit loss on the return wires) drawn from seed-derived RNG
streams plus scheduled structural faults (stuck buffers, dead network
links); :class:`SwitchFaultInjector` / :class:`NetworkFaultInjector`
interpret the plan against a live simulation, emitting
``fault_inject`` / ``fault_recover`` on the
:class:`~repro.engine.hooks.EngineHooks` bus and counting everything
into ``stats.faults.*`` extras.

Replayability is the design center: same seed + same plan gives
byte-identical fault schedules, recovery actions, and final results —
see ``docs/faults.md``.
"""

from .injector import NetworkFaultInjector, SwitchFaultInjector
from .plan import (
    CORRUPT,
    CREDIT_LOSS,
    CREDIT_RESYNC,
    LINK_DOWN,
    LINK_UP,
    RETRANSMIT,
    STUCK,
    UNSTUCK,
    FaultPlan,
    LinkFault,
    StuckFault,
    crc8,
    flit_checksum,
    sample_link_faults,
)

__all__ = [
    "FaultPlan",
    "StuckFault",
    "LinkFault",
    "SwitchFaultInjector",
    "NetworkFaultInjector",
    "crc8",
    "flit_checksum",
    "sample_link_faults",
    "CORRUPT",
    "CREDIT_LOSS",
    "STUCK",
    "LINK_DOWN",
    "RETRANSMIT",
    "CREDIT_RESYNC",
    "UNSTUCK",
    "LINK_UP",
]
