"""Deterministic fault plans.

A :class:`FaultPlan` is a *description* of faults to inject into a
simulation: rate-based transient faults (flit corruption on the host
channels, credit loss on the return wires) drawn from seed-derived
:func:`~repro.core.rng.derive_rng` streams, plus explicitly scheduled
structural faults (stuck crosspoint/subswitch/input buffers, dead
network links).  The plan itself is immutable and holds no state; the
injectors in :mod:`repro.faults.injector` interpret it against a live
simulation.

Determinism contract: the same seed and the same plan produce the same
fault schedule, the same recovery actions, and byte-identical final
statistics — including with active-set scheduling on or off.  Every
random decision is drawn from a stream keyed by stable names (port
index, router name), never from object identity, and every draw happens
at a schedule-independent point (host-channel transmission attempts,
committed credit deliveries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.rng import derive_rng

#: Fault kinds, as reported on the ``fault_inject`` hook event.
CORRUPT = "corrupt"
CREDIT_LOSS = "credit_loss"
STUCK = "stuck"
LINK_DOWN = "link_down"

#: Recovery kinds, as reported on the ``fault_recover`` hook event.
RETRANSMIT = "retransmit"
CREDIT_RESYNC = "credit_resync"
UNSTUCK = "unstuck"
LINK_UP = "link_up"


@dataclass(frozen=True)
class StuckFault:
    """One scheduled stuck-buffer fault inside a switch.

    ``kind="crosspoint"`` sticks downstream buffers by address: ``where``
    indexes into the router's crosspoint/subswitch credit array (e.g.
    ``(i, j)`` sticks every VC of crosspoint *(i, j)* of the buffered
    crossbar; ``(i, j, vc)`` one VC lane; ``(i, col)`` a subswitch input
    buffer of the hierarchical model).  A stuck buffer stops *accepting*
    flits — its flits still drain and its credits still return, so
    conservation invariants hold throughout.

    ``kind="input"`` wedges the read port of input buffer ``where``
    (``(port,)`` for all VCs, ``(port, vc)`` for one): buffered flits
    stop draining until the fault clears.  This is the stuck-buffer
    analogue for organizations without crosspoint buffers.
    """

    cycle: int
    where: Tuple[int, ...]
    kind: str = "crosspoint"
    until: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("crosspoint", "input"):
            raise ValueError(f"unknown stuck-fault kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {self.cycle}")
        if self.until is not None and self.until <= self.cycle:
            raise ValueError(
                f"until ({self.until}) must be > cycle ({self.cycle})"
            )
        if not self.where:
            raise ValueError("where must name at least one index")


@dataclass(frozen=True)
class LinkFault:
    """One scheduled dead-link fault in a network simulation.

    The output link at ``port`` of switch ``switch`` goes down at
    ``cycle`` (it stops transmitting; flits already queued toward it
    wait) and — when ``until`` is set — comes back up at ``until``.
    Routes computed while the link is down avoid it (graceful
    degradation); flits routed before the failure wait for recovery.
    """

    cycle: int
    switch: object
    port: int
    until: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {self.cycle}")
        if self.until is not None and self.until <= self.cycle:
            raise ValueError(
                f"until ({self.until}) must be > cycle ({self.cycle})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, and how recovery is parameterized.

    Rates are per-event probabilities: ``corrupt_rate`` per host-channel
    transmission attempt, ``credit_loss_rate`` per delivered credit.
    ``seed`` keys the fault streams; None inherits the simulation seed,
    so one seed reproduces traffic *and* faults together.
    """

    corrupt_rate: float = 0.0
    credit_loss_rate: float = 0.0
    #: Cycles a sender backs off after the first detected corruption;
    #: doubles (``retransmit_backoff``) per consecutive corruption, up
    #: to ``retransmit_cap`` cycles.
    retransmit_timeout: int = 4
    retransmit_backoff: float = 2.0
    retransmit_cap: int = 64
    #: Cycles after which a lost credit is re-delivered out of band
    #: (the modeled credit-resync handshake).
    credit_resync_timeout: int = 32
    stuck: Tuple[StuckFault, ...] = ()
    links: Tuple[LinkFault, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("corrupt_rate", "credit_loss_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.retransmit_timeout < 1:
            raise ValueError(
                f"retransmit_timeout must be >= 1, "
                f"got {self.retransmit_timeout}"
            )
        if self.retransmit_backoff < 1.0:
            raise ValueError(
                f"retransmit_backoff must be >= 1, "
                f"got {self.retransmit_backoff}"
            )
        if self.retransmit_cap < self.retransmit_timeout:
            raise ValueError(
                f"retransmit_cap ({self.retransmit_cap}) must be >= "
                f"retransmit_timeout ({self.retransmit_timeout})"
            )
        if self.credit_resync_timeout < 1:
            raise ValueError(
                f"credit_resync_timeout must be >= 1, "
                f"got {self.credit_resync_timeout}"
            )

    @property
    def enabled(self) -> bool:
        """True when the plan can inject anything at all.

        A disabled plan is treated exactly like no plan: the simulation
        takes the zero-cost path and stays byte-identical to a run with
        no fault machinery attached.
        """
        return bool(
            self.corrupt_rate > 0.0
            or self.credit_loss_rate > 0.0
            or self.stuck
            or self.links
        )

    def retry_delay(self, attempts: int) -> int:
        """Sender back-off after ``attempts`` consecutive corruptions."""
        delay = self.retransmit_timeout * (
            self.retransmit_backoff ** max(0, attempts - 1)
        )
        return min(self.retransmit_cap, int(delay))

    def next_scheduled_cycle(self, now: int = 0) -> Optional[int]:
        """Earliest scheduled fault transition at or after ``now``.

        Covers both edges of every scheduled fault — injection
        (``cycle``) and recovery (``until``) — over the stuck-buffer
        and dead-link schedules.  This is the plan-level horizon for
        event-driven scheduling; the live injectors answer the same
        question in O(1) from their sorted schedules, but the plan can
        answer it without a simulation attached (rate-based transient
        faults have no schedule: they ride on transmission attempts
        and credit deliveries, which only happen on executed cycles).
        """
        edges = [
            edge
            for fault in self.stuck + self.links
            for edge in (fault.cycle, fault.until)
            if edge is not None and edge >= now
        ]
        return min(edges, default=None)


# ----------------------------------------------------------------------
# CRC-8 (the modeled link-level detection code)
# ----------------------------------------------------------------------

_CRC8_POLY = 0x07  # x^8 + x^2 + x + 1 (CRC-8/SMBUS)


def crc8(data: bytes) -> int:
    """Bitwise CRC-8 (poly 0x07, init 0) over ``data``."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ _CRC8_POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def flit_checksum(flit) -> int:
    """CRC-8 over a flit's identifying fields.

    Models the per-flit check symbol a link-level retransmission
    protocol would carry; a corrupted transmission XORs a nonzero error
    syndrome onto this, which the receiver detects (CRC-8 catches all
    single-byte errors, which is the only error model injected).
    """
    payload = (
        flit.packet_id & 0xFFFFFFFF,
        flit.flit_index & 0xFFFF,
        flit.dest & 0xFFFF,
        flit.vc & 0xFF,
    )
    data = bytearray()
    for value in payload:
        while True:
            data.append(value & 0xFF)
            value >>= 8
            if not value:
                break
    return crc8(bytes(data))


def sample_link_faults(
    topology,
    seed: int,
    count: int,
    cycle: int,
    until: Optional[int] = None,
) -> Tuple[LinkFault, ...]:
    """Draw ``count`` distinct inter-switch links to kill at ``cycle``.

    Deterministic in ``seed``; host-facing ports are excluded so the
    failure is always routable-around in a multipath topology.
    """
    rng = derive_rng(seed, "fault", "links")
    candidates: List[Tuple[object, int]] = []
    for sid in topology.switch_ids():
        for port in topology.wired_ports(sid):
            if topology.neighbor(sid, port).switch is not None:
                candidates.append((sid, port))
    if count > len(candidates):
        raise ValueError(
            f"asked for {count} link faults but the topology has only "
            f"{len(candidates)} inter-switch links"
        )
    picked = []
    for _ in range(count):
        picked.append(candidates.pop(rng.randrange(len(candidates))))
    return tuple(
        LinkFault(cycle=cycle, switch=sid, port=port, until=until)
        for sid, port in picked
    )
