"""Finding renderers and the baseline filter.

Findings are duck-typed here (anything with ``path``, ``line``,
``column``, ``code``, ``message``) so this module stays importable
without :mod:`repro.analysis.lint` — the lint driver imports *us*.

JSON output is stable-sorted by ``(path, line, code)`` upstream and
serialized with sorted keys, so byte-identical inputs give
byte-identical documents.  SARIF output targets the 2.1.0 schema with
the minimal valid shape GitHub code scanning ingests: one run, one
tool driver with per-rule metadata, one result per finding with a
physical location using repo-relative forward-slash URIs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Protocol, Sequence, Set, Tuple


class FindingLike(Protocol):
    path: str
    line: int
    column: int
    code: str
    message: str


#: SARIF schema pin for the generated documents.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

#: Reported in ``tool.driver``; version-bumped with the rule catalogue.
TOOL_NAME = "repro-lint"
TOOL_VERSION = "2.0.0"


def _uri(path: str) -> str:
    return path.replace("\\", "/")


def findings_to_json(findings: Sequence[FindingLike]) -> str:
    """Deterministic JSON document (inputs must already be sorted)."""
    payload = {
        "version": 1,
        "count": len(findings),
        "findings": [
            {
                "path": _uri(f.path),
                "line": f.line,
                "column": f.column,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def findings_to_sarif(
    findings: Sequence[FindingLike],
    rule_meta: Dict[str, Tuple[str, str]],
) -> str:
    """SARIF 2.1.0 document.

    ``rule_meta`` maps rule codes to ``(name, short_description)``;
    codes that appear in findings but not in the map (E999) still get a
    rule entry so every result's ``ruleId``/``ruleIndex`` resolves.
    """
    codes = sorted(set(rule_meta) | {f.code for f in findings})
    rule_index = {code: i for i, code in enumerate(codes)}
    rules: List[Dict[str, Any]] = []
    for code in codes:
        name, desc = rule_meta.get(
            code, (code, "Syntax error" if code == "E999" else code)
        )
        rules.append({
            "id": code,
            "name": name,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {
                "level": "error" if code.startswith("E") else "warning",
            },
        })
    results: List[Dict[str, Any]] = []
    for f in findings:
        results.append({
            "ruleId": f.code,
            "ruleIndex": rule_index[f.code],
            "level": "error" if f.code.startswith("E") else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _uri(f.path),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.column, 1),
                    },
                },
            }],
        })
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Baseline (grandfathered findings)
# ----------------------------------------------------------------------

Fingerprint = Tuple[str, str, str]


def fingerprint(finding: FindingLike) -> Fingerprint:
    """Line-number-free identity: survives unrelated edits above."""
    return (_uri(finding.path), finding.code, finding.message)


def load_baseline(path: str) -> Set[Fingerprint]:
    """The grandfathered set, empty when absent or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return set()
    out: Set[Fingerprint] = set()
    for entry in data.get("findings", []):
        try:
            out.add((entry["path"], entry["code"], entry["message"]))
        except (KeyError, TypeError):
            continue
    return out


def apply_baseline(
    findings: Iterable[FindingLike], baseline: Set[Fingerprint]
) -> List[FindingLike]:
    return [f for f in findings if fingerprint(f) not in baseline]


def write_baseline(path: str, findings: Sequence[FindingLike]) -> None:
    entries = sorted(
        {fingerprint(f) for f in findings}
    )
    payload = {
        "version": 1,
        "findings": [
            {"path": p, "code": c, "message": m} for p, c, m in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
