"""Whole-program analysis index for the lint pass.

The per-file rules (R001-R004) see one module at a time; everything the
simulator's *contracts* promise — compute-phase purity across helper
calls, globally unique RNG streams, serializable component state,
hook-payload shapes — is a property of the whole program.  This
subpackage provides the machinery the project rules (R005-R012) run on:

:mod:`~repro.analysis.flow.summary`
    One pass over a parsed module producing a :class:`FileSummary`:
    imports resolved to dotted targets, the class table with base-class
    references, and per-method records of attribute reads/writes,
    ``self`` method calls, hook emissions/subscriptions, and
    ``derive_rng`` call sites.  Summaries are plain data and round-trip
    through JSON, which is what makes them cacheable.

:mod:`~repro.analysis.flow.index`
    The :class:`ProjectIndex`: summaries keyed by module, a cross-module
    class hierarchy with MRO linearization, method resolution along the
    MRO, and the :class:`EngineHooks` event registry recovered from the
    indexed source itself.

:mod:`~repro.analysis.flow.cache`
    A content-hash summary store: unchanged files are neither re-parsed
    nor re-checked by the per-file rules; the project rules always run,
    but against cached summaries, so a warm re-lint of an unchanged
    tree costs file hashing plus dictionary walks.

:mod:`~repro.analysis.flow.output`
    Deterministic JSON and SARIF 2.1.0 renderings of findings, and the
    baseline (grandfathered-findings) filter.
"""

from __future__ import annotations

from .cache import SummaryCache
from .index import ProjectIndex
from .summary import FileSummary, summarize_module

__all__ = [
    "FileSummary",
    "ProjectIndex",
    "SummaryCache",
    "summarize_module",
]
