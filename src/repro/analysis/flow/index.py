"""The whole-program analysis index.

A :class:`ProjectIndex` stitches the per-file summaries into one view:
classes are keyed by qualified name (``module.Class``), base-class
references are resolved across module boundaries, and a C3-free MRO
linearization (depth-first, left-to-right, first occurrence wins — the
paper-repro codebase uses single inheritance plus mixins, where this
coincides with Python's MRO) lets the rules ask "which ``compute`` does
this class actually run?" without importing simulator code.

The index also recovers the :class:`~repro.engine.hooks.EngineHooks`
event registry *from the indexed source itself* — the hook-contract
rule (R011) checks ``emit_*`` call sites against whatever the linted
tree defines, so the rule stays correct if the event set evolves.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .summary import ClassSummary, FileSummary, MethodSummary


class EventSpec:
    """Signature of one ``EngineHooks`` event (an ``emit_*`` method)."""

    __slots__ = ("name", "params", "n_defaults", "has_vararg")

    def __init__(self, name: str, params: List[str], n_defaults: int,
                 has_vararg: bool) -> None:
        self.name = name  #: event name without the ``emit_`` prefix
        self.params = params  #: payload parameter names, in order
        self.n_defaults = n_defaults
        self.has_vararg = has_vararg

    @property
    def min_args(self) -> int:
        return len(self.params) - self.n_defaults

    @property
    def max_args(self) -> int:
        return len(self.params)


class ProjectIndex:
    """Cross-module view over a set of :class:`FileSummary` objects."""

    def __init__(self, summaries: List[FileSummary]) -> None:
        #: summaries keyed by display path, in insertion order
        self.files: Dict[str, FileSummary] = {}
        #: summaries keyed by dotted module name
        self.modules: Dict[str, FileSummary] = {}
        #: ``module.Class`` -> (owning summary, class summary)
        self.classes: Dict[str, Tuple[FileSummary, ClassSummary]] = {}
        #: simple class name -> sorted qualnames defining it
        self.by_name: Dict[str, List[str]] = {}
        for s in summaries:
            self.add(s)
        self._mro_cache: Dict[str, Tuple[List[str], List[str]]] = {}
        self._hooks_registry: Optional[Dict[str, EventSpec]] = None
        #: display path -> every ``(line, code)`` any rule fired on that
        #: file pre-suppression; populated by the lint runner, consumed
        #: by the stale-pragma rule (R012).
        self.rule_hits: Dict[str, Set[Tuple[int, str]]] = {}

    def add(self, summary: FileSummary) -> None:
        self.files[summary.path] = summary
        self.modules[summary.module] = summary
        for cls in summary.classes:
            qual = f"{summary.module}.{cls.name}" if summary.module else cls.name
            self.classes[qual] = (summary, cls)
            self.by_name.setdefault(cls.name, []).append(qual)
        for quals in self.by_name.values():
            quals.sort()

    # ------------------------------------------------------------------
    # Base resolution and MRO
    # ------------------------------------------------------------------

    def resolve_class(self, ref: str, from_module: str = "") -> Optional[str]:
        """Resolve a (possibly dotted) class reference to a qualname.

        Resolution order: module-local name, exact qualname, then an
        unambiguous simple-name match anywhere in the program (this is
        what closes the cross-module subclass hole: ``HierRouter`` in a
        fixture module resolves to the one class of that name even when
        the import graph is not fully modeled).  Returns ``None`` for
        references that stay external to the indexed tree.
        """
        if from_module:
            local = f"{from_module}.{ref}"
            if local in self.classes:
                return local
        if ref in self.classes:
            return ref
        simple = ref.rsplit(".", 1)[-1]
        candidates = self.by_name.get(simple, [])
        if len(candidates) == 1:
            return candidates[0]
        # Ambiguous simple name: only accept a dotted-suffix match.
        if "." in ref:
            suffix = [q for q in candidates if q.endswith("." + ref) or q == ref]
            if len(suffix) == 1:
                return suffix[0]
        return None

    def mro(self, qualname: str) -> Tuple[List[str], List[str]]:
        """``(internal_chain, external_bases)`` for a class.

        ``internal_chain`` starts with ``qualname`` and lists ancestors
        resolved inside the index, depth-first left-to-right with
        duplicates dropped (cycle-safe).  ``external_bases`` collects
        base references that never resolved internally, with their
        original (import-resolved) dotted text preserved.
        """
        cached = self._mro_cache.get(qualname)
        if cached is not None:
            return cached
        chain: List[str] = []
        external: List[str] = []
        seen: Set[str] = set()

        def visit(qual: str) -> None:
            if qual in seen:
                return
            seen.add(qual)
            chain.append(qual)
            entry = self.classes.get(qual)
            if entry is None:
                return
            summary, cls = entry
            for base in cls.bases:
                resolved = self.resolve_class(base, summary.module)
                if resolved is not None:
                    visit(resolved)
                elif base not in external:
                    external.append(base)

        visit(qualname)
        result = (chain, external)
        self._mro_cache[qualname] = result
        return result

    def resolve_method(
        self, qualname: str, name: str
    ) -> Optional[Tuple[str, MethodSummary]]:
        """First definition of ``name`` along the MRO, with its owner."""
        chain, _ = self.mro(qualname)
        for qual in chain:
            entry = self.classes.get(qual)
            if entry is None:
                continue
            method = entry[1].methods.get(name)
            if method is not None:
                return qual, method
        return None

    def defines_in_mro(self, qualname: str, name: str) -> bool:
        return self.resolve_method(qualname, name) is not None

    def iter_classes(self) -> Iterator[Tuple[str, FileSummary, ClassSummary]]:
        """All indexed classes as ``(qualname, file, class)``, in path
        order then definition order — the deterministic rule-walk order."""
        for summary in self.files.values():
            for cls in summary.classes:
                qual = (
                    f"{summary.module}.{cls.name}" if summary.module else cls.name
                )
                yield qual, summary, cls

    # ------------------------------------------------------------------
    # Family queries
    # ------------------------------------------------------------------

    def is_router_family(self, qualname: str) -> bool:
        """True when the class descends from the Router contract.

        Internal descent means the MRO reaches a class named ``Router``
        inside the index; external descent means some unresolved base
        is named (or dotted-ends in) ``Router``.
        """
        chain, external = self.mro(qualname)
        for qual in chain[1:]:
            if qual.rsplit(".", 1)[-1] == "Router":
                return True
        return any(b.rsplit(".", 1)[-1] == "Router" for b in external)

    def router_root(self, qualname: str) -> Optional[str]:
        """The qualname of the ``Router`` ancestor, if internal."""
        chain, _ = self.mro(qualname)
        for qual in chain[1:]:
            if qual.rsplit(".", 1)[-1] == "Router":
                return qual
        return None

    def is_two_phase(self, qualname: str) -> bool:
        """True when the class participates in the compute/commit
        protocol: both phases are defined somewhere along its MRO, or
        it (transitively) extends an external base named ``Component``.
        """
        if self.defines_in_mro(qualname, "compute") and self.defines_in_mro(
            qualname, "commit"
        ):
            return True
        _, external = self.mro(qualname)
        return any(b.rsplit(".", 1)[-1] == "Component" for b in external)

    def concrete_two_phase_classes(self) -> List[str]:
        """Two-phase classes that are not extended further inside the
        index — the classes that actually get instantiated and run."""
        extended: Set[str] = set()
        for qual in self.classes:
            chain, _ = self.mro(qual)
            extended.update(chain[1:])
        return [
            qual
            for qual, _, _ in self.iter_classes()
            if self.is_two_phase(qual) and qual not in extended
        ]

    # ------------------------------------------------------------------
    # EngineHooks registry (R011)
    # ------------------------------------------------------------------

    def hooks_registry(self) -> Dict[str, EventSpec]:
        """Event registry recovered from the indexed ``EngineHooks``.

        Each ``emit_<event>`` method contributes one :class:`EventSpec`
        whose params are the payload signature.  Prefers the class
        defined in ``repro.engine.hooks``; falls back to any class named
        ``EngineHooks``.  Empty when no registry is in view (e.g. when
        linting a test tree alone) — R011 goes silent rather than
        guessing.
        """
        if self._hooks_registry is not None:
            return self._hooks_registry
        registry: Dict[str, EventSpec] = {}
        hooks_cls = self._find_hooks_class()
        if hooks_cls is not None:
            for name, method in hooks_cls.methods.items():
                if not name.startswith("emit_"):
                    continue
                registry[name[len("emit_"):]] = EventSpec(
                    name=name[len("emit_"):],
                    params=list(method.params),
                    n_defaults=method.n_defaults,
                    has_vararg=method.has_vararg,
                )
        self._hooks_registry = registry
        return registry

    def _find_hooks_class(self) -> Optional[ClassSummary]:
        preferred = self.classes.get("repro.engine.hooks.EngineHooks")
        if preferred is not None:
            return preferred[1]
        for qual in self.by_name.get("EngineHooks", []):
            return self.classes[qual][1]
        return None
