"""Per-file analysis summaries.

A :class:`FileSummary` is everything the project rules need to know
about one module, extracted in a single AST pass and expressed as plain
data: no AST nodes survive, so summaries serialize to JSON and can be
cached by content hash (see :mod:`~repro.analysis.flow.cache`).

The summarizer resolves imports to dotted targets (``from
repro.routers.base import Router`` binds the local name ``Router`` to
``"repro.routers.base.Router"``) so the index can stitch class
hierarchies across modules without ever importing simulator code.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Attribute prefix marking staged-intent storage (writable in compute).
STAGED_PREFIX = "_staged"

#: Constructor names whose instances can never be pickled (R010).
_LOCK_FACTORIES = {
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier",
}


@dataclass
class WriteSite:
    """One attribute assignment: ``<root>.<attr>[...] = <value>``."""

    root: str  #: leftmost name of the target chain ("self", a local, "")
    attr: str  #: attribute being written
    line: int
    kind: str  #: value classification — "plain", "lambda", "generator",
    #: "open", "lock", "self_call:<m>", or "self_attr:<a>"


@dataclass
class CallSite:
    """A ``self.<name>(...)`` call inside a method body."""

    name: str
    line: int


@dataclass
class EmitSite:
    """A ``<receiver>.emit_*(...)`` call anywhere in the file."""

    event: str  #: full method name, e.g. "emit_flit_move"
    line: int
    nargs: int  #: positional arguments (no star-args counted)
    kwnames: List[str]
    has_star: bool  #: ``*args``/``**kwargs`` present — arity unknowable
    receiver: str  #: source text of the receiver expression
    cls: str  #: enclosing class name ("" at module level)
    method: str  #: enclosing function name ("" at module level)


@dataclass
class SubSite:
    """A ``<receiver>.on_*(handler)`` hook subscription."""

    event: str  #: full method name, e.g. "on_cycle_end"
    line: int
    receiver: str
    handler_kind: str  #: "self_method", "name", "lambda", or "opaque"
    handler_name: str  #: method/function name for the first two kinds
    handler_nargs: int  #: parameter count for "lambda"
    handler_vararg: bool
    cls: str  #: enclosing class name ("" at module level)


@dataclass
class RngSite:
    """A ``derive_rng``/``derive_seed`` call site and its key shape."""

    func: str
    line: int
    #: One entry per key argument (everything after the seed):
    #: ``"const:<repr>"`` for compile-time constants, ``"dyn:<text>"``.
    key: List[str]
    #: Statically detectable instability in the key ("id()", "hash()",
    #: "set iteration").
    bad: List[str]
    scope: str  #: "module", "class", or "function"
    assigned_global: bool  #: result bound to a module-level name


@dataclass
class MethodSummary:
    """Flow facts about one function or method body."""

    name: str
    line: int
    params: List[str]  #: parameter names, ``self`` excluded for methods
    n_defaults: int
    has_vararg: bool
    self_writes: List[WriteSite] = field(default_factory=list)
    cross_writes: List[WriteSite] = field(default_factory=list)
    self_reads: List[str] = field(default_factory=list)
    self_calls: List[CallSite] = field(default_factory=list)
    emits: List[EmitSite] = field(default_factory=list)
    calls_super_init: bool = False
    explicit_init_bases: List[str] = field(default_factory=list)
    returns_closure: bool = False
    raises_only: bool = False  #: body is nothing but ``raise`` (a stub)


@dataclass
class ClassSummary:
    """One class definition: resolved bases and method summaries."""

    name: str
    line: int
    bases: List[str]  #: dotted refs after import resolution
    methods: Dict[str, MethodSummary] = field(default_factory=dict)
    #: string entries of a class-body ``SNAPSHOT_WIRING = (...)`` tuple —
    #: attributes the serialization rule (R010) must treat as live
    #: wiring that ``restore`` re-attaches rather than deserializes
    snapshot_wiring: List[str] = field(default_factory=list)


@dataclass
class FileSummary:
    """Everything the project rules need to know about one module."""

    path: str
    module: str
    classes: List[ClassSummary] = field(default_factory=list)
    functions: Dict[str, MethodSummary] = field(default_factory=dict)
    rng_sites: List[RngSite] = field(default_factory=list)
    emit_sites: List[EmitSite] = field(default_factory=list)
    sub_sites: List[SubSite] = field(default_factory=list)
    pragmas: Dict[int, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        # JSON object keys are strings; pragma lines are ints.
        data["pragmas"] = {str(k): v for k, v in self.pragmas.items()}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileSummary":
        def method(m: Dict[str, Any]) -> MethodSummary:
            return MethodSummary(
                name=m["name"], line=m["line"], params=m["params"],
                n_defaults=m["n_defaults"], has_vararg=m["has_vararg"],
                self_writes=[WriteSite(**w) for w in m["self_writes"]],
                cross_writes=[WriteSite(**w) for w in m["cross_writes"]],
                self_reads=m["self_reads"],
                self_calls=[CallSite(**c) for c in m["self_calls"]],
                emits=[EmitSite(**e) for e in m["emits"]],
                calls_super_init=m["calls_super_init"],
                explicit_init_bases=m["explicit_init_bases"],
                returns_closure=m["returns_closure"],
                raises_only=m["raises_only"],
            )

        return cls(
            path=data["path"],
            module=data["module"],
            classes=[
                ClassSummary(
                    name=c["name"], line=c["line"], bases=c["bases"],
                    methods={k: method(v) for k, v in c["methods"].items()},
                    snapshot_wiring=c["snapshot_wiring"],
                )
                for c in data["classes"]
            ],
            functions={k: method(v) for k, v in data["functions"].items()},
            rng_sites=[RngSite(**r) for r in data["rng_sites"]],
            emit_sites=[EmitSite(**e) for e in data["emit_sites"]],
            sub_sites=[SubSite(**s) for s in data["sub_sites"]],
            pragmas={int(k): v for k, v in data["pragmas"].items()},
        )


# ----------------------------------------------------------------------
# Extraction helpers
# ----------------------------------------------------------------------


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _root_and_attr(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``(root, attr)`` for a write target ``root...<attr>`` (through
    any subscript chain), or ``None`` for plain-name targets."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    attr = node.attr
    base = node.value
    # Walk to the leftmost name: self.a.b -> root "self" is what matters
    # for ownership, so report the *immediate* receiver's root.
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        base = base.value if isinstance(base, ast.Subscript) else base.value
    if isinstance(base, ast.Name):
        return base.id, attr
    if isinstance(base, ast.Call):
        return "", attr
    return "", attr


def _flatten_targets(target: ast.expr) -> List[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        leaves: List[ast.expr] = []
        for elt in target.elts:
            leaves.extend(_flatten_targets(elt))
        return leaves
    if isinstance(target, ast.Starred):
        return _flatten_targets(target.value)
    return [target]


def _value_kind(value: Optional[ast.expr]) -> str:
    """Classify an assigned value for serialization-readiness (R010)."""
    if value is None:
        return "plain"
    if isinstance(value, ast.Lambda):
        return "lambda"
    if isinstance(value, ast.GeneratorExp):
        return "generator"
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open"
            if func.id in _LOCK_FACTORIES:
                return "lock"
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                return "open"
            if func.attr in _LOCK_FACTORIES:
                return "lock"
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return f"self_call:{func.attr}"
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return f"self_attr:{value.attr}"
    return "plain"


def _raises_only(body: List[ast.stmt]) -> bool:
    """True for stub bodies: docstring plus nothing but ``raise``.

    Such methods deliberately opt *out* of a protocol (e.g. a sharded
    simulation whose ``snapshot`` raises), so serialization rules must
    not treat them as entry points.
    """
    stmts = list(body)
    if (
        stmts
        and isinstance(stmts[0], ast.Expr)
        and isinstance(stmts[0].value, ast.Constant)
        and isinstance(stmts[0].value.value, str)
    ):
        stmts = stmts[1:]
    return bool(stmts) and all(isinstance(s, ast.Raise) for s in stmts)


def _contains_unstable_key(node: ast.expr) -> List[str]:
    """Reasons a key expression is unstable across runs/processes."""
    reasons: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id == "id":
                reasons.append("id()")
            elif sub.func.id == "hash":
                reasons.append("hash()")
        elif isinstance(sub, (ast.Set, ast.SetComp)):
            reasons.append("set iteration")
    return reasons


def _module_name_for(path_parts: Tuple[str, ...], root_parts: Tuple[str, ...]) -> str:
    """Dotted module name for a file, preferring the ``src`` layout."""
    parts = list(path_parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    # Prefer the conventional src-layout root when present.
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        return ".".join(parts[idx + 1:])
    # Otherwise: relative to the lint root the file was found under.
    if root_parts and len(parts) > len(root_parts) and tuple(
        parts[: len(root_parts)]
    ) == root_parts:
        parts = parts[len(root_parts):]
        return ".".join(parts)
    return ".".join(parts[-2:]) if len(parts) > 1 else ".".join(parts)


class _Summarizer(ast.NodeVisitor):
    """Single-pass extractor filling a :class:`FileSummary`."""

    def __init__(self, summary: FileSummary) -> None:
        self.s = summary
        self.imports: Dict[str, str] = {}
        self._class_stack: List[ClassSummary] = []
        self._method_stack: List[MethodSummary] = []

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.imports[local] = alias.name if alias.asname else local
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            pkg_parts = self.s.module.split(".") if self.s.module else []
            # level=1 strips the module itself; each extra level strips
            # one more package component.
            keep = len(pkg_parts) - node.level
            prefix = ".".join(pkg_parts[:keep]) if keep > 0 else ""
            base = f"{prefix}.{base}".strip(".") if base else prefix
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.imports[local] = f"{base}.{alias.name}".strip(".")
        self.generic_visit(node)

    # -- classes and methods -------------------------------------------

    def _resolve_ref(self, node: ast.expr) -> str:
        text = _expr_text(node)
        first, _, rest = text.partition(".")
        target = self.imports.get(first)
        if target is None:
            return text
        return f"{target}.{rest}" if rest else target

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassSummary(
            name=node.name,
            line=node.lineno,
            bases=[self._resolve_ref(b) for b in node.bases
                   if not isinstance(b, (ast.Subscript, ast.Call))],
        )
        self.s.classes.append(cls)
        self._class_stack.append(cls)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    def _enter_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        in_class = bool(self._class_stack) and not self._method_stack
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if in_class and params and params[0] in ("self", "cls"):
            params = params[1:]
        params += [a.arg for a in args.kwonlyargs]
        n_defaults = len(args.defaults) + sum(
            1 for d in args.kw_defaults if d is not None
        )
        method = MethodSummary(
            name=node.name,
            line=node.lineno,
            params=params,
            n_defaults=n_defaults,
            has_vararg=args.vararg is not None or args.kwarg is not None,
        )
        if self._method_stack:
            # Nested function: its body is attributed to the enclosing
            # method (it captures self), but it is not itself resolvable.
            outer = self._method_stack[-1]
            self._method_stack.append(outer)
            for stmt in node.body:
                self.visit(stmt)
            self._method_stack.pop()
            return
        method.raises_only = _raises_only(node.body)
        self._method_stack.append(method)
        for stmt in node.body:
            self.visit(stmt)
        self._method_stack.pop()
        if in_class:
            self._class_stack[-1].methods.setdefault(node.name, method)
        elif not self._class_stack:
            self.s.functions.setdefault(node.name, method)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # -- statements inside bodies --------------------------------------

    def _record_write(self, target: ast.expr, value: Optional[ast.expr],
                      line: int) -> None:
        if not self._method_stack:
            return
        for leaf in _flatten_targets(target):
            located = _root_and_attr(leaf)
            if located is None:
                continue
            root, attr = located
            site = WriteSite(root=root, attr=attr, line=line,
                             kind=_value_kind(value))
            method = self._method_stack[-1]
            if root == "self":
                method.self_writes.append(site)
            else:
                method.cross_writes.append(site)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node.value, node.lineno)
        self._maybe_snapshot_wiring(node)
        self.generic_visit(node)
        # After generic_visit so the RngSite for the RHS call exists.
        self._maybe_rng_assignment(node)

    def _maybe_snapshot_wiring(
        self, node: "ast.Assign | ast.AnnAssign"
    ) -> None:
        """Record a class-body ``SNAPSHOT_WIRING = ("attr", ...)``
        (plain or annotated assignment)."""
        if not self._class_stack or self._method_stack:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if not any(
            isinstance(t, ast.Name) and t.id == "SNAPSHOT_WIRING"
            for t in targets
        ):
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        self._class_stack[-1].snapshot_wiring = [
            elt.value
            for elt in node.value.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, None, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node.value, node.lineno)
            self._maybe_snapshot_wiring(node)
        self.generic_visit(node)
        if node.value is not None:
            self._maybe_rng_assignment(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self._method_stack
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self._method_stack[-1].self_reads.append(node.attr)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._visit_attribute_call(node, func)
        elif isinstance(func, ast.Name):
            self._visit_name_call(node, func)
        self.generic_visit(node)

    def _enclosing(self) -> Tuple[str, str]:
        cls = self._class_stack[-1].name if self._class_stack else ""
        method = self._method_stack[-1].name if self._method_stack else ""
        return cls, method

    def _visit_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        cls, method_name = self._enclosing()
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            if self._method_stack:
                self._method_stack[-1].self_calls.append(
                    CallSite(name=func.attr, line=node.lineno)
                )
        if func.attr.startswith("emit_"):
            has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
                kw.arg is None for kw in node.keywords
            )
            site = EmitSite(
                event=func.attr,
                line=node.lineno,
                nargs=sum(1 for a in node.args
                          if not isinstance(a, ast.Starred)),
                kwnames=sorted(kw.arg for kw in node.keywords
                               if kw.arg is not None),
                has_star=has_star,
                receiver=_expr_text(func.value),
                cls=cls,
                method=method_name,
            )
            self.s.emit_sites.append(site)
            if self._method_stack:
                self._method_stack[-1].emits.append(site)
        elif func.attr.startswith("on_") and len(node.args) == 1:
            self._record_subscription(node, func)
        elif func.attr == "__init__":
            self._record_explicit_init(func)
        self._maybe_rng_call(node, _expr_text(func))

    def _record_subscription(self, node: ast.Call, func: ast.Attribute) -> None:
        handler = node.args[0]
        kind, name, nargs, vararg = "opaque", "", 0, False
        if (
            isinstance(handler, ast.Attribute)
            and isinstance(handler.value, ast.Name)
            and handler.value.id == "self"
        ):
            kind, name = "self_method", handler.attr
        elif isinstance(handler, ast.Name):
            kind, name = "name", handler.id
        elif isinstance(handler, ast.Lambda):
            kind = "lambda"
            nargs = len(handler.args.posonlyargs) + len(handler.args.args)
            vararg = handler.args.vararg is not None
        cls, _ = self._enclosing()
        self.s.sub_sites.append(SubSite(
            event=func.attr,
            line=node.lineno,
            receiver=_expr_text(func.value),
            handler_kind=kind,
            handler_name=name,
            handler_nargs=nargs,
            handler_vararg=vararg,
            cls=cls,
        ))

    def _record_explicit_init(self, func: ast.Attribute) -> None:
        if not self._method_stack:
            return
        method = self._method_stack[-1]
        callee = func.value
        if (
            isinstance(callee, ast.Call)
            and isinstance(callee.func, ast.Name)
            and callee.func.id == "super"
        ):
            method.calls_super_init = True
        elif isinstance(callee, (ast.Name, ast.Attribute)):
            method.explicit_init_bases.append(_expr_text(callee))

    def _visit_name_call(self, node: ast.Call, func: ast.Name) -> None:
        self._maybe_rng_call(node, func.id)

    def _maybe_rng_call(self, node: ast.Call, call_text: str) -> None:
        name = call_text.rsplit(".", 1)[-1]
        if name not in ("derive_rng", "derive_seed"):
            return
        key: List[str] = []
        bad: List[str] = []
        for arg in node.args[1:]:
            if isinstance(arg, ast.Constant):
                key.append(f"const:{arg.value!r}")
            elif isinstance(arg, ast.Starred):
                key.append(f"dyn:{_expr_text(arg)}")
            else:
                key.append(f"dyn:{_expr_text(arg)}")
            if not isinstance(arg, ast.Constant):
                bad.extend(_contains_unstable_key(arg))
        if self._method_stack:
            scope = "function"
        elif self._class_stack:
            scope = "class"
        else:
            scope = "module"
        self.s.rng_sites.append(RngSite(
            func=name,
            line=node.lineno,
            key=key,
            bad=sorted(set(bad)),
            scope=scope,
            assigned_global=False,
        ))

    def _maybe_rng_assignment(self, node: "ast.Assign | ast.AnnAssign") -> None:
        """Mark module-level ``name = derive_rng(...)`` bindings."""
        if self._method_stack or self._class_stack:
            return
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "derive_rng":
            return
        for site in self.s.rng_sites:
            if site.line == node.lineno and site.func == "derive_rng":
                site.assigned_global = True


def summarize_module(
    tree: ast.Module,
    display_path: str,
    pragmas: Optional[Dict[int, List[str]]] = None,
    root: str = "",
) -> FileSummary:
    """Produce the :class:`FileSummary` for one parsed module.

    ``root`` is the lint path the file was found under; it anchors the
    module-name computation for trees that do not follow the ``src``
    layout (test fixtures, scratch dirs).
    """
    path_parts = tuple(p for p in display_path.replace("\\", "/").split("/") if p)
    root_parts = tuple(p for p in root.replace("\\", "/").split("/") if p)
    summary = FileSummary(
        path=display_path,
        module=_module_name_for(path_parts, root_parts),
        pragmas=dict(pragmas or {}),
    )
    summarizer = _Summarizer(summary)
    summarizer.visit(tree)
    _detect_closure_returns(tree, summary)
    return summary


def _detect_closure_returns(tree: ast.Module, summary: FileSummary) -> None:
    """Set ``returns_closure`` on methods returning a nested def/lambda."""

    def check(fn: "ast.FunctionDef | ast.AsyncFunctionDef",
              target: MethodSummary) -> None:
        nested = {
            stmt.name
            for stmt in ast.walk(fn)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not fn
        }
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                value = node.value
                if isinstance(value, ast.Lambda):
                    target.returns_closure = True
                elif isinstance(value, ast.Name) and value.id in nested:
                    target.returns_closure = True

    by_name: Dict[Tuple[str, str], MethodSummary] = {}
    for cls in summary.classes:
        for mname, m in cls.methods.items():
            by_name[(cls.name, mname)] = m
    for fname, f in summary.functions.items():
        by_name[("", fname)] = f

    class_stack: List[str] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                class_stack.append(child.name)
                walk(child)
                class_stack.pop()
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = class_stack[-1] if class_stack else ""
                target = by_name.get((owner, child.name))
                if target is not None:
                    check(child, target)
            else:
                walk(child)

    walk(tree)
