"""Content-hash cache for per-file lint work.

The expensive half of a lint run is per file: read, tokenize for
pragmas, parse, run the per-file rules, and summarize for the index.
All of it is a pure function of the file's bytes, so the cache keys
each entry on the SHA-256 of the content and stores the three products:

* the per-file findings (post pragma-filter, R001–R004 and E999),
* the ``(line, code)`` pragma hits those rules consumed (R012 needs
  them even on warm runs),
* the :class:`~repro.analysis.flow.summary.FileSummary` as plain JSON.

Project rules (R005–R012) are *not* cached — they depend on the whole
tree — but they run over summaries, so a warm re-lint of an unchanged
tree costs file hashing plus dictionary walks, no parsing.

The store is invalidated wholesale when the cache format or the rule
signature changes (:data:`CACHE_VERSION` plus the sorted rule codes).
Writes are atomic (tempfile + rename) so an interrupted run can never
leave a torn store behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the summary schema or cached-finding shape changes.
#: 2: ClassSummary.snapshot_wiring + MethodSummary.raises_only (R010
#: snapshot-completeness).
CACHE_VERSION = 2

#: Default store location, relative to the working directory.
DEFAULT_CACHE_PATH = ".lint-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class SummaryCache:
    """A JSON-backed map: display path -> (hash, findings, summary)."""

    def __init__(self, path: str = DEFAULT_CACHE_PATH,
                 signature: str = "") -> None:
        self.path = path
        self.signature = signature
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("version") != CACHE_VERSION:
            return
        if data.get("signature") != self.signature:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, display_path: str, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``display_path`` if its hash matches."""
        entry = self._entries.get(display_path)
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        display_path: str,
        digest: str,
        summary: Optional[Dict[str, Any]],
        findings: List[Dict[str, Any]],
        used_pragmas: List[Tuple[int, str]],
    ) -> None:
        self._entries[display_path] = {
            "hash": digest,
            "summary": summary,
            "findings": findings,
            "used_pragmas": [[line, code] for line, code in used_pragmas],
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "entries": self._entries,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            prefix=".lint-cache-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._dirty = False
