"""AST lint framework for simulator-specific rules.

Two kinds of rule share one catalogue:

* **Per-file rules** (R001-R004) implement ``check(tree, ctx)`` — a
  generator over one parsed module.  Their findings are a pure function
  of the file's bytes, so they are cached by content hash (see
  :mod:`repro.analysis.flow.cache`).
* **Project rules** (R005-R012) additionally implement
  ``check_project(index)`` against the whole-program
  :class:`~repro.analysis.flow.index.ProjectIndex` — cross-module class
  hierarchies, interprocedural purity, global RNG-stream uniqueness.
  Rules that implement both (R005-R007) run per-file under
  :func:`lint_file` and whole-program under :func:`lint_paths`; the
  per-file form is the degraded single-module view, kept for editor
  integration and unit tests.

Findings are reported as ``path:line: code message`` — one per line,
sorted by ``(path, line, code)`` — or as deterministic JSON / SARIF
2.1.0 via ``--format`` (see :mod:`repro.analysis.flow.output`).

Pragmas::

    bad_call()          # lint: disable=R001        suppress one code
    bad_call()          # lint: disable=R001,R002   suppress several
    bad_call()          # lint: disable             suppress all codes

A pragma applies to findings reported on its own physical line.
Pragmas are read from real comment tokens (``tokenize``), so
pragma-shaped text inside strings and docstrings is inert.  A pragma
that suppresses nothing is itself a finding (R012).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    TYPE_CHECKING,
    Tuple,
)

if TYPE_CHECKING:
    from .flow.cache import SummaryCache
    from .flow.index import ProjectIndex

#: Directories never linted when *recursed into* (build products,
#: caches, intentionally-broken fixture corpora).  The exclusion is
#: relative to the lint root, so ``lint tests`` skips
#: ``tests/fixtures/`` while ``lint tests/fixtures/lint`` lints it.
EXCLUDED_DIRS = {"__pycache__", ".git", "build", "dist", "fixtures"}
EXCLUDED_SUFFIXES = (".egg-info",)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    path: str
    line: int
    code: str
    message: str
    column: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Per-file information shared by all rules."""

    path: Path
    display_path: str
    source: str
    #: Line number -> set of disabled codes ("*" disables everything).
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def is_rng_module(self) -> bool:
        """True for ``repro/core/rng.py``, the sanctioned ``random`` user."""
        parts = self.path.parts
        return len(parts) >= 3 and parts[-3:] == ("repro", "core", "rng.py")

    def suppressed(self, line: int, code: str) -> bool:
        disabled = self.pragmas.get(line)
        if disabled is None:
            return False
        return "*" in disabled or code in disabled


class LintRule:
    """Base class for lint rules.

    Subclasses set ``code`` (``"R00x"``), ``name``, and ``description``
    and implement :meth:`check`.  Rules that can exploit the
    whole-program index additionally implement ``check_project(index)``
    (see :class:`ProjectRule`); :func:`lint_paths` prefers that form.
    """

    code: str = "R000"
    name: str = "abstract-rule"
    description: str = ""
    #: Final-phase project rules (R012) run after every other rule and
    #: see the accumulated rule-hit map; their findings bypass pragma
    #: suppression (they reason about the pragmas themselves).
    runs_last: bool = False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            code=self.code,
            message=message,
        )

    def project_finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(path=path, line=line, code=self.code, message=message)


class ProjectRule(LintRule):
    """A rule that only exists at whole-program scope (R008-R012).

    ``check`` is a no-op so the catalogue stays safe to hand to
    :func:`lint_file`; the real work happens in :meth:`check_project`.
    """

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError


def _has_project_check(rule: LintRule) -> bool:
    return callable(getattr(rule, "check_project", None))


def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Pragma map from comment tokens; regex fallback on tokenize error.

    The tokenizer pass means docstrings *about* pragmas don't register
    as pragmas (a regex over raw lines can't tell the difference); the
    fallback keeps suppression working in files the tokenizer rejects,
    where reporting something is better than reporting noise.
    """
    pragmas: Dict[int, Set[str]] = {}

    def record(lineno: int, text: str) -> None:
        m = _PRAGMA_RE.search(text)
        if not m:
            return
        codes = m.group(1)
        if codes is None:
            pragmas[lineno] = {"*"}
        else:
            pragmas[lineno] = {c.strip() for c in codes.split(",") if c.strip()}

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pragmas.clear()
        for lineno, line in enumerate(source.splitlines(), start=1):
            record(lineno, line)
    return pragmas


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for root, candidate in _iter_with_roots(paths):
        yield candidate


def _iter_with_roots(paths: Sequence[str]) -> Iterator[Tuple[Path, Path]]:
    """``(lint_root, file)`` pairs; exclusions apply below the root."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root.parent, root
            continue
        if not root.exists():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            rel_parts = candidate.relative_to(root).parts
            if any(part in EXCLUDED_DIRS for part in rel_parts):
                continue
            if any(part.endswith(EXCLUDED_SUFFIXES) for part in rel_parts):
                continue
            yield root, candidate


def lint_file(
    path: Path,
    rules: Sequence[LintRule],
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Apply ``rules`` to one file; returns unsuppressed findings.

    This is the degraded per-file view: rules that need the project
    index contribute only their syntactic ``check`` here (which is
    empty for R008-R012).
    """
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [_syntax_finding(display_path or str(path), exc)]
    ctx = FileContext(
        path=path,
        display_path=display_path or str(path),
        source=source,
        pragmas=_parse_pragmas(source),
    )
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(tree, ctx):
            if not ctx.suppressed(finding.line, finding.code):
                findings.append(finding)
    return findings


def _syntax_finding(display_path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=display_path,
        line=exc.lineno or 1,
        code="E999",
        message=f"syntax error: {exc.msg}",
        column=(exc.offset or 1) - 1,
    )


def _sort_key(f: Finding) -> Tuple[str, int, str, int, str]:
    return (f.path, f.line, f.code, f.column, f.message)


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    cache: Optional["SummaryCache"] = None,
) -> List[Finding]:
    """Whole-program lint of every Python file under ``paths``.

    Per-file rules run on each module (from ``cache`` when the content
    hash matches); project rules run once against the
    :class:`~repro.analysis.flow.index.ProjectIndex` built from the
    per-file summaries.  Returns findings sorted by (path, line, code).
    """
    from .flow.cache import content_hash
    from .flow.index import ProjectIndex
    from .flow.summary import FileSummary, summarize_module

    if rules is None:
        from .rules import all_rules

        rules = all_rules()
    file_rules = [r for r in rules if not _has_project_check(r)]
    project_rules = [
        r for r in rules if _has_project_check(r) and not r.runs_last
    ]
    final_rules = [r for r in rules if _has_project_check(r) and r.runs_last]

    findings: List[Finding] = []
    summaries: List[FileSummary] = []
    #: display path -> every (line, code) any rule fired pre-suppression;
    #: the stale-pragma rule consumes this.
    rule_hits: Dict[str, Set[Tuple[int, str]]] = {}

    for root, path in _iter_with_roots(paths):
        display = str(path)
        raw = path.read_bytes()
        digest = content_hash(raw)
        if cache is not None:
            entry = cache.lookup(display, digest)
            if entry is not None:
                findings.extend(Finding(**f) for f in entry["findings"])
                rule_hits[display] = {
                    (line, code) for line, code in entry["used_pragmas"]
                }
                if entry["summary"] is not None:
                    summaries.append(FileSummary.from_dict(entry["summary"]))
                continue
        source = raw.decode("utf-8")
        hits: Set[Tuple[int, str]] = set()
        rule_hits[display] = hits
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            bad = _syntax_finding(display, exc)
            findings.append(bad)
            if cache is not None:
                cache.store(display, digest, None, [vars(bad).copy()], [])
            continue
        pragmas = _parse_pragmas(source)
        ctx = FileContext(
            path=path, display_path=display, source=source, pragmas=pragmas
        )
        kept: List[Finding] = []
        for rule in file_rules:
            for finding in rule.check(tree, ctx):
                hits.add((finding.line, finding.code))
                if not ctx.suppressed(finding.line, finding.code):
                    kept.append(finding)
        findings.extend(kept)
        summary = summarize_module(
            tree,
            display,
            pragmas={ln: sorted(codes) for ln, codes in pragmas.items()},
            root=str(root),
        )
        summaries.append(summary)
        if cache is not None:
            cache.store(
                display,
                digest,
                summary.to_dict(),
                [vars(f).copy() for f in kept],
                sorted(hits),
            )

    index = ProjectIndex(summaries)
    index.rule_hits = rule_hits
    pragma_maps: Dict[str, Dict[int, Set[str]]] = {
        s.path: {ln: set(codes) for ln, codes in s.pragmas.items()}
        for s in summaries
    }

    for rule in project_rules:
        for finding in rule.check_project(index):
            rule_hits.setdefault(finding.path, set()).add(
                (finding.line, finding.code)
            )
            disabled = pragma_maps.get(finding.path, {}).get(finding.line)
            if disabled and ("*" in disabled or finding.code in disabled):
                continue
            findings.append(finding)
    for rule in final_rules:
        findings.extend(rule.check_project(index))

    if cache is not None:
        cache.save()
    findings.sort(key=_sort_key)
    return findings


def format_findings(findings: Iterable[Finding]) -> str:
    return "\n".join(f.format() for f in findings)


def rules_signature(rules: Sequence[LintRule]) -> str:
    """Cache-invalidation key: the catalogue in force."""
    from .flow.output import TOOL_VERSION

    return TOOL_VERSION + ":" + ",".join(sorted(r.code for r in rules))


def filter_rules(
    rules: Sequence[LintRule],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[LintRule]:
    """Apply ``--select``/``--ignore`` code filters to the catalogue.

    Raises :class:`ValueError` for codes that name no known rule
    (E999 is accepted: it is filterable output, not a rule).
    """
    known = {r.code for r in rules} | {"E999"}
    for code in list(select or []) + list(ignore or []):
        if code not in known:
            raise ValueError(f"unknown rule code: {code}")
    kept = list(rules)
    if select:
        kept = [r for r in kept if r.code in set(select)]
    if ignore:
        kept = [r for r in kept if r.code not in set(ignore)]
    return kept


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    print_findings: bool = True,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    output_format: str = "text",
    output_path: Optional[str] = None,
    cache_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
) -> int:
    """Lint ``paths``; return a process exit code.

    0 = clean, 1 = findings, 2 = usage error (unknown rule code or
    format).  ``--format json``/``sarif`` write a deterministic
    document to ``output_path`` (stdout when unset); the exit code
    still reflects the findings so CI fails on regressions.
    """
    from .flow import output as out_mod

    if rules is None:
        from .rules import all_rules

        rules = all_rules()
    try:
        active = filter_rules(rules, select, ignore)
    except ValueError as exc:
        print(f"lint: {exc}")
        return 2
    if output_format not in ("text", "json", "sarif"):
        print(f"lint: unknown format: {output_format}")
        return 2

    cache = None
    if cache_path is not None:
        from .flow.cache import SummaryCache

        cache = SummaryCache(cache_path, signature=rules_signature(active))
    findings = lint_paths(paths, active, cache=cache)
    dropped = set(ignore or ())
    if dropped:
        findings = [f for f in findings if f.code not in dropped]
    if select:
        wanted = set(select)
        findings = [f for f in findings if f.code in wanted]

    if write_baseline and baseline_path:
        out_mod.write_baseline(baseline_path, findings)
        if print_findings:
            print(
                f"lint: wrote baseline with {len(findings)} "
                f"finding{'s' if len(findings) != 1 else ''} to {baseline_path}"
            )
        return 0
    if baseline_path:
        findings = out_mod.apply_baseline(
            findings, out_mod.load_baseline(baseline_path)
        )

    if output_format == "json":
        document = out_mod.findings_to_json(findings)
    elif output_format == "sarif":
        meta = {r.code: (r.name, r.description) for r in active}
        document = out_mod.findings_to_sarif(findings, meta)
    else:
        document = None

    if document is not None:
        if output_path:
            with open(output_path, "w", encoding="utf-8") as fh:
                fh.write(document)
        elif print_findings:
            print(document, end="")
    else:
        if findings and print_findings:
            print(format_findings(findings))
        if print_findings:
            n = len(findings)
            summary = (
                "clean" if n == 0 else f"{n} finding{'s' if n != 1 else ''}"
            )
            print(f"lint: {summary} ({', '.join(paths)})")
    return 1 if findings else 0
