"""AST lint framework for simulator-specific rules.

A *rule* walks a parsed module and yields :class:`Finding`s; the runner
applies every registered rule to every ``.py`` file under the given
paths, filters findings through ``# lint: disable=...`` pragmas, and
reports them as ``path:line: code message`` — one finding per line,
sorted, suitable for editors and CI logs.

Pragmas::

    bad_call()          # lint: disable=R001        suppress one code
    bad_call()          # lint: disable=R001,R002   suppress several
    bad_call()          # lint: disable             suppress all codes

A pragma applies to findings reported on its own physical line.

The framework is deliberately small: rules are plain classes with a
``code``, a ``description``, and a ``check(tree, ctx)`` generator — see
:mod:`repro.analysis.rules` for the catalogue (R001-R007).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Directories never linted (build products, caches).
EXCLUDED_DIRS = {"__pycache__", ".git", "build", "dist"}
EXCLUDED_SUFFIXES = (".egg-info",)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Per-file information shared by all rules."""

    path: Path
    display_path: str
    source: str
    #: Line number -> set of disabled codes ("*" disables everything).
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def is_rng_module(self) -> bool:
        """True for ``repro/core/rng.py``, the sanctioned ``random`` user."""
        parts = self.path.parts
        return len(parts) >= 3 and parts[-3:] == ("repro", "core", "rng.py")

    def suppressed(self, line: int, code: str) -> bool:
        disabled = self.pragmas.get(line)
        if disabled is None:
            return False
        return "*" in disabled or code in disabled


class LintRule:
    """Base class for lint rules.

    Subclasses set ``code`` (``"R00x"``), ``name``, and ``description``
    and implement :meth:`check`.
    """

    code: str = "R000"
    name: str = "abstract-rule"
    description: str = ""

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            code=self.code,
            message=message,
        )


def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        codes = m.group(1)
        if codes is None:
            pragmas[lineno] = {"*"}
        else:
            pragmas[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return pragmas


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(part in EXCLUDED_DIRS for part in parts):
                continue
            if any(part.endswith(EXCLUDED_SUFFIXES) for part in parts):
                continue
            yield candidate


def lint_file(
    path: Path,
    rules: Sequence[LintRule],
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Apply ``rules`` to one file; returns unsuppressed findings."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display_path or str(path),
                line=exc.lineno or 1,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        display_path=display_path or str(path),
        source=source,
        pragmas=_parse_pragmas(source),
    )
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(tree, ctx):
            if not ctx.suppressed(finding.line, finding.code):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` with ``rules``.

    Returns findings sorted by (path, line, code).
    """
    if rules is None:
        from .rules import all_rules

        rules = all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules, display_path=str(path)))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def format_findings(findings: Iterable[Finding]) -> str:
    return "\n".join(f.format() for f in findings)


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    print_findings: bool = True,
) -> int:
    """Lint ``paths`` and return a process exit code (0 clean, 1 dirty)."""
    findings = lint_paths(paths, rules)
    if findings and print_findings:
        print(format_findings(findings))
    if print_findings:
        n = len(findings)
        summary = "clean" if n == 0 else f"{n} finding{'s' if n != 1 else ''}"
        print(f"lint: {summary} ({', '.join(paths)})")
    return 1 if findings else 0
