"""Static and runtime correctness tooling for the simulator.

The value of this reproduction is cycle-accurate, *reproducible*
numbers — and reproducibility rests on two families of rules that
ordinary tests don't enforce:

* **Determinism**: every RNG stream must come from
  :func:`repro.core.rng.derive_rng`; no wall-clock, process-salted
  hashing, or unordered-set iteration may feed arbitration.
* **Conservation**: flits, credits, and output-VC ownership obey exact
  accounting laws at every cycle (Sections 5.2 and 6 of the paper live
  or die on buffer/credit bookkeeping).

This package supplies one tool per family:

* :mod:`repro.analysis.lint` — an AST lint pass with simulator-specific
  rules (R001-R005), run as ``python -m repro.cli lint src``;
* :mod:`repro.analysis.sanitizer` — :class:`SimSanitizer`, a
  per-cycle runtime checker wrapping any router (``--sanitize`` on the
  CLI), plus :class:`NetworkSanitizer` for network simulations.

See ``docs/static_analysis.md`` for the rule catalogue and invariants.
"""

from ..core.errors import InvariantViolation, SimulationError, invariant
from .lint import Finding, LintRule, format_findings, lint_paths, run_lint
from .rules import all_rules
from .sanitizer import NetworkSanitizer, SimSanitizer

__all__ = [
    "Finding",
    "LintRule",
    "all_rules",
    "lint_paths",
    "format_findings",
    "run_lint",
    "SimSanitizer",
    "NetworkSanitizer",
    "InvariantViolation",
    "SimulationError",
    "invariant",
]
