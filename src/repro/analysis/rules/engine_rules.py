"""Engine rules R006/R007: the two-phase ``compute`` contract.

The :class:`repro.engine.Component` protocol splits each cycle into a
read phase and a write phase: ``compute(cycle)`` inspects state and
*stages* intents, ``commit(cycle)`` applies them.  The split is what
makes the scheduler free to evaluate components in any order — but only
if ``compute`` really is write-free.  A ``self.foo = ...`` buried in a
compute method reintroduces evaluation-order coupling that no test at
a fixed component count will catch.

R006 enforces the contract syntactically: in any class that defines
*both* ``compute`` and ``commit``, assignments to ``self.*`` inside
``compute`` are flagged unless the attribute is the component's own
``cycle`` stamp or follows the ``_staged*`` naming convention for
staged intents.  Use a ``# lint: disable=R006`` pragma for the rare
deliberate exception.

R007 extends the same discipline to observability: hook emissions
(``*.emit_*`` calls on an :class:`~repro.engine.hooks.EngineHooks`
bus) are externally visible side effects, so firing one from
``compute`` leaks speculative, possibly-to-be-discarded intents to
trace consumers and makes the event stream depend on component
evaluation order.  Emissions must happen in ``commit`` (or in
externally driven entry points such as ``accept``), where the state
they describe is final.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Tuple

from ..lint import FileContext, Finding, LintRule

if TYPE_CHECKING:
    from ..flow.index import ProjectIndex
    from ..flow.summary import MethodSummary

#: Attribute prefix marking staged-intent storage (writable in compute).
_STAGED_PREFIX = "_staged"


def _resolved_computes(
    index: "ProjectIndex",
) -> Iterator[Tuple[str, str, "MethodSummary"]]:
    """``(owner_qual, path, compute_method)`` for every distinct
    ``compute`` that a two-phase class actually runs.

    Iterating classes and resolving along the MRO is what closes the
    per-file blind spot: a class that overrides ``compute`` in one
    module while inheriting ``commit`` from another is still bound.
    Deduplicated by defining method so shared bases report once.
    """
    seen: Set[Tuple[str, str]] = set()
    for qual, _, _ in index.iter_classes():
        if not index.is_two_phase(qual):
            continue
        resolved = index.resolve_method(qual, "compute")
        if resolved is None:
            continue
        owner, method = resolved
        if (owner, "compute") in seen:
            continue
        seen.add((owner, "compute"))
        yield owner, index.classes[owner][0].path, method


def _self_attr_name(node: ast.expr) -> Optional[str]:
    """Attribute name if ``node`` is a write target rooted at
    ``self.<attr>`` (through any subscript chain), else ``None``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _flatten_targets(target: ast.expr) -> List[ast.expr]:
    """Expand tuple/list unpacking targets into leaf targets."""
    if isinstance(target, (ast.Tuple, ast.List)):
        leaves: List[ast.expr] = []
        for elt in target.elts:
            leaves.extend(_flatten_targets(elt))
        return leaves
    if isinstance(target, ast.Starred):
        return _flatten_targets(target.value)
    return [target]


class ComputePhasePurityRule(LintRule):
    """R006: ``compute`` stages intents; it never mutates committed state."""

    code = "R006"
    name = "compute-phase-purity"
    description = (
        "Component.compute must not assign committed state; stage "
        "intents in _staged* attributes and apply them in commit"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            # Only classes speaking the two-phase protocol are bound by
            # it; a lone `compute` helper elsewhere is not a Component.
            if "commit" not in methods:
                continue
            compute = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "compute"
                ),
                None,
            )
            if compute is None:
                continue
            yield from self._check_compute(node, compute, ctx)

    def _check_compute(
        self, cls: ast.ClassDef, compute: ast.FunctionDef, ctx: FileContext
    ) -> Iterator[Finding]:
        for stmt in ast.walk(compute):
            if isinstance(stmt, ast.Assign):
                raw_targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                raw_targets = [stmt.target]
            else:
                continue
            for raw in raw_targets:
                for target in _flatten_targets(raw):
                    name = _self_attr_name(target)
                    if name is None:
                        continue
                    if name == "cycle" or name.startswith(_STAGED_PREFIX):
                        continue
                    yield self.finding(
                        ctx, stmt,
                        f"`{cls.name}.compute` writes `self.{name}`; the "
                        "compute phase only reads state and stages "
                        "intents (`self._staged*`) — apply mutations in "
                        "`commit`",
                    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Index-based form: two-phase membership resolves across
        modules, so a subclass overriding only ``compute`` is bound by
        the ``commit`` it inherits from elsewhere."""
        for owner, path, compute in _resolved_computes(index):
            cls_name = owner.rsplit(".", 1)[-1]
            for write in compute.self_writes:
                name = write.attr
                if name == "cycle" or name.startswith(_STAGED_PREFIX):
                    continue
                yield self.project_finding(
                    path, write.line,
                    f"`{cls_name}.compute` writes `self.{name}`; the "
                    "compute phase only reads state and stages "
                    "intents (`self._staged*`) — apply mutations in "
                    "`commit`",
                )


class HookEmissionPhaseRule(LintRule):
    """R007: hook events fire from ``commit``, never from ``compute``."""

    code = "R007"
    name = "hook-emission-phase"
    description = (
        "Component.compute must not emit hook events (*.emit_* calls); "
        "observability fires from commit, where state is final"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            # Same scoping as R006: only two-phase Components are bound.
            if "commit" not in methods:
                continue
            compute = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "compute"
                ),
                None,
            )
            if compute is None:
                continue
            for call in ast.walk(compute):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr.startswith("emit_")
                ):
                    continue
                yield self.finding(
                    ctx, call,
                    f"`{node.name}.compute` calls `{func.attr}`; hook "
                    "events describe committed state and must be emitted "
                    "from `commit` (or an externally driven entry point), "
                    "never during the speculative compute phase",
                )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Index-based form; same cross-module scoping as R006."""
        for owner, path, compute in _resolved_computes(index):
            cls_name = owner.rsplit(".", 1)[-1]
            for emit in compute.emits:
                yield self.project_finding(
                    path, emit.line,
                    f"`{cls_name}.compute` calls `{emit.event}`; hook "
                    "events describe committed state and must be emitted "
                    "from `commit` (or an externally driven entry point), "
                    "never during the speculative compute phase",
                )


__all__ = ["ComputePhasePurityRule", "HookEmissionPhaseRule"]
