"""Configuration-safety rules: R003 (config mutation) and R004
(mutable defaults).

:class:`repro.core.config.RouterConfig` is a frozen dataclass shared by
reference across routers, harnesses, and worker processes; assigning to
its attributes (or smuggling a write through ``setattr`` /
``object.__setattr__``) would either raise at runtime or, worse,
diverge one reader's view of the configuration.  Derived configurations
go through ``dataclasses.replace`` or ``RouterConfig.with_``.

Mutable default arguments are the classic Python trap: a single list or
dict instance shared across *every* call — state leaking between
supposedly independent simulations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import FileContext, Finding, LintRule

#: Names that identify a configuration object in an attribute chain.
_CONFIG_NAMES = {"config", "cfg", "router_config", "net_config"}

_MUTABLE_FACTORIES = {
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter",
    "bytearray",
}


def _is_config_expr(node: ast.expr) -> bool:
    """True when ``node`` denotes a config object (``config``,
    ``self.config``, ``router.config``, ...)."""
    if isinstance(node, ast.Name):
        return node.id in _CONFIG_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _CONFIG_NAMES
    return False


class ConfigMutationRule(LintRule):
    """R003: never assign to attributes of a (frozen) config object."""

    code = "R003"
    name = "no-config-mutation"
    description = (
        "attribute assignment on a frozen RouterConfig; use "
        "dataclasses.replace / config.with_(...)"
    )

    _MESSAGE = (
        "mutation of frozen config `{expr}`; build a new one with "
        "dataclasses.replace / config.with_(...)"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and _is_config_expr(
                        target.value
                    ):
                        yield self.finding(
                            ctx, node,
                            self._MESSAGE.format(expr=ast.unparse(target)),
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and _is_config_expr(
                        target.value
                    ):
                        yield self.finding(
                            ctx, node,
                            self._MESSAGE.format(expr=ast.unparse(target)),
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_setattr(ctx, node)

    def _check_setattr(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        is_setattr = isinstance(func, ast.Name) and func.id == "setattr"
        is_object_setattr = (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        if not (is_setattr or is_object_setattr) or not node.args:
            return
        if _is_config_expr(node.args[0]):
            yield self.finding(
                ctx, node,
                self._MESSAGE.format(expr=ast.unparse(node.args[0])),
            )


class MutableDefaultRule(LintRule):
    """R004: no mutable default arguments."""

    code = "R004"
    name = "no-mutable-default"
    description = "mutable default argument shared across calls"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default `{ast.unparse(default)}` in "
                        f"`{node.name}()` is shared across every call; "
                        "default to None and construct inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_FACTORIES
        return False
