"""Structural rule R005: the ``Router`` subclass contract.

Every switch organization extends :class:`repro.routers.base.Router`,
which owns the input banks, the statistics ledger, and the output-VC
ownership table.  Two obligations keep that machinery sound:

* a *direct* subclass of ``Router`` must implement the per-cycle hook —
  either ``step`` itself or the ``_advance`` template hook that the base
  ``step`` drives;
* any subclass in the ``Router`` hierarchy that defines ``__init__``
  must chain ``super().__init__(...)`` so the shared state (banks,
  stats, ledger) is actually constructed.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..lint import FileContext, Finding, LintRule

if TYPE_CHECKING:
    from ..flow.index import ProjectIndex

#: Hooks that satisfy the "implements the per-cycle step" obligation.
_STEP_HOOKS = {"step", "_advance"}


def _base_name(node: ast.expr) -> str:
    """Textual name of a base-class expression (``Router``,
    ``base.Router`` -> ``"Router"``; subscripts/calls -> ``""``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _calls_super_init(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "__init__"
            and isinstance(callee.value, ast.Call)
            and isinstance(callee.value.func, ast.Name)
            and callee.value.func.id == "super"
        ):
            return True
        # Explicit form: Router.__init__(self, ...)
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "__init__"
            and _base_name(callee.value).endswith("Router")
        ):
            return True
    return False


class RouterSubclassRule(LintRule):
    """R005: Router subclasses implement the step hook and chain init."""

    code = "R005"
    name = "router-subclass-contract"
    description = (
        "Router subclasses must implement step/_advance and call "
        "super().__init__()"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [_base_name(b) for b in node.bases]
            direct_router_child = "Router" in base_names
            in_router_family = any(
                name == "Router" or name.endswith("Router")
                for name in base_names
            )
            if not in_router_family:
                continue

            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if direct_router_child and not (_STEP_HOOKS & methods.keys()):
                yield self.finding(
                    ctx, node,
                    f"Router subclass `{node.name}` defines neither "
                    "`step` nor `_advance`; the organization would "
                    "inherit a cycle loop that moves nothing",
                )
            init = methods.get("__init__")
            if (
                isinstance(init, ast.FunctionDef)
                and not _calls_super_init(init)
            ):
                yield self.finding(
                    ctx, init,
                    f"`{node.name}.__init__` never calls "
                    "`super().__init__()`; input banks, stats, and the "
                    "VC ledger would be left unconstructed",
                )

    # -- whole-program form --------------------------------------------

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Index-based form: family membership comes from the resolved
        MRO, so a subclass two modules and one rename away from
        ``Router`` (the per-file rule's blind spot) is still bound by
        the contract."""
        for qual, summary, cls in index.iter_classes():
            if not index.is_router_family(qual):
                continue
            if self._is_direct_router_child(index, summary.module, cls.bases):
                if not (_STEP_HOOKS & set(cls.methods)):
                    yield self.project_finding(
                        summary.path, cls.line,
                        f"Router subclass `{cls.name}` defines neither "
                        "`step` nor `_advance`; the organization would "
                        "inherit a cycle loop that moves nothing",
                    )
            init = cls.methods.get("__init__")
            if init is not None and not init.calls_super_init and not any(
                base.rsplit(".", 1)[-1].endswith("Router")
                or index.resolve_class(base, summary.module) is not None
                for base in init.explicit_init_bases
            ):
                yield self.project_finding(
                    summary.path, init.line,
                    f"`{cls.name}.__init__` never calls "
                    "`super().__init__()`; input banks, stats, and the "
                    "VC ledger would be left unconstructed",
                )

    @staticmethod
    def _is_direct_router_child(
        index: "ProjectIndex", module: str, bases: "list[str]"
    ) -> bool:
        for base in bases:
            resolved = index.resolve_class(base, module)
            simple = (resolved or base).rsplit(".", 1)[-1]
            if simple == "Router":
                return True
        return False


__all__ = ["RouterSubclassRule"]
