"""Structural rule R005: the ``Router`` subclass contract.

Every switch organization extends :class:`repro.routers.base.Router`,
which owns the input banks, the statistics ledger, and the output-VC
ownership table.  Two obligations keep that machinery sound:

* a *direct* subclass of ``Router`` must implement the per-cycle hook —
  either ``step`` itself or the ``_advance`` template hook that the base
  ``step`` drives;
* any subclass in the ``Router`` hierarchy that defines ``__init__``
  must chain ``super().__init__(...)`` so the shared state (banks,
  stats, ledger) is actually constructed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import FileContext, Finding, LintRule

#: Hooks that satisfy the "implements the per-cycle step" obligation.
_STEP_HOOKS = {"step", "_advance"}


def _base_name(node: ast.expr) -> str:
    """Textual name of a base-class expression (``Router``,
    ``base.Router`` -> ``"Router"``; subscripts/calls -> ``""``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _calls_super_init(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "__init__"
            and isinstance(callee.value, ast.Call)
            and isinstance(callee.value.func, ast.Name)
            and callee.value.func.id == "super"
        ):
            return True
        # Explicit form: Router.__init__(self, ...)
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "__init__"
            and _base_name(callee.value).endswith("Router")
        ):
            return True
    return False


class RouterSubclassRule(LintRule):
    """R005: Router subclasses implement the step hook and chain init."""

    code = "R005"
    name = "router-subclass-contract"
    description = (
        "Router subclasses must implement step/_advance and call "
        "super().__init__()"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [_base_name(b) for b in node.bases]
            direct_router_child = "Router" in base_names
            in_router_family = any(
                name == "Router" or name.endswith("Router")
                for name in base_names
            )
            if not in_router_family:
                continue

            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if direct_router_child and not (_STEP_HOOKS & methods.keys()):
                yield self.finding(
                    ctx, node,
                    f"Router subclass `{node.name}` defines neither "
                    "`step` nor `_advance`; the organization would "
                    "inherit a cycle loop that moves nothing",
                )
            init = methods.get("__init__")
            if (
                isinstance(init, ast.FunctionDef)
                and not _calls_super_init(init)
            ):
                yield self.finding(
                    ctx, init,
                    f"`{node.name}.__init__` never calls "
                    "`super().__init__()`; input banks, stats, and the "
                    "VC ledger would be left unconstructed",
                )


__all__ = ["RouterSubclassRule"]
