"""Determinism rules: R001 (direct random) and R002 (nondeterminism).

Reproducibility is the simulator's core contract: the same seed must
produce the same latency numbers in any process on any platform.  Two
classes of code break it silently:

* drawing from the *global* :mod:`random` module (or constructing ad
  hoc ``random.Random`` instances), which bypasses the per-component
  streams of :func:`repro.core.rng.derive_rng`;
* consulting state that varies across runs — the wall clock, the
  process-salted builtin ``hash``, ``os.urandom``/``uuid4``, or the
  iteration order of a ``set`` feeding an ordered decision such as
  arbitration.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..lint import FileContext, Finding, LintRule

#: Module-level attributes whose *call* is wall-clock or process-salted.
_FORBIDDEN_CALLS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
    "os": {"urandom", "getpid"},
    "uuid": {"uuid1", "uuid4"},
}


def _attr_root(node: ast.expr) -> str:
    """Leftmost name of an attribute chain (``a.b.c`` -> ``"a"``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


class DirectRandomRule(LintRule):
    """R001: all randomness must come from ``repro.core.rng.derive_rng``.

    Flags ``import random`` / ``from random import ...`` and any
    attribute use of the ``random`` module (``random.Random(...)``,
    ``random.random()``, ``random.seed(...)``, ...) outside
    ``repro/core/rng.py``.  Modules that only need the stream *type*
    for annotations import :data:`repro.core.rng.Rng` instead.
    """

    code = "R001"
    name = "no-direct-random"
    description = (
        "direct use of the `random` module outside repro.core.rng; "
        "derive per-component streams with derive_rng (annotate with Rng)"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_rng_module:
            return
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        aliases.add(alias.asname or alias.name.split(".")[0])
                        yield self.finding(
                            ctx, node,
                            "import of the global `random` module; use "
                            "repro.core.rng.derive_rng for streams "
                            "(or the Rng type alias for annotations)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    names = ", ".join(a.name for a in node.names)
                    yield self.finding(
                        ctx, node,
                        f"`from random import {names}`; use "
                        "repro.core.rng.derive_rng instead",
                    )
        if not aliases:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id in aliases and node.attr != "Random":
                    # random.Random in *annotations* is tolerated once the
                    # import itself is flagged; calls like random.random()
                    # or random.seed() get their own finding for locality.
                    yield self.finding(
                        ctx, node,
                        f"call path `{node.value.id}.{node.attr}` draws from "
                        "the shared global RNG; use a derive_rng stream",
                    )


class NondeterminismRule(LintRule):
    """R002: no wall-clock or process-salted state in the simulation.

    Flags calls to ``time.time``/``datetime.now``-style functions,
    builtin ``hash(...)`` (salted per process for ``str``/``bytes``),
    ``os.urandom``/``uuid.uuid4``/``os.getpid``, and iteration over a
    ``set`` literal or ``set(...)`` call (unordered) in ``for`` loops,
    comprehensions, and ``list``/``tuple``/``enumerate`` conversions.
    """

    code = "R002"
    name = "no-nondeterminism"
    description = (
        "wall-clock, process-salted, or unordered-set nondeterminism "
        "in simulation code"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        set_names = self._collect_set_names(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, set_names)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if self._is_unordered_set(iterable, set_names):
                    target = node if isinstance(node, ast.For) else iterable
                    yield self.finding(
                        ctx, target,
                        "iteration over an unordered set; sort first "
                        "(set order must never feed arbitration)",
                    )

    @staticmethod
    def _collect_set_names(tree: ast.Module) -> Set[str]:
        """Names bound to a set literal or ``set()``/``frozenset()`` call.

        Deliberately simple flow-insensitive inference: good enough to
        catch ``seen = set(); ... for x in seen:`` without a type
        checker.  A name later rebound to an ordered value can carry a
        ``# lint: disable=R002`` pragma at the iteration site.
        """
        names: Set[str] = set()
        for node in ast.walk(tree):
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                targets = [node.target]
            else:
                continue
            if NondeterminismRule._is_set_value(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_set_value(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _check_call(
        self, ctx: FileContext, node: ast.Call, set_names: Set[str]
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "hash" and node.args:
                yield self.finding(
                    ctx, node,
                    "builtin hash() is salted per process; use "
                    "repro.core.rng.derive_seed for stable digests",
                )
            elif func.id in ("list", "tuple", "enumerate") and node.args:
                if self._is_unordered_set(node.args[0], set_names):
                    yield self.finding(
                        ctx, node,
                        f"{func.id}() over an unordered set; sort first",
                    )
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if attr in _FORBIDDEN_CALLS.get(module, ()):
                yield self.finding(
                    ctx, node,
                    f"`{module}.{attr}()` is wall-clock/process state; "
                    "simulations must depend only on the seed",
                )

    @staticmethod
    def _is_unordered_set(node: ast.expr, set_names: Set[str]) -> bool:
        if NondeterminismRule._is_set_value(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names
