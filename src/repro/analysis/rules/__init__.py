"""The lint rule catalogue.

===== ==========================  ====================================
Code  Name                        Enforces
===== ==========================  ====================================
R001  no-direct-random            All randomness flows through
                                  :func:`repro.core.rng.derive_rng`
R002  no-nondeterminism           No wall clock, salted ``hash()``, or
                                  unordered-set iteration in the
                                  simulation
R003  no-config-mutation          Frozen ``RouterConfig`` objects are
                                  never assigned to (use
                                  ``dataclasses.replace`` / ``with_``)
R004  no-mutable-default          No mutable default arguments
R005  router-subclass-contract    ``Router`` subclasses implement the
                                  step hook and chain ``__init__``
                                  (cross-module via the project index)
R006  compute-phase-purity        ``Component.compute`` only stages
                                  intents (``self._staged*``); all
                                  mutation happens in ``commit``
R007  hook-emission-phase         Hook events (``*.emit_*``) fire from
                                  ``commit``, never from the
                                  speculative ``compute`` phase
R008  phase-race                  Compute-phase *call chains* stay
                                  pure; ``commit`` never writes another
                                  component's compute-read state
R009  rng-stream-audit            ``derive_rng`` keys are stable and
                                  globally unique; no module-level
                                  streams
R010  serialization-readiness     Component state stays picklable: no
                                  lambdas, generators, open handles,
                                  locks, or bound-method/closure
                                  captures
R011  hook-contract               ``emit_*`` sites match the
                                  ``EngineHooks`` registry (event,
                                  arity, keywords); ``on_*`` handlers
                                  accept the payload
R012  stale-pragma                Every ``# lint: disable`` pragma
                                  suppresses at least one finding
R013  observer-purity             Scheduler probes (``busy``,
                                  ``next_event``) and their call
                                  chains never mutate state or emit
                                  hook events
R014  pattern-purity              ``TrafficPattern.dest`` and
                                  ``Workload.eligible`` probes (and
                                  their call chains) never mutate
                                  state — traffic must not depend on
                                  how often the harness asked
===== ==========================  ====================================

R001-R004 are per-file (and cached by content hash); R005-R014 run
against the whole-program :class:`~repro.analysis.flow.index.
ProjectIndex`.  R005-R007 keep a degraded per-file form for editor
integration and :func:`~repro.analysis.lint.lint_file`.
"""

from __future__ import annotations

from typing import List

from ..lint import LintRule
from .config_rules import ConfigMutationRule, MutableDefaultRule
from .determinism import DirectRandomRule, NondeterminismRule
from .engine_rules import ComputePhasePurityRule, HookEmissionPhaseRule
from .flow_rules import (
    HookContractRule,
    ObserverPurityRule,
    PatternPurityRule,
    PhaseRaceRule,
    RngStreamRule,
    SerializationReadinessRule,
    StalePragmaRule,
)
from .structure import RouterSubclassRule


def all_rules() -> List[LintRule]:
    """Instantiate the full rule catalogue, ordered by code.

    The order is deterministic by construction and verified here so a
    future edit cannot silently perturb output ordering or the cache
    signature.
    """
    rules: List[LintRule] = [
        DirectRandomRule(),
        NondeterminismRule(),
        ConfigMutationRule(),
        MutableDefaultRule(),
        RouterSubclassRule(),
        ComputePhasePurityRule(),
        HookEmissionPhaseRule(),
        PhaseRaceRule(),
        RngStreamRule(),
        SerializationReadinessRule(),
        HookContractRule(),
        StalePragmaRule(),
        ObserverPurityRule(),
        PatternPurityRule(),
    ]
    assert [r.code for r in rules] == sorted(r.code for r in rules)
    return rules


__all__ = [
    "all_rules",
    "DirectRandomRule",
    "NondeterminismRule",
    "ConfigMutationRule",
    "MutableDefaultRule",
    "RouterSubclassRule",
    "ComputePhasePurityRule",
    "HookEmissionPhaseRule",
    "PhaseRaceRule",
    "RngStreamRule",
    "SerializationReadinessRule",
    "HookContractRule",
    "StalePragmaRule",
    "ObserverPurityRule",
    "PatternPurityRule",
]
