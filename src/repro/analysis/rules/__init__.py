"""The lint rule catalogue.

===== ==========================  ====================================
Code  Name                        Enforces
===== ==========================  ====================================
R001  no-direct-random            All randomness flows through
                                  :func:`repro.core.rng.derive_rng`
R002  no-nondeterminism           No wall clock, salted ``hash()``, or
                                  unordered-set iteration in the
                                  simulation
R003  no-config-mutation          Frozen ``RouterConfig`` objects are
                                  never assigned to (use
                                  ``dataclasses.replace`` / ``with_``)
R004  no-mutable-default          No mutable default arguments
R005  router-subclass-contract    ``Router`` subclasses implement the
                                  step hook and chain ``__init__``
R006  compute-phase-purity        ``Component.compute`` only stages
                                  intents (``self._staged*``); all
                                  mutation happens in ``commit``
R007  hook-emission-phase         Hook events (``*.emit_*``) fire from
                                  ``commit``, never from the
                                  speculative ``compute`` phase
===== ==========================  ====================================
"""

from __future__ import annotations

from typing import List

from ..lint import LintRule
from .config_rules import ConfigMutationRule, MutableDefaultRule
from .determinism import DirectRandomRule, NondeterminismRule
from .engine_rules import ComputePhasePurityRule, HookEmissionPhaseRule
from .structure import RouterSubclassRule


def all_rules() -> List[LintRule]:
    """Instantiate the full rule catalogue, ordered by code."""
    return [
        DirectRandomRule(),
        NondeterminismRule(),
        ConfigMutationRule(),
        MutableDefaultRule(),
        RouterSubclassRule(),
        ComputePhasePurityRule(),
        HookEmissionPhaseRule(),
    ]


__all__ = [
    "all_rules",
    "DirectRandomRule",
    "NondeterminismRule",
    "ConfigMutationRule",
    "MutableDefaultRule",
    "RouterSubclassRule",
    "ComputePhasePurityRule",
    "HookEmissionPhaseRule",
]
