"""Whole-program rules R008-R014.

These rules only exist at project scope: they consume the
:class:`~repro.analysis.flow.index.ProjectIndex` — cross-module MRO,
per-method flow summaries, the recovered ``EngineHooks`` registry, and
the runner's pragma-hit ledger — rather than a single parsed module.

* **R008** closes the helper-method hole left by the syntactic R006/
  R007: purity is propagated interprocedurally through ``self.*()``
  call chains rooted at ``compute``, and ``commit`` is checked for
  writes into *other* components' state that some ``compute`` reads
  the same cycle (an evaluation-order race the two-phase split exists
  to prevent).
* **R009** audits ``derive_rng``/``derive_seed`` streams globally:
  duplicate constant keys collapse two logically distinct streams into
  one; keys built from ``id()``/``hash()``/set iteration are not
  stable across runs or processes; module-level streams are shared by
  everything that imports the module — all three break the sharding
  plan's one-stream-per-component invariant.
* **R010** is the static precondition for checkpoint/restore:
  component state must be picklable, so lambdas, generators, open
  handles, locks, and bound-method/closure captures stored on (or
  into) component state are flagged at the assignment site.
* **R011** checks every ``emit_*`` call site against the
  ``EngineHooks`` registry recovered from the indexed source (event
  exists, payload arity and keyword names match), and every ``on_*``
  subscription for a handler whose signature can accept the payload.
* **R012** reports ``lint: disable`` pragmas that suppress nothing —
  stale suppressions hide future regressions at their line.
* **R013** holds the scheduler probes (``busy``/``next_event``) and
  their self-call chains observably pure: the engine may call them any
  number of times per cycle, so a mutating probe breaks the
  cycle/event byte-identity contract.
* **R014** applies the same purity bar to the traffic probes:
  ``TrafficPattern.dest`` (pre-drawn and cached by the sources) and
  ``Workload.eligible`` (polled by fast-forward wake horizons) must
  not mutate state, or generated traffic depends on how often the
  harness asked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from ..lint import Finding, ProjectRule
from ..flow.summary import (
    STAGED_PREFIX,
    EmitSite,
    FileSummary,
    MethodSummary,
    RngSite,
    SubSite,
)

if TYPE_CHECKING:
    from ..flow.index import EventSpec, ProjectIndex


def _class_path(index: "ProjectIndex", qual: str) -> str:
    return index.classes[qual][0].path


def _method_impurity(method: MethodSummary) -> Optional[str]:
    """Why a method is unsafe to run during ``compute``, or ``None``."""
    for w in method.self_writes:
        if w.attr != "cycle" and not w.attr.startswith(STAGED_PREFIX):
            return f"writes `self.{w.attr}`"
    for w in method.cross_writes:
        if w.root:
            return f"writes `{w.root}.{w.attr}`"
    if method.emits:
        return f"emits `{method.emits[0].event}`"
    return None


class PhaseRaceRule(ProjectRule):
    """R008: no mutation or emission reachable from ``compute``, and no
    ``commit`` writes into another component's compute-read state."""

    code = "R008"
    name = "phase-race"
    description = (
        "compute-phase call chains must stay pure (no state writes or "
        "hook emissions through helpers), and commit must not write "
        "another component's compute-read attributes"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        emitted: Set[Tuple[str, int, str]] = set()
        compute_reads = self._compute_read_attrs(index)
        for qual, _, _ in index.iter_classes():
            if not index.is_two_phase(qual):
                continue
            for finding in self._check_compute_chains(index, qual):
                key = (finding.path, finding.line, finding.message)
                if key not in emitted:
                    emitted.add(key)
                    yield finding
            for finding in self._check_commit_writes(
                index, qual, compute_reads
            ):
                key = (finding.path, finding.line, finding.message)
                if key not in emitted:
                    emitted.add(key)
                    yield finding

    # -- compute-chain purity ------------------------------------------

    def _check_compute_chains(
        self, index: "ProjectIndex", qual: str
    ) -> Iterator[Finding]:
        resolved = index.resolve_method(qual, "compute")
        if resolved is None:
            return
        owner, compute = resolved
        path = _class_path(index, owner)
        cls_name = owner.rsplit(".", 1)[-1]
        for call in compute.self_calls:
            reason, chain = self._find_impure(index, qual, call.name, set())
            if reason is None:
                continue
            via = ""
            if len(chain) > 1:
                via = " (via `" + "` -> `".join(chain) + "`)"
            yield self.project_finding(
                path, call.line,
                f"`{cls_name}.compute` calls `self.{call.name}()`, which "
                f"{reason}{via}; the compute phase must stay pure through "
                "its whole call chain — stage the intent and apply it in "
                "`commit`",
            )

    def _find_impure(
        self,
        index: "ProjectIndex",
        qual: str,
        name: str,
        visited: Set[str],
    ) -> Tuple[Optional[str], List[str]]:
        if name in visited or name == "compute":
            return None, []
        visited.add(name)
        resolved = index.resolve_method(qual, name)
        if resolved is None:
            return None, []
        _, method = resolved
        reason = _method_impurity(method)
        if reason is not None:
            return reason, [name]
        for call in method.self_calls:
            deeper, chain = self._find_impure(index, qual, call.name, visited)
            if deeper is not None:
                return deeper, [name] + chain
        return None, []

    # -- commit cross-writes -------------------------------------------

    @staticmethod
    def _compute_read_attrs(index: "ProjectIndex") -> Set[str]:
        """Attributes any resolved ``compute`` reads off ``self``."""
        reads: Set[str] = set()
        for qual, _, _ in index.iter_classes():
            if not index.is_two_phase(qual):
                continue
            resolved = index.resolve_method(qual, "compute")
            if resolved is not None:
                reads.update(resolved[1].self_reads)
        return reads

    def _check_commit_writes(
        self,
        index: "ProjectIndex",
        qual: str,
        compute_reads: Set[str],
    ) -> Iterator[Finding]:
        resolved = index.resolve_method(qual, "commit")
        if resolved is None:
            return
        owner, commit = resolved
        path = _class_path(index, owner)
        cls_name = owner.rsplit(".", 1)[-1]
        for w in commit.cross_writes:
            if not w.root or w.attr not in compute_reads:
                continue
            yield self.project_finding(
                path, w.line,
                f"`{cls_name}.commit` writes `{w.root}.{w.attr}`, an "
                "attribute some `compute` reads the same cycle; commits "
                "racing against other components' reads reintroduce the "
                "evaluation-order coupling the two-phase split removes",
            )


class RngStreamRule(ProjectRule):
    """R009: globally unique, stable ``derive_rng`` stream keys."""

    code = "R009"
    name = "rng-stream-audit"
    description = (
        "derive_rng keys must be stable (no id()/hash()/set iteration) "
        "and globally unique for constant keys; no module-level streams"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        sites: List[Tuple[str, RngSite]] = []
        for summary in index.files.values():
            for site in summary.rng_sites:
                sites.append((summary.path, site))

        const_groups: Dict[Tuple[str, Tuple[str, ...]], List[Tuple[str, RngSite]]]
        const_groups = {}
        for path, site in sites:
            for reason in site.bad:
                yield self.project_finding(
                    path, site.line,
                    f"`{site.func}` key uses {reason}; the key must be "
                    "stable across runs and processes to keep streams "
                    "reproducible",
                )
            if site.func == "derive_rng" and not site.key:
                yield self.project_finding(
                    path, site.line,
                    "`derive_rng` with no key names derives the root "
                    "stream; every component stream needs a distinct key",
                )
            if site.assigned_global:
                yield self.project_finding(
                    path, site.line,
                    "module-level `derive_rng` stream is shared by every "
                    "importer; derive streams inside the component that "
                    "owns them so sharding can keep one stream per "
                    "process",
                )
            if site.key and all(k.startswith("const:") for k in site.key):
                const_groups.setdefault(
                    (site.func, tuple(site.key)), []
                ).append((path, site))

        for (func, key), group in sorted(const_groups.items()):
            if len(group) < 2:
                continue
            locations = sorted((path, site.line) for path, site in group)
            shown = ", ".join(k[len("const:"):] for k in key)
            for path, site in group:
                others = ", ".join(
                    f"{p}:{ln}"
                    for p, ln in locations
                    if (p, ln) != (path, site.line)
                )
                yield self.project_finding(
                    path, site.line,
                    f"duplicate `{func}` key ({shown}) also derived at "
                    f"{others}; identical keys collapse logically "
                    "distinct streams into one correlated sequence",
                )


class SerializationReadinessRule(ProjectRule):
    """R010: component state must survive checkpoint/restore.

    Two sub-checks share the code:

    * *Picklability* — two-phase/router-family classes must not store
      lambdas, generators, open handles, locks, or bound-method/closure
      captures on state.
    * *Snapshot completeness* — any class defining its own
      ``snapshot``/``_snapshot_state`` is an explicit serialization
      entry point: every attribute its ``__init__`` assigns must either
      be read somewhere along the snapshot call chain or be declared in
      ``SNAPSHOT_WIRING`` (live wiring that ``restore`` re-attaches).
      Stub bodies that only ``raise`` opt out, as do snapshots that
      capture ``self.__dict__`` wholesale.
    """

    code = "R010"
    name = "serialization-readiness"
    description = (
        "component classes must not store unpicklable values on state, "
        "and explicit snapshot()/_snapshot_state() methods must capture "
        "(or declare as SNAPSHOT_WIRING) every __init__-assigned "
        "attribute"
    )

    _KIND_LABELS = {
        "lambda": "a lambda",
        "generator": "a generator",
        "open": "an open file handle",
        "lock": "a synchronization primitive",
    }

    #: Method names that make a class an explicit serialization point.
    _ENTRY_POINTS = ("snapshot", "_snapshot_state")

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        yield from self._check_picklability(index)
        yield from self._check_snapshot_completeness(index)

    def _check_picklability(self, index: "ProjectIndex") -> Iterator[Finding]:
        family = {
            qual
            for qual, _, _ in index.iter_classes()
            if index.is_two_phase(qual) or index.is_router_family(qual)
        }
        for qual, summary, cls in index.iter_classes():
            in_family = qual in family
            for mname, method in sorted(cls.methods.items()):
                for w in method.self_writes:
                    if not in_family:
                        continue
                    label = self._unpicklable_label(index, qual, w.kind)
                    if label is None:
                        continue
                    yield self.project_finding(
                        summary.path, w.line,
                        f"`{cls.name}.{mname}` stores {label} in "
                        f"`self.{w.attr}`; component state must stay "
                        "picklable for checkpoint/restore",
                    )
                for w in method.cross_writes:
                    if not w.root:
                        continue
                    label = self._unpicklable_label(index, qual, w.kind)
                    if label is None:
                        continue
                    yield self.project_finding(
                        summary.path, w.line,
                        f"`{cls.name}.{mname}` stores {label} in "
                        f"`{w.root}.{w.attr}`; attaching unpicklable "
                        "callables to another object's state blocks "
                        "checkpoint/restore of that component",
                    )

    def _check_snapshot_completeness(
        self, index: "ProjectIndex"
    ) -> Iterator[Finding]:
        for qual, summary, cls in index.iter_classes():
            entries = [
                cls.methods[name]
                for name in self._ENTRY_POINTS
                if name in cls.methods and not cls.methods[name].raises_only
            ]
            init = cls.methods.get("__init__")
            if not entries or init is None:
                continue
            reads = self._snapshot_reads(index, qual, entries)
            if "__dict__" in reads:
                continue  # wholesale capture — trivially complete
            wiring = self._mro_wiring(index, qual)
            entry_names = " / ".join(f"`{m.name}`" for m in entries)
            seen: Set[str] = set()
            for w in init.self_writes:
                if w.attr in seen or w.attr in reads or w.attr in wiring:
                    continue
                seen.add(w.attr)
                yield self.project_finding(
                    summary.path, w.line,
                    f"`{cls.name}.__init__` assigns `self.{w.attr}` but "
                    f"the serialization entry point ({entry_names}) never "
                    "reads it and no SNAPSHOT_WIRING entry excludes it; "
                    "checkpoint/restore would silently drop this state",
                )

    @staticmethod
    def _snapshot_reads(
        index: "ProjectIndex", qual: str, entries: List[MethodSummary]
    ) -> Set[str]:
        """Attributes read anywhere along the snapshot call chain."""
        reads: Set[str] = set()
        queue = list(entries)
        visited = {m.name for m in entries}
        while queue:
            method = queue.pop()
            reads.update(method.self_reads)
            for call in method.self_calls:
                if call.name in visited:
                    continue
                visited.add(call.name)
                resolved = index.resolve_method(qual, call.name)
                if resolved is not None:
                    queue.append(resolved[1])
        return reads

    @staticmethod
    def _mro_wiring(index: "ProjectIndex", qual: str) -> Set[str]:
        """Union of ``SNAPSHOT_WIRING`` declarations along the MRO."""
        wiring: Set[str] = set()
        chain, _ = index.mro(qual)
        for ancestor in chain:
            entry = index.classes.get(ancestor)
            if entry is not None:
                wiring.update(entry[1].snapshot_wiring)
        return wiring

    def _unpicklable_label(
        self, index: "ProjectIndex", qual: str, kind: str
    ) -> Optional[str]:
        if kind in self._KIND_LABELS:
            return self._KIND_LABELS[kind]
        if kind.startswith("self_call:"):
            name = kind[len("self_call:"):]
            resolved = index.resolve_method(qual, name)
            if resolved is not None and resolved[1].returns_closure:
                return f"a closure (from `self.{name}()`)"
            return None
        if kind.startswith("self_attr:"):
            name = kind[len("self_attr:"):]
            if index.resolve_method(qual, name) is not None:
                return f"a bound method (`self.{name}`)"
            return None
        return None


class HookContractRule(ProjectRule):
    """R011: ``emit_*``/``on_*`` sites match the EngineHooks registry."""

    code = "R011"
    name = "hook-contract"
    description = (
        "emit_* call sites must name a registered EngineHooks event "
        "with matching payload arity/keywords; on_* handlers must "
        "accept the event payload"
    )

    @staticmethod
    def _hooksish(receiver: str) -> bool:
        return "hook" in receiver.lower()

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        registry = index.hooks_registry()
        if not registry:
            return
        for summary in index.files.values():
            for site in summary.emit_sites:
                if site.cls == "EngineHooks":
                    continue
                event = site.event[len("emit_"):]
                spec = registry.get(event)
                if spec is None:
                    if self._hooksish(site.receiver):
                        known = ", ".join(sorted(registry))
                        yield self.project_finding(
                            summary.path, site.line,
                            f"`{site.event}` names no EngineHooks event "
                            f"(registry: {known})",
                        )
                    continue
                if site.has_star:
                    continue
                yield from self._check_arity(summary.path, site, spec)
            for site in summary.sub_sites:
                if site.cls == "EngineHooks":
                    continue
                event = site.event[len("on_"):]
                spec = registry.get(event)
                if spec is None:
                    if self._hooksish(site.receiver):
                        yield self.project_finding(
                            summary.path, site.line,
                            f"`{site.event}` subscribes to no EngineHooks "
                            "event",
                        )
                    continue
                yield from self._check_handler(index, summary, site, spec)

    def _check_arity(
        self, path: str, site: EmitSite, spec: "EventSpec"
    ) -> Iterator[Finding]:
        nargs = site.nargs
        kwnames = site.kwnames
        params = spec.params
        if nargs > spec.max_args:
            yield self.project_finding(
                path, site.line,
                f"`{site.event}` takes at most {spec.max_args} "
                f"argument{'s' if spec.max_args != 1 else ''} "
                f"({', '.join(params)}); this call passes {nargs}",
            )
            return
        unknown = [kw for kw in kwnames if kw not in params]
        if unknown:
            yield self.project_finding(
                path, site.line,
                f"`{site.event}` has no keyword "
                f"`{unknown[0]}` (payload: {', '.join(params)})",
            )
            return
        filled = set(params[:nargs]) | set(kwnames)
        missing = [
            p for p in params[: spec.min_args] if p not in filled
        ]
        if missing:
            yield self.project_finding(
                path, site.line,
                f"`{site.event}` is missing required payload "
                f"argument{'s' if len(missing) != 1 else ''} "
                f"{', '.join(f'`{m}`' for m in missing)}",
            )

    def _check_handler(
        self,
        index: "ProjectIndex",
        summary: FileSummary,
        site: SubSite,
        spec: "EventSpec",
    ) -> Iterator[Finding]:
        want = len(spec.params)
        got: Optional[int] = None
        label = ""
        if site.handler_kind == "lambda":
            if site.handler_vararg:
                return
            got = site.handler_nargs
            label = "lambda handler"
        elif site.handler_kind == "self_method" and site.cls:
            qual = (
                f"{summary.module}.{site.cls}" if summary.module else site.cls
            )
            resolved = index.resolve_method(qual, site.handler_name)
            if resolved is None or resolved[1].has_vararg:
                return
            got = len(resolved[1].params) - resolved[1].n_defaults
            if got <= want <= len(resolved[1].params):
                return
            got = len(resolved[1].params)
            label = f"handler `{site.handler_name}`"
        elif site.handler_kind == "name":
            fn = summary.functions.get(site.handler_name)
            if fn is None or fn.has_vararg:
                return
            got = len(fn.params) - fn.n_defaults
            if got <= want <= len(fn.params):
                return
            got = len(fn.params)
            label = f"handler `{site.handler_name}`"
        else:
            return
        if got == want:
            return
        yield self.project_finding(
            summary.path, site.line,
            f"`{site.event}` delivers {want} "
            f"argument{'s' if want != 1 else ''} "
            f"({', '.join(spec.params)}) but the {label} accepts {got}",
        )


class StalePragmaRule(ProjectRule):
    """R012: a ``lint: disable`` pragma that suppresses nothing."""

    code = "R012"
    name = "stale-pragma"
    description = (
        "a `# lint: disable` pragma must suppress at least one finding; "
        "stale pragmas hide future regressions on their line"
    )
    runs_last = True

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for summary in index.files.values():
            hits = index.rule_hits.get(summary.path, set())
            by_line: Dict[int, Set[str]] = {}
            for line, code in hits:
                by_line.setdefault(line, set()).add(code)
            for line in sorted(summary.pragmas):
                codes = set(summary.pragmas[line])
                if "R012" in codes:
                    # A pragma explicitly acknowledging this rule is the
                    # sanctioned opt-out; reporting it would be circular.
                    continue
                fired = by_line.get(line, set())
                if "*" in codes:
                    if fired:
                        continue
                    yield self.project_finding(
                        summary.path, line,
                        "blanket `# lint: disable` pragma suppresses "
                        "nothing: no rule fires on this line",
                    )
                    continue
                dead = sorted(codes - fired)
                if len(dead) == len(codes):
                    listed = ", ".join(dead)
                    yield self.project_finding(
                        summary.path, line,
                        f"stale pragma: `# lint: disable={listed}` "
                        "suppresses nothing on this line",
                    )


#: Scheduler probe methods on two-phase components: called zero, one,
#: or many times per cycle by the engine (parking, fast-forward horizon
#: computation), so they must be observably side-effect free.
OBSERVER_METHODS = ("busy", "next_event")


def _observer_impurity(
    method: MethodSummary,
) -> Optional[Tuple[str, int]]:
    """Why a method is unsafe as a scheduler probe, with the offending
    line — or ``None``.

    Stricter than :func:`_method_impurity`: probes run outside both
    phases, so even the writes ``compute`` is allowed (``self.cycle``,
    ``self._staged*``) are forbidden here.
    """
    for w in method.self_writes:
        return f"writes `self.{w.attr}`", w.line
    for w in method.cross_writes:
        if w.root:
            return f"writes `{w.root}.{w.attr}`", w.line
    if method.emits:
        return f"emits `{method.emits[0].event}`", method.emits[0].line
    return None


class ObserverPurityRule(ProjectRule):
    """R013: ``busy``/``next_event`` and their call chains stay pure.

    The scheduler calls these probes between cycles — to park idle
    components and to compute the fast-forward horizon — any number of
    times (including zero: the cycle stepper never calls
    ``next_event``).  A probe that mutates state or emits hook events
    makes simulation results depend on *how often the scheduler asked*,
    which breaks the cycle/event byte-identity contract.
    """

    code = "R013"
    name = "observer-purity"
    description = (
        "busy/next_event are scheduler probes called zero or more "
        "times per cycle; they and their self-call chains must not "
        "write state or emit hook events"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        emitted: Set[Tuple[str, int, str]] = set()
        for qual, _, _ in index.iter_classes():
            if not index.is_two_phase(qual):
                continue
            for probe in OBSERVER_METHODS:
                for finding in self._check_probe(index, qual, probe):
                    key = (finding.path, finding.line, finding.message)
                    if key not in emitted:
                        emitted.add(key)
                        yield finding

    def _check_probe(
        self, index: "ProjectIndex", qual: str, probe: str
    ) -> Iterator[Finding]:
        resolved = index.resolve_method(qual, probe)
        if resolved is None:
            return
        owner, method = resolved
        path = _class_path(index, owner)
        cls_name = owner.rsplit(".", 1)[-1]
        direct = _observer_impurity(method)
        if direct is not None:
            reason, line = direct
            yield self.project_finding(
                path, line,
                f"`{cls_name}.{probe}` {reason}; scheduler probes run "
                "outside the compute/commit phases and may be called "
                "any number of times per cycle, so they must be "
                "side-effect free",
            )
        visited: Set[str] = set()
        for call in method.self_calls:
            reason, chain = _find_impure_chain(
                index, qual, call.name, visited
            )
            if reason is None:
                continue
            via = ""
            if len(chain) > 1:
                via = " (via `" + "` -> `".join(chain) + "`)"
            yield self.project_finding(
                path, call.line,
                f"`{cls_name}.{probe}` calls `self.{call.name}()`, "
                f"which {reason}{via}; scheduler probes must stay pure "
                "through their whole call chain",
            )


def _find_impure_chain(
    index: "ProjectIndex",
    qual: str,
    name: str,
    visited: Set[str],
) -> Tuple[Optional[str], List[str]]:
    """First impurity reachable from ``self.<name>()``, with the call
    chain that reaches it — interprocedural, cycle-safe, and stopping
    at the phase methods (they are allowed their own writes and are
    never part of a probe's contract)."""
    if name in visited or name in ("compute", "commit"):
        return None, []
    visited.add(name)
    resolved = index.resolve_method(qual, name)
    if resolved is None:
        return None, []
    _, method = resolved
    direct = _observer_impurity(method)
    if direct is not None:
        return direct[0], [name]
    for call in method.self_calls:
        deeper, chain = _find_impure_chain(index, qual, call.name, visited)
        if deeper is not None:
            return deeper, [name] + chain
    return None, []


#: (family base-class simple name, probe method): implementations of
#: the probe anywhere in the family must be observably pure.
PROBE_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("TrafficPattern", "dest"),
    ("Workload", "eligible"),
)


class PatternPurityRule(ProjectRule):
    """R014: ``TrafficPattern.dest`` / ``Workload.eligible`` stay pure.

    Both are *probe* contracts the harness may invoke a varying number
    of times per simulated cycle: destination draws are pre-drawn and
    cached by the traffic sources (and replayed under both drive
    loops), and workload eligibility feeds the event scheduler's wake
    horizons, which poll it zero or more times per cycle.  An
    implementation that mutates its own state (or emits hook events)
    makes traffic — and therefore results — depend on how often the
    harness asked, breaking seed determinism and the cycle/event
    byte-identity contract.  Drawing from the *passed-in* RNG is the
    sanctioned effect; writing ``self`` is not.
    """

    code = "R014"
    name = "pattern-purity"
    description = (
        "TrafficPattern.dest and Workload.eligible are probes the "
        "harness may call any number of times per cycle; they and "
        "their self-call chains must not mutate state or emit events"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        emitted: Set[Tuple[str, int, str]] = set()
        for qual, summary, cls in index.iter_classes():
            for family, probe in PROBE_FAMILIES:
                method = cls.methods.get(probe)
                if method is None:
                    # Only the class that defines the probe is checked:
                    # inheriting subclasses would re-report the same
                    # method body once per descendant.
                    continue
                if not _in_family(index, qual, family):
                    continue
                for finding in self._check_probe(
                    index, qual, summary.path, probe, method, family
                ):
                    key = (finding.path, finding.line, finding.message)
                    if key not in emitted:
                        emitted.add(key)
                        yield finding

    def _check_probe(
        self,
        index: "ProjectIndex",
        qual: str,
        path: str,
        probe: str,
        method: MethodSummary,
        family: str,
    ) -> Iterator[Finding]:
        cls_name = qual.rsplit(".", 1)[-1]
        direct = _observer_impurity(method)
        if direct is not None:
            reason, line = direct
            yield self.project_finding(
                path, line,
                f"`{cls_name}.{probe}` {reason}; `{family}.{probe}` "
                "implementations may be probed any number of times per "
                "cycle (pre-draw caching, fast-forward horizons), so "
                "they must be side-effect free",
            )
        visited: Set[str] = set()
        for call in method.self_calls:
            reason, chain = _find_impure_chain(
                index, qual, call.name, visited
            )
            if reason is None:
                continue
            via = ""
            if len(chain) > 1:
                via = " (via `" + "` -> `".join(chain) + "`)"
            yield self.project_finding(
                path, call.line,
                f"`{cls_name}.{probe}` calls `self.{call.name}()`, "
                f"which {reason}{via}; `{family}.{probe}` must stay "
                "pure through its whole call chain",
            )


def _in_family(index: "ProjectIndex", qual: str, family: str) -> bool:
    """True when ``qual`` (or an ancestor, internal or external) is
    named ``family`` — the same simple-name family test
    :meth:`ProjectIndex.is_router_family` uses for Router."""
    chain, external = index.mro(qual)
    if any(q.rsplit(".", 1)[-1] == family for q in chain):
        return True
    return any(b.rsplit(".", 1)[-1] == family for b in external)


__all__ = [
    "ObserverPurityRule",
    "PatternPurityRule",
    "PhaseRaceRule",
    "RngStreamRule",
    "SerializationReadinessRule",
    "HookContractRule",
    "StalePragmaRule",
]
