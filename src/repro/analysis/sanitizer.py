"""Runtime simulation sanitizer: per-cycle conservation checking.

``SimSanitizer`` attaches to any :class:`~repro.routers.base.Router`
through its :class:`~repro.engine.hooks.EngineHooks` bus — flit
accept/eject events drive the stream-level contracts checked by
:class:`~repro.harness.validation.CheckedRouter` (conservation by flit
identity, per-packet order, output-VC discipline, output bandwidth),
and the ``cycle_end`` event triggers *structural* invariant checks
against the router's internal state after every cycle.  (The class
still presents the familiar router-wrapper facade, but its ``accept``
/ ``step`` / ``drain_ejected`` are plain delegates: all checking rides
on the hook events, so it works identically whether the router is
stepped standalone or driven — possibly parked — by a
:class:`~repro.engine.scheduler.Scheduler`.)

Structural invariants:

* **flit conservation** — flits accepted equal flits ejected plus flits
  resident in buffers and pipelines (exact for every organization
  except the ACK/NACK shared-buffer crossbar, whose occupancy
  deliberately overcounts speculative copies and is checked as a lower
  bound);
* **buffer-depth bounds** — no bounded flit queue ever exceeds its
  capacity, even if state was mutated behind the ``push`` guard;
* **exclusive output-VC ownership** — every owned (output, VC) entry
  belongs to a packet that still has un-delivered flits, and no packet
  owns two entries;
* **credit conservation** — for every credit counter,
  ``free + held == capacity`` where *held* counts flits buffered
  downstream, flits in flight toward the buffer, and credits in flight
  back to the counter (through the shared credit-return bus, the
  dedicated pipe, or the response delay line).

Violations raise :class:`~repro.core.errors.InvariantViolation`
carrying the cycle, port, and VC, so a credit leak surfaces as
``cycle 812, port 3, VC 1: [credit-conservation] ...`` instead of a
quietly wrong latency curve.

``check_interval`` trades coverage for speed: structural checks run
every N cycles (stream-level checks always run).  See
``benchmarks/test_perf_sanitizer.py`` for the measured overhead.

``NetworkSanitizer`` applies the buffer-bound and link-credit
conservation checks to a whole :class:`~repro.network.netsim.NetworkSimulation`;
it subscribes to the simulation's scheduler-level ``cycle_end`` hook
(enable with ``NetworkSimulation(..., sanitize=True)``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..core.buffers import FlitQueue
from ..core.errors import InvariantViolation
from ..harness.validation import CheckedRouter
from ..routers.base import Router
from ..routers.buffered import BufferedCrossbarRouter
from ..routers.hierarchical import HierarchicalCrossbarRouter
from ..routers.shared_buffer import SharedBufferCrossbarRouter


def _bucket(counts: Dict, key) -> None:
    counts[key] = counts.get(key, 0) + 1


class SimSanitizer(CheckedRouter):
    """Hook-attached invariant checker with a router-wrapper facade."""

    def __init__(self, inner: Router, check_interval: int = 1) -> None:
        if check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        super().__init__(inner)
        self.check_interval = check_interval
        self._since_check = 0
        self.checks_run = 0
        # All interception happens on the router's event bus: stream
        # checks on flit movement, structural checks on cycle end.  The
        # scheduler fires cycle_end even for parked routers, so the
        # check cadence is unchanged by active-set scheduling.
        inner.hooks.on_flit_move(self._on_flit_move)
        inner.hooks.on_cycle_end(self._on_cycle_end)
        # Packet id -> number of accepted flits not yet delivered,
        # backing the stale-ownership check.
        self._live_packets: Dict[int, int] = {}
        # The shared-buffer crossbar's occupancy() overcounts (originals
        # held at the input while copies are in flight), so conservation
        # is an inequality there and an equality everywhere else.
        self._exact_occupancy = not isinstance(
            inner, SharedBufferCrossbarRouter
        )
        # The buffer/counter structure is static, so the addressed lists
        # are built once; per-cycle checks only read occupancies.  The
        # probes hold the underlying deques so the hot loops pay one C
        # len() per queue instead of a Python __len__ dispatch.
        self._queues = list(self._iter_queues(inner))
        self._credit_probes = self._build_credit_probes(inner)
        # Credited queues need no separate depth scan: their counter has
        # capacity == depth and free >= 0, so an overfull queue already
        # fails the credit equality (free + held == capacity).
        covered = (
            {id(entry[-1]) for entry in self._credit_probes[1]}
            if self._credit_probes is not None
            else frozenset()
        )
        self._bounded = [
            (where, port, vc, queue._q, queue.maxlen)
            for where, port, vc, queue in self._queues
            if queue.maxlen is not None and id(queue._q) not in covered
        ]
        # Indexes for the two-phase credit scan (see _scan_credits).
        if self._credit_probes is not None:
            self._entry_by_key = {e[0]: e for e in self._credit_probes[1]}
            self._entry_by_cid = {e[1]: e for e in self._credit_probes[1]}

    # -- hook handlers -------------------------------------------------

    def _on_flit_move(self, kind: str, flit, port: int, cycle: int) -> None:
        if kind == "accept":
            self.record_accept(flit)
            _bucket(self._live_packets, flit.packet_id)
        elif kind == "eject":
            self._check_ejection(flit, cycle)

    def _on_cycle_end(self, cycle: int) -> None:
        self._since_check += 1
        if self._since_check >= self.check_interval:
            self._since_check = 0
            self.check_now()

    # -- delegated operations ------------------------------------------
    # The facade forwards untouched; the hooks above do the checking.

    def accept(self, port: int, flit) -> None:
        self.inner.accept(port, flit)

    def step(self) -> None:
        self.inner.step()

    def drain_ejected(self):
        return self.inner.drain_ejected()

    def _check_ejection(self, flit, cycle: int) -> None:
        super()._check_ejection(flit, cycle)
        remaining = self._live_packets.get(flit.packet_id, 0) - 1
        if remaining <= 0:
            self._live_packets.pop(flit.packet_id, None)
        else:
            self._live_packets[flit.packet_id] = remaining

    def assert_drained(self) -> None:
        super().assert_drained()
        self.check_now()

    # -- structural invariants -----------------------------------------

    def check_now(self) -> None:
        """Run every structural check against the current router state."""
        router = self.inner
        cycle = router.cycle
        self._check_flit_conservation(router, cycle)
        self._check_buffer_bounds(router, cycle)
        self._check_vc_ownership(router, cycle)
        self._check_credits(router, cycle)
        self.checks_run += 1

    def _check_flit_conservation(self, router: Router, cycle: int) -> None:
        live = router.stats.flits_accepted - router.stats.flits_ejected
        occupancy = router.occupancy()
        if self._exact_occupancy:
            if occupancy != live:
                raise InvariantViolation(
                    "flit conservation violated: accepted - ejected != "
                    "flits resident in the router",
                    cycle=cycle,
                    check="flit-conservation",
                    accepted=router.stats.flits_accepted,
                    ejected=router.stats.flits_ejected,
                    occupancy=occupancy,
                )
        elif occupancy < live:
            raise InvariantViolation(
                "flit conservation violated: more live flits than the "
                "router's (overcounting) occupancy",
                cycle=cycle,
                check="flit-conservation",
                accepted=router.stats.flits_accepted,
                ejected=router.stats.flits_ejected,
                occupancy=occupancy,
            )

    def _check_buffer_bounds(self, router: Router, cycle: int) -> None:
        for where, port, vc, q, maxlen in self._bounded:
            if len(q) > maxlen:
                raise InvariantViolation(
                    f"buffer depth exceeded in {where}: "
                    f"{len(q)} flits in a {maxlen}-deep queue",
                    cycle=cycle,
                    port=port,
                    vc=vc,
                    check="buffer-bounds",
                )

    @staticmethod
    def _iter_queues(
        router: Router,
    ) -> Iterator[Tuple[str, int, "int | None", FlitQueue]]:
        """Every bounded flit queue with a (label, port, vc) address."""
        for i, bank in enumerate(router.inputs):
            for vc, queue in enumerate(bank.queues):
                yield f"input buffer [{i}]", i, vc, queue
        if isinstance(router, BufferedCrossbarRouter):
            for i, row in enumerate(router.crosspoints):
                for j, bank in enumerate(row):
                    for vc, queue in enumerate(bank.queues):
                        yield f"crosspoint [{i}][{j}]", i, vc, queue
        elif isinstance(router, SharedBufferCrossbarRouter):
            for i, row in enumerate(router.crosspoints):
                for j, queue in enumerate(row):
                    yield f"shared crosspoint [{i}][{j}]", i, None, queue
        elif isinstance(router, HierarchicalCrossbarRouter):
            for r in range(router.num_sub):
                for c in range(router.num_sub):
                    sub = router.sub[r][c]
                    for lane, bank in enumerate(sub.in_bufs):
                        for vc, queue in enumerate(bank.queues):
                            yield (
                                f"subswitch ({r},{c}) in lane {lane}",
                                lane, vc, queue,
                            )
                    for lane, bank in enumerate(sub.out_bufs):
                        for vc, queue in enumerate(bank.queues):
                            yield (
                                f"subswitch ({r},{c}) out lane {lane}",
                                lane, vc, queue,
                            )

    def _check_vc_ownership(self, router: Router, cycle: int) -> None:
        seen: Dict[int, Tuple[int, int]] = {}
        for out, state in enumerate(router.output_vcs):
            for vc, owner in enumerate(state.owners):
                if owner is None:
                    continue
                if self._live_packets.get(owner, 0) <= 0:
                    raise InvariantViolation(
                        f"output VC owned by packet {owner}, which has "
                        "no undelivered flits (stale ownership)",
                        cycle=cycle,
                        port=out,
                        vc=vc,
                        check="vc-ownership",
                        owner=owner,
                    )
                prior = seen.get(owner)
                if prior is not None:
                    raise InvariantViolation(
                        f"packet {owner} owns two output VCs at once: "
                        f"(out {prior[0]}, VC {prior[1]}) and "
                        f"(out {out}, VC {vc})",
                        cycle=cycle,
                        port=out,
                        vc=vc,
                        check="vc-ownership",
                        owner=owner,
                    )
                seen[owner] = (out, vc)

    # -- credit conservation -------------------------------------------

    @staticmethod
    def _build_credit_probes(router: Router):
        """Flatten the static (address, counter, queue) credit topology.

        Each entry is ``(key, cid, i, j, vc, counter, deque)`` pairing
        a credit counter with the downstream queue it guards, so the
        per-cycle loop is a flat scan with O(1) lookups into the
        in-flight buckets; ``key`` is a flattened integer address and
        ``cid`` the counter's ``id()``, both precomputed to avoid a
        tuple allocation and an ``id()`` call per counter per cycle.
        """
        if isinstance(router, BufferedCrossbarRouter):
            k, v = router.config.radix, router.config.num_vcs
            return "buffered", [
                ((i * k + j) * v + vc, id(router._credits[i][j][vc]),
                 i, j, vc, router._credits[i][j][vc],
                 router.crosspoints[i][j][vc]._q)
                for i in range(k) for j in range(k) for vc in range(v)
            ]
        if isinstance(router, SharedBufferCrossbarRouter):
            k = router.config.radix
            return "shared", [
                (i * k + j, id(router._credits[i][j]), i, j, None,
                 router._credits[i][j], router.crosspoints[i][j]._q)
                for i in range(k) for j in range(k)
            ]
        if isinstance(router, HierarchicalCrossbarRouter):
            k, v = router.config.radix, router.config.num_vcs
            p = router.config.subswitch_size
            return "hierarchical", [
                ((i * router.num_sub + col) * v + vc,
                 id(router._in_credits[i][col][vc]), i, col, vc,
                 router._in_credits[i][col][vc],
                 router.sub[i // p][col].in_bufs[i % p][vc]._q)
                for i in range(k) for col in range(router.num_sub)
                for vc in range(v)
            ]
        return None

    def _check_credits(self, router: Router, cycle: int) -> None:
        if self._credit_probes is None:
            return
        kind, entries = self._credit_probes
        if kind == "buffered":
            self._check_buffered_credits(router, cycle, entries)
        elif kind == "shared":
            self._check_shared_credits(router, cycle, entries)
        else:
            self._check_hierarchical_credits(router, cycle, entries)

    @staticmethod
    def _injector_sinks(router: Router) -> List:
        """Credits held by a fault injector awaiting resync.

        An injected credit loss leaves the counter un-restored while
        the flit is long gone from the downstream buffer; the injector's
        ledger is the missing ``held`` term, so counting it keeps the
        conservation equality exact under injected loss (a *real* leak
        still trips the check).
        """
        injector = getattr(router, "fault_injector", None)
        if injector is None:
            return []
        return injector.pending_credit_sinks()

    @staticmethod
    def _pending_restores(sinks) -> Dict[int, int]:
        """Bucket in-flight ``counter.restore`` callbacks by counter."""
        pending: Dict[int, int] = {}
        for sink in sinks:
            owner = getattr(sink, "__self__", None)
            if owner is not None:
                _bucket(pending, id(owner))
        return pending

    def _credit_violation(
        self, cycle, i, j, vc, counter, held, where
    ) -> InvariantViolation:
        return InvariantViolation(
            f"credit conservation violated at {where}: "
            f"{counter.free} free + {held} held != "
            f"{counter.capacity} capacity "
            f"({'leak' if counter.free + held < counter.capacity else 'surplus'})",
            cycle=cycle,
            port=i,
            vc=vc,
            check="credit-conservation",
            output=j,
            free=counter.free,
            held=held,
            capacity=counter.capacity,
        )

    def _scan_credits(
        self, entries, inflight, pending, cycle, where
    ) -> None:
        """Two-phase conservation check over all credit probe entries.

        Phase one scans every counter assuming nothing is in flight
        (``counter._free`` is read directly: a property call per counter
        per cycle is measurable at radix 16).  Any mismatch — a real
        violation or just traffic on the wing — lands in ``suspects``.
        Phase two re-verifies the suspects plus every entry the
        in-flight buckets actually touch, with the full ``held`` sum.
        The dict lookups therefore scale with the flits in flight, not
        with the k*k*v counters.
        """
        suspects = {}
        for entry in entries:
            counter = entry[5]
            if counter._free + len(entry[6]) != counter.capacity:
                suspects[entry[0]] = entry
        if inflight or pending:
            by_key, by_cid = self._entry_by_key, self._entry_by_cid
            for key in inflight:
                suspects[key] = by_key[key]
            for cid in pending:
                entry = by_cid.get(cid)
                if entry is not None:
                    suspects[entry[0]] = entry
        for key, cid, i, j, vc, counter, q in suspects.values():
            held = len(q) + inflight.get(key, 0) + pending.get(cid, 0)
            if counter._free + held != counter.capacity:
                raise self._credit_violation(
                    cycle, i, j, vc, counter, held, where(i, j)
                )

    def _check_buffered_credits(
        self, router: BufferedCrossbarRouter, cycle: int, entries
    ) -> None:
        k, v = router.config.radix, router.config.num_vcs
        inflight: Dict[int, int] = {}
        for flit, i, j in router._to_crosspoint.items():
            _bucket(inflight, (i * k + j) * v + flit.vc)
        sinks: List = []
        if router._credit_pipes is not None:
            for pipe in router._credit_pipes:
                sinks.extend(pipe.pending_sinks())
        elif router._credit_buses is not None:
            for bus in router._credit_buses:
                sinks.extend(bus.pending_sinks())
        sinks.extend(self._injector_sinks(router))
        pending = self._pending_restores(sinks)
        self._scan_credits(
            entries, inflight, pending, cycle,
            lambda i, j: f"crosspoint ({i},{j})",
        )

    def _check_shared_credits(
        self, router: SharedBufferCrossbarRouter, cycle: int, entries
    ) -> None:
        k = router.config.radix
        inflight: Dict[int, int] = {}
        for _flit, i, j in router._to_crosspoint.items():
            _bucket(inflight, i * k + j)
        pending: Dict[int, int] = {}
        for counter in router._credit_return.items():
            _bucket(pending, id(counter))
        self._scan_credits(
            entries, inflight, pending, cycle,
            lambda i, j: f"shared crosspoint ({i},{j})",
        )

    def _check_hierarchical_credits(
        self, router: HierarchicalCrossbarRouter, cycle: int, entries
    ) -> None:
        v = router.config.num_vcs
        inflight: Dict[int, int] = {}
        for flit, i, col in router._to_sub.items():
            _bucket(inflight, (i * router.num_sub + col) * v + flit.vc)
        sinks = router._credit_pipe.pending_sinks()
        sinks.extend(self._injector_sinks(router))
        pending = self._pending_restores(sinks)
        self._scan_credits(
            entries, inflight, pending, cycle,
            lambda i, col: f"subswitch input buffer (input {i}, "
                           f"column {col})",
        )


class NetworkSanitizer:
    """Per-cycle structural checks over a whole network simulation.

    Verifies, for every inter-router link, that the upstream credit
    counters, the downstream input-buffer occupancy, the flits in
    flight on the channel, and the credits in flight on the return path
    always sum to the buffer capacity — and that no input buffer ever
    exceeds its depth.  Subscribes to the simulation's scheduler-level
    ``cycle_end`` hook, so checks run once per simulated cycle without
    the simulation loop knowing about the sanitizer.  Constructed by
    ``NetworkSimulation(..., sanitize=True)``.
    """

    def __init__(self, sim, check_interval: int = 1) -> None:
        if check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self.sim = sim
        self.check_interval = check_interval
        self._since_check = 0
        self.checks_run = 0
        hooks = getattr(sim, "hooks", None)
        if hooks is not None:
            hooks.on_cycle_end(self.check)
        # (name, out port, link, downstream router, downstream port)
        # for every credited (router-to-router) link.
        self._links: List[Tuple[str, int, object, object, int]] = []
        for sid, router in sim.routers.items():
            for port, link in enumerate(router.links):
                if link is None or link.credits is None:
                    continue
                target = getattr(link.deliver, "target", None)
                tport = getattr(link.deliver, "port", None)
                if target is None or tport is None:
                    continue
                self._links.append((str(sid), port, link, target, tport))

    def check(self, cycle: int) -> None:
        """Called once per simulated cycle; honours ``check_interval``."""
        self._since_check += 1
        if self._since_check >= self.check_interval:
            self._since_check = 0
            self.check_now(cycle)

    def check_now(self, cycle: int) -> None:
        sim = self.sim
        for sid, router in sim.routers.items():
            for port, bank in enumerate(router.inputs):
                for vc, queue in enumerate(bank.queues):
                    if queue.maxlen is not None and len(queue) > queue.maxlen:
                        raise InvariantViolation(
                            f"input buffer of router {sid} exceeded its "
                            f"depth: {len(queue)} > {queue.maxlen}",
                            cycle=cycle,
                            port=port,
                            vc=vc,
                            check="buffer-bounds",
                        )
        # Flits in flight on channels: (downstream, port, vc) -> count.
        inflight: Dict[Tuple[int, int, int], int] = {}
        for _arrival, _seq, flit, target in sim._inflight:
            if isinstance(target, tuple):
                router, port = target
                _bucket(inflight, (id(router), port, flit.vc))
        # Credits in flight on return paths: (link, vc) -> count.
        pending: Dict[Tuple[int, int], int] = {}
        for router in sim.routers.values():
            for sink, vc in router._credit_out.items():
                link = getattr(sink, "link", None)
                if link is not None:
                    _bucket(pending, (id(link), vc))
        # Credits claimed by the fault injector count as in flight until
        # the resync timeout re-delivers them (injected loss must not
        # read as a leak; a real leak still trips the check).
        injector = getattr(sim, "_faults", None)
        if injector is not None:
            for sink, vc in injector.pending_credits():
                link = getattr(sink, "link", None)
                if link is not None:
                    _bucket(pending, (id(link), vc))
        for name, port, link, target, tport in self._links:
            for vc, counter in enumerate(link.credits):
                held = (
                    len(target.inputs[tport][vc])
                    + inflight.get((id(target), tport, vc), 0)
                    + pending.get((id(link), vc), 0)
                )
                if counter.free + held != counter.capacity:
                    raise InvariantViolation(
                        f"link credit conservation violated on router "
                        f"{name} port {port}: {counter.free} free + "
                        f"{held} held != {counter.capacity} capacity",
                        cycle=cycle,
                        port=port,
                        vc=vc,
                        check="credit-conservation",
                        router=name,
                        free=counter.free,
                        held=held,
                        capacity=counter.capacity,
                    )
        self.checks_run += 1


__all__ = ["SimSanitizer", "NetworkSanitizer"]
