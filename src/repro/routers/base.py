"""Common scaffolding for the single-router (switch-level) models.

All four switch organizations evaluated in the paper — the low-radix
centralized baseline, the high-radix distributed-allocator baseline,
the fully buffered crossbar, and the hierarchical crossbar — share the
same external contract:

* flits enter per-VC input buffers via :meth:`Router.accept` (guarded
  by :meth:`Router.input_space`, which upstream logic treats as a
  credit count);
* :meth:`Router.step` advances one clock cycle;
* flits that complete switch traversal appear in :attr:`Router.ejected`
  as ``(flit, eject_cycle)`` pairs, which the harness drains.

Timing convention: a grant at cycle ``t`` occupies the granted input
and output resources for ``config.flit_cycles`` cycles (the paper's
four-cycle switch traversal) and the flit is ejected at
``t + flit_cycles``.  Output virtual channels are owned from the head
flit's allocation until the tail flit finishes traversal, at which
point the VC is freed for the next packet ("upon the transmission of
the tail flit ... the virtual channel is freed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.buffers import VcBufferBank
from ..core.config import RouterConfig
from ..core.flit import Flit
from ..core.pipeline import BusyTracker, DelayLine
from ..core.vcstate import OutputVcState


@dataclass
class RouterStats:
    """Event counters accumulated over a simulation run."""

    flits_accepted: int = 0
    flits_ejected: int = 0
    packets_ejected: int = 0
    switch_grants: int = 0
    switch_denials: int = 0
    spec_vc_failures: int = 0
    wasted_output_cycles: int = 0
    credit_bus_conflicts: int = 0
    nacks: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[name] = self.extra.get(name, 0) + amount


class Router:
    """Base class: per-VC input buffers, ejection pipeline, VC ledgers."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.cycle = 0
        k, v = config.radix, config.num_vcs
        self.inputs: List[VcBufferBank] = [
            VcBufferBank(v, config.input_buffer_depth) for _ in range(k)
        ]
        self.output_vcs: List[OutputVcState] = [OutputVcState(v) for _ in range(k)]
        self.input_busy = BusyTracker(k)
        self.output_busy = BusyTracker(k)
        self.stats = RouterStats()
        self.ejected: List[Tuple[Flit, int]] = []
        # Flits in flight across the switch: (flit, out_port) maturing
        # at grant_cycle + flit_cycles.
        self._ejecting: DelayLine[Tuple[Flit, int]] = DelayLine(config.flit_cycles)
        # Output VC releases pending tail-flit traversal completion.
        self._vc_release: DelayLine[Tuple[int, int, int]] = DelayLine(
            config.flit_cycles
        )

    # ------------------------------------------------------------------
    # External interface
    # ------------------------------------------------------------------

    def input_space(self, port: int, vc: int) -> int:
        """Free slots in input buffer (port, vc): the upstream credit count."""
        return self.inputs[port][vc].free_slots

    def accept(self, port: int, flit: Flit) -> None:
        """Deliver a flit into input buffer (port, flit.vc).

        The caller must have checked :meth:`input_space`; overflowing
        raises (credit protocol violation).
        """
        flit.injected_at = self.cycle
        self.inputs[port][flit.vc].push(flit)
        self.stats.flits_accepted += 1

    def step(self) -> None:
        """Advance one cycle: mature pipelines, then run the datapath."""
        self._mature()
        self._advance()
        self.cycle += 1

    def drain_ejected(self) -> List[Tuple[Flit, int]]:
        """Return and clear the flits delivered since the last drain."""
        out = self.ejected
        self.ejected = []
        return out

    def occupancy(self) -> int:
        """Flits resident anywhere inside the router."""
        buffered = sum(bank.occupancy() for bank in self.inputs)
        return buffered + len(self._ejecting) + self._extra_occupancy()

    def idle(self) -> bool:
        """True when no flit is buffered or in flight inside the router."""
        return self.occupancy() == 0

    # ------------------------------------------------------------------
    # Shared mechanics for subclasses
    # ------------------------------------------------------------------

    def _mature(self) -> None:
        """Deliver flits finishing traversal and release output VCs."""
        for flit, out_port in self._ejecting.pop_ready(self.cycle):
            self.ejected.append((flit, self.cycle))
            self.stats.flits_ejected += 1
            if flit.is_tail:
                self.stats.packets_ejected += 1
        for out, vc, pid in self._vc_release.pop_ready(self.cycle):
            self.output_vcs[out].release(vc, pid)

    def _start_traversal(
        self, flit: Flit, out_port: int, start: Optional[int] = None
    ) -> None:
        """Begin switch traversal of ``flit`` toward ``out_port``.

        Reserves the output for ``flit_cycles`` (from ``start``, which
        defaults to the current cycle) and schedules ejection; tail
        flits also schedule the output-VC release.  Subclasses reserve
        input-side resources themselves (the input row for the
        crossbar models, the column bus for the hierarchical model).
        """
        fc = self.config.flit_cycles
        begin = self.cycle if start is None else start
        self.output_busy.extend(out_port, begin + fc)
        self._ejecting.push_at(begin + fc, (flit, out_port))
        self.stats.switch_grants += 1
        if flit.is_tail and flit.out_vc is not None:
            self._vc_release.push_at(
                begin + fc, (out_port, flit.out_vc, flit.packet_id)
            )

    def _extra_occupancy(self) -> int:
        """Flits held in architecture-specific structures (overridden)."""
        return 0

    def _advance(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection / debugging
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"<{type(self).__name__} k={cfg.radix} v={cfg.num_vcs} "
            f"cycle={self.cycle} occupancy={self.occupancy()}>"
        )
