"""Common scaffolding for the single-router (switch-level) models.

All four switch organizations evaluated in the paper — the low-radix
centralized baseline, the high-radix distributed-allocator baseline,
the fully buffered crossbar, and the hierarchical crossbar — share the
same external contract:

* flits enter per-VC input buffers via :meth:`Router.accept` (guarded
  by :meth:`Router.input_space`, which upstream logic treats as a
  credit count);
* :meth:`Router.step` advances one clock cycle;
* flits that complete switch traversal appear in :attr:`Router.ejected`
  as ``(flit, eject_cycle)`` pairs, which the harness drains.

Routers are :class:`repro.engine.Component` objects: a cycle is an
explicit ``compute`` phase (stage matured pipeline entries; commits
nothing) followed by a ``commit`` phase (apply the staged ejections and
VC releases, then run the organization-specific datapath via
``_advance``).  :meth:`Router.step` composes the two phases for
standalone use; the harness drives routers through a
:class:`repro.engine.Scheduler` instead, which parks empty routers
(see :meth:`Router.busy`).

Timing convention: a grant at cycle ``t`` occupies the granted input
and output resources for ``config.flit_cycles`` cycles (the paper's
four-cycle switch traversal) and the flit is ejected at
``t + flit_cycles``.  Output virtual channels are owned from the head
flit's allocation until the tail flit finishes traversal, at which
point the VC is freed for the next packet ("upon the transmission of
the tail flit ... the virtual channel is freed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.buffers import VcBufferBank
from ..core.config import RouterConfig
from ..core.flit import Flit
from ..core.pipeline import BusyTracker, DelayLine
from ..core.vcstate import OutputVcState
from ..engine.component import AlwaysActive, Component
from ..engine.hooks import EngineHooks


@dataclass
class RouterStats:
    """Event counters accumulated over a simulation run."""

    flits_accepted: int = 0
    flits_ejected: int = 0
    packets_ejected: int = 0
    switch_grants: int = 0
    switch_denials: int = 0
    spec_vc_failures: int = 0
    wasted_output_cycles: int = 0
    credit_bus_conflicts: int = 0
    nacks: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[name] = self.extra.get(name, 0) + amount


class Router(Component):
    """Base class: per-VC input buffers, ejection pipeline, VC ledgers."""

    #: Observable pipeline stages, in traversal order, as emitted on the
    #: ``stage_enter`` hook.  ``"RC"`` fires on :meth:`accept` (route
    #: computation begins when the flit arrives) and ``"ST"`` fires when
    #: switch traversal starts (:meth:`_start_traversal`); organizations
    #: with intermediate stages extend this tuple and add emission
    #: points of their own.
    TRACE_STAGES: Tuple[str, ...] = ("RC", "ST")

    #: Construction-time wiring excluded from the generic snapshot (the
    #: frozen config and the fault-injector handle are re-established by
    #: whoever rebuilds the simulation, not deserialized with it).
    SNAPSHOT_WIRING = ("config", "fault_injector")

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.cycle = 0
        self.hooks = EngineHooks()
        k, v = config.radix, config.num_vcs
        self.inputs: List[VcBufferBank] = [
            VcBufferBank(v, config.input_buffer_depth) for _ in range(k)
        ]
        self.output_vcs: List[OutputVcState] = [OutputVcState(v) for _ in range(k)]
        self.input_busy = BusyTracker(k)
        self.output_busy = BusyTracker(k)
        self.stats = RouterStats()
        self.ejected: List[Tuple[Flit, int]] = []
        # Flits in flight across the switch: (flit, out_port) maturing
        # at grant_cycle + flit_cycles.
        self._ejecting: DelayLine[Tuple[Flit, int]] = DelayLine(config.flit_cycles)
        # Output VC releases pending tail-flit traversal completion.
        self._vc_release: DelayLine[Tuple[int, int, int]] = DelayLine(
            config.flit_cycles
        )
        # Per-input activity flags: True while input bank ``i`` may hold
        # flits.  Arbitration loops skip inactive inputs; the flag is
        # set on accept and cleared when the bank drains (see
        # ``_input_emptied``).  Skipping is behavior-neutral because an
        # empty bank yields no candidates and the arbiters never advance
        # their pointers on an empty request set.
        # Per-input activity flags: scan loops skip inputs that are
        # provably empty.  Replaced by AlwaysActive in exhaustive mode.
        self._in_active: Union[List[bool], AlwaysActive] = [False] * k
        self._staged_ejects: Sequence[Tuple[Flit, int]] = ()
        self._staged_releases: Sequence[Tuple[int, int, int]] = ()
        # Fault machinery (repro.faults): wedged input read ports, and
        # the injector handle the sanitizer consults for lost-credit
        # accounting.  Both stay inert unless a FaultPlan is attached.
        self._stuck_inputs: set = set()
        self.fault_injector = None

    # ------------------------------------------------------------------
    # External interface
    # ------------------------------------------------------------------

    def input_space(self, port: int, vc: int) -> int:
        """Free slots in input buffer (port, vc): the upstream credit count."""
        return self.inputs[port][vc].free_slots

    def accept(self, port: int, flit: Flit) -> None:
        """Deliver a flit into input buffer (port, flit.vc).

        The caller must have checked :meth:`input_space`; overflowing
        raises (credit protocol violation).
        """
        flit.injected_at = self.cycle
        self.inputs[port][flit.vc].push(flit)
        self.stats.flits_accepted += 1
        self._in_active[port] = True
        if self.hooks.flit_move:
            self.hooks.emit_flit_move("accept", flit, port, self.cycle)
        if self.hooks.stage_enter:
            self.hooks.emit_stage_enter(flit, "RC", port, self.cycle)

    def compute(self, cycle: int) -> None:
        """Phase 1: collect pipeline entries maturing this cycle."""
        self.cycle = cycle
        self._staged_ejects = self._ejecting.pop_ready(cycle)
        self._staged_releases = self._vc_release.pop_ready(cycle)

    def commit(self, cycle: int) -> None:
        """Phase 2: apply staged ejections/releases, run the datapath."""
        hooks = self.hooks
        for flit, out_port in self._staged_ejects:
            self.ejected.append((flit, cycle))
            self.stats.flits_ejected += 1
            if flit.is_tail:
                self.stats.packets_ejected += 1
            if hooks.flit_move:
                hooks.emit_flit_move("eject", flit, out_port, cycle)
        for out, vc, pid in self._staged_releases:
            self.output_vcs[out].release(vc, pid)
        self._staged_ejects = ()
        self._staged_releases = ()
        self._advance()
        self.cycle = cycle + 1

    def busy(self) -> bool:
        """Parking predicate: False only when stepping would be a no-op.

        Resident flits are counted in O(1) by conservation — every
        flit enters through :meth:`accept` and leaves the datapath
        when its ejection commits — rather than via the O(buffers)
        :meth:`occupancy` scan, since this runs every commit.
        Organizations with extra delayed machinery (credit pipes, ...)
        extend this.
        """
        stats = self.stats
        if stats.flits_accepted > stats.flits_ejected:
            return True
        return bool(self._ejecting or self._vc_release)

    def next_event(self, now: int) -> Optional[int]:
        """Horizon: earliest cycle a delayed mechanism matures.

        Resident flits need the very next cycle (arbitration runs every
        cycle while flits are buffered); otherwise the earliest delay
        line head is the horizon.  Pure read (lint rule R013); see
        :meth:`repro.engine.Component.next_event`.
        """
        if self.stats.flits_accepted > self.stats.flits_ejected:
            return now + 1
        horizon: Optional[int] = None
        for due in (self._ejecting.next_due(), self._vc_release.next_due()):
            if due is not None and (horizon is None or due < horizon):
                horizon = due
        return horizon

    def set_exhaustive(self) -> None:
        """Reference schedule: disable the per-input activity flags."""
        self._in_active = AlwaysActive()

    def drain_ejected(self) -> List[Tuple[Flit, int]]:
        """Return and clear the flits delivered since the last drain."""
        out = self.ejected
        self.ejected = []
        return out

    def occupancy(self) -> int:
        """Flits resident anywhere inside the router."""
        buffered = sum(bank.occupancy() for bank in self.inputs)
        return buffered + len(self._ejecting) + self._extra_occupancy()

    def idle(self) -> bool:
        """True when no flit is buffered or in flight inside the router."""
        return self.occupancy() == 0

    # ------------------------------------------------------------------
    # Shared mechanics for subclasses
    # ------------------------------------------------------------------

    def _input_emptied(self, port: int) -> None:
        """Clear the activity flag if input bank ``port`` just drained."""
        if not self.inputs[port]:
            self._in_active[port] = False

    # ------------------------------------------------------------------
    # Fault support (repro.faults)
    # ------------------------------------------------------------------

    def stick_input(self, port: int, vc: Optional[int] = None) -> None:
        """Wedge the read port of input buffer (port, vc): its flits
        stop draining until :meth:`unstick_input`.  ``vc=None`` wedges
        every VC of the port.  Flits stay buffered (and counted), so
        conservation invariants are unaffected."""
        vcs = range(self.config.num_vcs) if vc is None else (vc,)
        for v in vcs:
            self._stuck_inputs.add((port, v))

    def unstick_input(self, port: int, vc: Optional[int] = None) -> None:
        """Clear a :meth:`stick_input` fault."""
        vcs = range(self.config.num_vcs) if vc is None else (vc,)
        for v in vcs:
            self._stuck_inputs.discard((port, v))

    def _input_stuck(self, port: int, vc: int) -> bool:
        """Stuck-lane predicate.  Eligibility scans inline this test
        (``self._stuck_inputs and (i, vc) in self._stuck_inputs``) to
        keep the fault-free cost at one set-truthiness check; the
        method form exists for injectors and tests."""
        return bool(self._stuck_inputs) and (port, vc) in self._stuck_inputs

    def _start_traversal(
        self, flit: Flit, out_port: int, start: Optional[int] = None
    ) -> None:
        """Begin switch traversal of ``flit`` toward ``out_port``.

        Reserves the output for ``flit_cycles`` (from ``start``, which
        defaults to the current cycle) and schedules ejection; tail
        flits also schedule the output-VC release.  Subclasses reserve
        input-side resources themselves (the input row for the
        crossbar models, the column bus for the hierarchical model).
        """
        fc = self.config.flit_cycles
        begin = self.cycle if start is None else start
        self.output_busy.extend(out_port, begin + fc)
        self._ejecting.push_at(begin + fc, (flit, out_port))
        self.stats.switch_grants += 1
        if flit.is_tail and flit.out_vc is not None:
            self._vc_release.push_at(
                begin + fc, (out_port, flit.out_vc, flit.packet_id)
            )
        if self.hooks.grant:
            self.hooks.emit_grant(flit, out_port, self.cycle)
        if self.hooks.stage_enter:
            # Stamped at ``begin``, not the grant cycle: with an extra
            # grant delay (OVA) the wires are crossed starting at
            # ``begin`` and the stage span must reflect that.
            self.hooks.emit_stage_enter(flit, "ST", out_port, begin)

    def _extra_occupancy(self) -> int:
        """Flits held in architecture-specific structures (overridden)."""
        return 0

    def _advance(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection / debugging
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"<{type(self).__name__} k={cfg.radix} v={cfg.num_vcs} "
            f"cycle={self.cycle} occupancy={self.occupancy()}>"
        )
