"""Virtual-output-queued (VOQ) switch with an iSLIP allocator.

The reference point of Section 8: IP routers avoid head-of-line
blocking by keeping, at every input, "a separate buffer for each
output" and computing a matching each cycle with a centralized
iterative allocator [23].  This achieves ~100% throughput, but

* buffering is O(k^2) at the *inputs* (comparable in size to the fully
  buffered crossbar's crosspoint storage), and
* the allocator is centralized and iterative — "the advantage of the
  fully buffered crossbar compared to a VOQ switch is that there is no
  need for a complex allocator."

Implementation notes: each input keeps a bank of per-VC queues for
every output (k x v queues per input) — plain per-output FIFOs would
let multi-flit packets of different VC classes block one another and
deadlock.  Incoming flits are sorted by destination as they arrive
(route lookup at input).  Each cycle the iSLIP allocator computes a
matching over inputs with ready VOQs and free outputs; a matched input
sends the head flit of a ready VC at the matched output's VOQ bank
(round-robin over VCs).  The head flit of a packet claims its output
VC class exactly as in the other models.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..allocation.islip import IslipAllocator
from ..core.arbiter import RoundRobinArbiter, _np
from ..core.batch import (
    HAVE_NUMPY,
    ArrayBusyTracker,
    QueueArrays,
    mirror_output_vcs,
    mirror_vc_bank,
)
from ..core.errors import invariant
from ..core.buffers import VcBufferBank
from ..core.config import RouterConfig
from ..core.flit import Flit
from .base import Router


class VoqRouter(Router):
    """Input VOQ switch with centralized iSLIP matching (Section 8)."""

    # VOQ sorting and the iSLIP match resolve within the same cycle, so
    # the only observable stages are the base "RC" (arrival) and "ST"
    # (matched flit starts crossing).
    TRACE_STAGES = ("RC", "ST")

    def __init__(self, config: RouterConfig, iterations: int = 2) -> None:
        super().__init__(config)
        k, v = config.radix, config.num_vcs
        self.voqs: List[List[VcBufferBank]] = [
            [VcBufferBank(v, None) for _ in range(k)] for _ in range(k)
        ]
        self._voq_vc_arb = [
            [RoundRobinArbiter(v) for _ in range(k)] for _ in range(k)
        ]
        self._islip = IslipAllocator(k, k, iterations=iterations)
        # Per input: destinations with at least one buffered flit.
        self._occupied: List[set] = [set() for _ in range(k)]
        self._head_delay = config.route_latency
        self._batch = bool(config.batch_hot_path) and HAVE_NUMPY
        if self._batch:
            self._init_batch()

    def _init_batch(self) -> None:
        """Struct-of-arrays mirrors for the batched request gather.

        Only the iSLIP request scan is batched; VOQ sorting, the
        allocator itself, and the transmits keep their scalar form.  See
        ``repro.core.batch`` for the mirroring contract.
        """
        k, v = self.config.radix, self.config.num_vcs
        self._b_voq = QueueArrays(k * k * v)
        for i in range(k):
            for j in range(k):
                mirror_vc_bank(self.voqs[i][j], self._b_voq, (i * k + j) * v)
        self._b_vc_owner = _np.full(k * v, -1, dtype=_np.int64)
        self.output_vcs = mirror_output_vcs(self.output_vcs, self._b_vc_owner)
        self.input_busy = ArrayBusyTracker(k)
        self.output_busy = ArrayBusyTracker(k)

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        self._sort_arrivals()
        self._allocate()

    def _sort_arrivals(self) -> None:
        """Move flits from the per-VC input buffers into their VOQs."""
        for i in range(self.config.radix):
            if not self._in_active[i]:
                continue
            for vc in range(self.config.num_vcs):
                if self._stuck_inputs and (i, vc) in self._stuck_inputs:
                    continue
                queue = self.inputs[i][vc]
                while queue:
                    flit = queue.head()
                    invariant(flit is not None, "non-empty input queue "
                              "returned no head flit", cycle=self.cycle,
                              port=i, vc=vc, check="buffer-integrity")
                    if (
                        flit.is_head
                        and self.cycle - flit.injected_at < self._head_delay
                    ):
                        break
                    self.voqs[i][flit.dest][flit.vc].push(queue.pop())
                    self._occupied[i].add(flit.dest)
            self._input_emptied(i)

    def _allocate(self) -> None:
        if self._batch:
            requests = self._gather_wants_batched()
        else:
            requests = self._gather_wants()
        if requests is None:
            # iSLIP over an all-empty request set grants nothing and
            # moves no pointers; skip the allocator entirely.
            return
        matching = self._islip.allocate(requests)
        for i, j in matching.items():
            self._transmit(i, j)

    def _gather_wants(self) -> "Optional[List[Set[int]]]":
        """iSLIP request sets: outputs each free input has a ready VC for.

        Returns None when no input wants anything this cycle.
        """
        now = self.cycle
        requests: List[Set[int]] = []
        any_wants = False
        for i in range(self.config.radix):
            if not self._occupied[i] or not self.input_busy.free(i, now):
                requests.append(set())
                continue
            wants = set()
            for j in sorted(self._occupied[i]):
                if not self.output_busy.free(j, now):
                    continue
                if self._ready_vc(i, j, peek=True) is not None:
                    wants.add(j)
            requests.append(wants)
            if wants:
                any_wants = True
        return requests if any_wants else None

    def _gather_wants_batched(self) -> "Optional[List[Set[int]]]":
        """Whole-matrix equivalent of :meth:`_gather_wants`.

        The scalar gather is a pure read — ``_ready_vc(peek=True)``
        never moves arbiter pointers — so one (k, k, v) readiness tensor
        over the mirrored VOQ arrays reproduces it exactly.  A VC is
        ready when its VOQ head exists and either continues the packet
        owning its output VC class or is a head flit of a free class
        (:meth:`_flit_ready`).
        """
        now = self.cycle
        k, v = self.config.radix, self.config.num_vcs
        a = self._b_voq
        occ3 = a.occ.reshape(k, k, v)
        if not occ3.any():
            return None
        own3 = self._b_vc_owner.reshape(1, k, v)
        ready = (occ3 > 0) & (
            (a.pid.reshape(k, k, v) == own3)
            | (a.head.reshape(k, k, v) & (own3 < 0))
        )
        wants2 = ready.any(axis=2)
        wants2 &= (self.input_busy.array <= now)[:, None]
        wants2 &= (self.output_busy.array <= now)[None, :]
        if not wants2.any():
            return None
        return [set(_np.nonzero(row)[0].tolist()) for row in wants2]

    def _ready_vc(self, i: int, j: int, peek: bool = False) -> Optional[int]:
        """A VC at VOQ (i, j) whose head flit may proceed, or None."""
        bank = self.voqs[i][j]
        ready = []
        for vc in range(self.config.num_vcs):
            flit = bank[vc].head()
            ready.append(flit is not None and self._flit_ready(j, flit))
        return self._voq_vc_arb[i][j].arbitrate(ready, advance=not peek)

    def _flit_ready(self, j: int, flit: Flit) -> bool:
        state = self.output_vcs[j]
        if flit.is_head:
            return state.is_free(flit.vc) or state.owner(flit.vc) == flit.packet_id
        return state.owner(flit.vc) == flit.packet_id

    def _transmit(self, i: int, j: int) -> None:
        vc = self._ready_vc(i, j)
        invariant(vc is not None, "iSLIP matched a VOQ with no ready VC",
                  cycle=self.cycle, port=i, check="arbitration")
        flit = self.voqs[i][j][vc].pop()
        if self.voqs[i][j].occupancy() == 0:
            self._occupied[i].discard(j)
        if flit.is_head:
            self.output_vcs[j].allocate(flit.vc, flit.packet_id)
        flit.out_vc = flit.vc
        self.input_busy.reserve(i, self.cycle, self.config.flit_cycles)
        self._start_traversal(flit, j)

    # ------------------------------------------------------------------

    def _extra_occupancy(self) -> int:
        return self.voq_occupancy()

    def voq_occupancy(self) -> int:
        """Flits currently held in virtual output queues."""
        return sum(bank.occupancy() for row in self.voqs for bank in row)
