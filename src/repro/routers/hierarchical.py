"""Hierarchical crossbar: the paper's proposed architecture (Section 6).

The k×k crossbar is divided into (k/p)^2 p×p *subswitches*, and only
the inputs and outputs of each subswitch are buffered (Figure 16).
Input i connects to the row of subswitches r = i // p; output j is fed
by the column of subswitches c = j // p.  Buffer area grows as
O(v·k²/p) instead of the fully buffered crossbar's O(v·k²), giving the
40% area saving reported for k=64, p=8 while retaining most of the
performance (Figure 17).

Buffering and allocation discipline (Section 6):

* **Subswitch input buffers** are allocated per *input* VC, so — as in
  the fully buffered crossbar — no VC allocation is needed for a flit
  to reach the subswitch, and flits never need to be NACKed.
* **Subswitch output buffers** are allocated per *output* VC.  VC
  allocation is therefore split into a *local* allocation within the
  subswitch (acquiring a writer slot on the subswitch output buffer for
  the packet's output VC, kept contiguous per packet) and a *global*
  allocation among the subswitches of a column (ownership of the
  actual output VC, acquired when the head flit leaves the subswitch
  output buffer).
* The subswitch itself is a p×p unbuffered crossbar with per-lane
  round-robin input and output arbiters; the output port arbitrates
  round-robin among the k/p subswitch output buffers of its column.

Timing: the input row bus, the subswitch datapath, and the output
column each carry one flit per ``flit_cycles`` cycles, matching the
switch-traversal serialization of the other models.  Credits for the
subswitch input buffers return to the input over a fixed-latency pipe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.arbiter import RoundRobinArbiter
from ..core.buffers import VcBufferBank
from ..core.config import RouterConfig
from ..core.credit import CreditCounter, DelayedCreditPipe
from ..core.errors import invariant
from ..core.flit import Flit
from ..core.pipeline import BusyTracker, DelayLine
from .base import Router


class _Subswitch:
    """One p×p subswitch with buffered inputs and outputs."""

    def __init__(self, config: RouterConfig, row: int, col: int) -> None:
        p, v = config.subswitch_size, config.num_vcs
        self.config = config
        self.row = row
        self.col = col
        self.in_bufs = [VcBufferBank(v, config.subswitch_in_depth) for _ in range(p)]
        self.out_bufs = [VcBufferBank(v, config.subswitch_out_depth) for _ in range(p)]
        self.in_arb = [RoundRobinArbiter(v) for _ in range(p)]
        self.out_arb = [RoundRobinArbiter(p) for _ in range(p)]
        self.in_busy = BusyTracker(p)
        self.out_lane_busy = BusyTracker(p)
        # Writer lock per (local output lane, out VC): packet id that may
        # currently append flits — the *local* VC allocation.
        self.writer: Dict[Tuple[int, int], int] = {}
        # Flits traversing the subswitch toward an output buffer.
        self.crossing: DelayLine[Tuple[Flit, int]] = DelayLine(config.flit_cycles)
        # Count of flits resident in this subswitch's boundary buffers,
        # maintained by the router so idle subswitches can be skipped.
        self.resident = 0

    def occupancy(self) -> int:
        buffered = sum(b.occupancy() for b in self.in_bufs)
        buffered += sum(b.occupancy() for b in self.out_bufs)
        return buffered + len(self.crossing)


class HierarchicalCrossbarRouter(Router):
    """k×k crossbar built from (k/p)^2 buffered p×p subswitches."""

    # "ROW" fires when the flit launches across the input row bus
    # toward its subswitch, "SUB" when it crosses the p×p subswitch
    # toward an output buffer, and "ST" at the final output-port grant.
    TRACE_STAGES = ("RC", "ROW", "SUB", "ST")

    def __init__(self, config: RouterConfig) -> None:
        super().__init__(config)
        k, v, p = config.radix, config.num_vcs, config.subswitch_size
        s = config.num_subswitches_per_side
        self.num_sub = s
        self.sub: List[List[_Subswitch]] = [
            [_Subswitch(config, r, c) for c in range(s)] for r in range(s)
        ]
        self._input_arb = [RoundRobinArbiter(v) for _ in range(k)]
        # Output port arbiters: one per output, across the s subswitch
        # output buffers of its column.
        self._port_arb = [RoundRobinArbiter(s) for _ in range(k)]
        # Per-output-port VC pick arbiters used at the final stage.
        self._port_vc_arb = [
            [RoundRobinArbiter(v) for _ in range(s)] for _ in range(k)
        ]
        # Credits at input i for subswitch input buffer (col, vc).
        self._in_credits: List[List[List[CreditCounter]]] = [
            [
                [CreditCounter(config.subswitch_in_depth) for _ in range(v)]
                for _ in range(s)
            ]
            for _ in range(k)
        ]
        self._credit_pipe = DelayedCreditPipe(config.credit_latency)
        # Flits resident in the subswitch boundary buffers of each
        # column (mirrors the per-subswitch ``resident`` counters), so
        # the output stage can skip whole empty columns.
        self._col_resident = [0] * s
        # Flits crossing the input row bus toward a subswitch input buffer.
        self._to_sub: DelayLine[Tuple[Flit, int, int]] = DelayLine(
            config.flit_cycles
        )
        self._in_flight = 0
        self._head_delay = config.route_latency

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        self._land_flits()
        self._output_stage()
        self._subswitch_stage()
        self._input_stage()
        self._credit_pipe.step(self.cycle)

    # ------------------------------------------------------------------
    # Stage 1: input row bus into subswitch input buffers
    # ------------------------------------------------------------------

    def _input_stage(self) -> None:
        now = self.cycle
        p = self.config.subswitch_size
        for i in range(self.config.radix):
            if not self._in_active[i]:
                continue
            if not self.input_busy.free(i, now):
                continue
            sendable = [
                self._sendable(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([f is not None for f in sendable])
            if vc is None:
                continue
            flit = sendable[vc]
            invariant(flit is not None, "input arbiter granted a VC with "
                      "no sendable flit", cycle=now, port=i, vc=vc,
                      check="arbitration")
            col = flit.dest // p
            popped = self.inputs[i][vc].pop()
            invariant(popped is flit, "input buffer head changed between "
                      "arbitration and pop", cycle=now, port=i, vc=vc,
                      check="buffer-integrity")
            self._input_emptied(i)
            self._in_credits[i][col][vc].consume()
            self.input_busy.reserve(i, now, self.config.flit_cycles)
            self._to_sub.push(now, (flit, i, col))
            self._in_flight += 1
            if self.hooks.stage_enter:
                self.hooks.emit_stage_enter(flit, "ROW", i, now)

    def _sendable(self, i: int, vc: int) -> Optional[Flit]:
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        if flit.is_head and self.cycle - flit.injected_at < self._head_delay:
            return None
        col = flit.dest // self.config.subswitch_size
        if not self._in_credits[i][col][vc].available:
            return None
        return flit

    def _land_flits(self) -> None:
        p = self.config.subswitch_size
        for flit, i, col in self._to_sub.pop_ready(self.cycle):
            sub = self.sub[i // p][col]
            sub.in_bufs[i % p][flit.vc].push(flit)
            sub.resident += 1
            self._col_resident[col] += 1
            self._in_flight -= 1
        for r in range(self.num_sub):
            for c in range(self.num_sub):
                sub = self.sub[r][c]
                if sub.crossing:
                    for flit, lo in sub.crossing.pop_ready(self.cycle):
                        sub.out_bufs[lo][flit.out_vc].push(flit)
                        sub.resident += 1
                        self._col_resident[c] += 1

    # ------------------------------------------------------------------
    # Stage 2: p×p subswitch traversal with local VC allocation
    # ------------------------------------------------------------------

    def _subswitch_stage(self) -> None:
        for r in range(self.num_sub):
            for c in range(self.num_sub):
                sub = self.sub[r][c]
                if sub.resident:
                    self._run_subswitch(sub)

    def _run_subswitch(self, sub: _Subswitch) -> None:
        now = self.cycle
        p, v = self.config.subswitch_size, self.config.num_vcs
        # Local input arbitration: one candidate per subswitch input lane.
        requests: Dict[int, List[Tuple[int, int, Flit]]] = {}
        for li in range(p):
            if not sub.in_busy.free(li, now):
                continue
            if sub.in_bufs[li].occupancy() == 0:
                continue
            cands = [self._sub_candidate(sub, li, vc) for vc in range(v)]
            vc = sub.in_arb[li].arbitrate([cd is not None for cd in cands])
            if vc is None:
                continue
            flit = cands[vc]
            invariant(flit is not None, "subswitch input arbiter granted "
                      "an empty VC", cycle=now, vc=vc, check="arbitration")
            lo = flit.dest % p
            requests.setdefault(lo, []).append((li, vc, flit))
        # Local output arbitration per subswitch output lane.
        for lo, reqs in requests.items():
            if not sub.out_lane_busy.free(lo, now):
                self.stats.switch_denials += len(reqs)
                continue
            lines = [False] * p
            by_lane = {}
            for li, vc, flit in reqs:
                lines[li] = True
                by_lane[li] = (vc, flit)
            winner = sub.out_arb[lo].arbitrate(lines)
            if winner is None:
                continue
            vc, flit = by_lane[winner]
            self._sub_transmit(sub, winner, lo, vc, flit)
            self.stats.switch_denials += len(reqs) - 1

    def _sub_candidate(self, sub: _Subswitch, li: int, vc: int) -> Optional[Flit]:
        """Head flit of subswitch input (li, vc) if it can cross now."""
        flit = sub.in_bufs[li][vc].head()
        if flit is None:
            return None
        p = self.config.subswitch_size
        lo = flit.dest % p
        out_vc = flit.vc  # identity VC mapping, as at the input stage
        buf = sub.out_bufs[lo][out_vc]
        if buf.full:
            return None
        writer = sub.writer.get((lo, out_vc))
        if flit.is_head:
            # Local VC allocation: the output buffer must not be held
            # open by another packet.
            if writer is not None and writer != flit.packet_id:
                self.stats.spec_vc_failures += 1
                if self.hooks.spec_outcome:
                    self.hooks.emit_spec_outcome(
                        "subva", False, flit.dest, self.cycle
                    )
                return None
        else:
            if writer != flit.packet_id:
                return None
        return flit

    def _sub_transmit(
        self, sub: _Subswitch, li: int, lo: int, vc: int, flit: Flit
    ) -> None:
        popped = sub.in_bufs[li][vc].pop()
        sub.resident -= 1
        self._col_resident[sub.col] -= 1
        invariant(popped is flit, "subswitch input buffer head changed "
                  "before pop", cycle=self.cycle, vc=vc,
                  check="buffer-integrity")
        out_vc = flit.vc
        flit.out_vc = out_vc
        if flit.is_head:
            sub.writer[(lo, out_vc)] = flit.packet_id
            if self.hooks.spec_outcome:
                self.hooks.emit_spec_outcome(
                    "subva", True, flit.dest, self.cycle
                )
        if flit.is_tail:
            sub.writer.pop((lo, out_vc), None)
        fc = self.config.flit_cycles
        sub.in_busy.reserve(li, self.cycle, fc)
        sub.out_lane_busy.reserve(lo, self.cycle, fc)
        sub.crossing.push(self.cycle, (flit, lo))
        if self.hooks.stage_enter:
            self.hooks.emit_stage_enter(flit, "SUB", flit.dest, self.cycle)
        # The subswitch input buffer slot is free: return the credit.
        i = sub.row * self.config.subswitch_size + li
        counter = self._in_credits[i][sub.col][vc]
        self._credit_pipe.send(self.cycle, counter.restore)
        if self.hooks.credit:
            self.hooks.emit_credit(i, vc, self.cycle)

    # ------------------------------------------------------------------
    # Stage 3: output port pulls from its column's output buffers
    # ------------------------------------------------------------------

    def _output_stage(self) -> None:
        now = self.cycle
        p = self.config.subswitch_size
        for j in range(self.config.radix):
            if not self._col_resident[j // p]:
                continue
            if not self.output_busy.free(j, now):
                continue
            c, lo = j // p, j % p
            candidates: List[Optional[Tuple[int, Flit]]] = []
            for r in range(self.num_sub):
                candidates.append(self._port_candidate(j, r, c, lo))
            winner = self._port_arb[j].arbitrate(
                [cd is not None for cd in candidates]
            )
            if winner is None:
                continue
            cand = candidates[winner]
            invariant(cand is not None, "output port arbiter granted an "
                      "empty candidate slot", cycle=now, port=j,
                      check="arbitration")
            vc, flit = cand
            self._port_transmit(j, winner, c, lo, vc, flit)

    def _port_candidate(
        self, j: int, r: int, c: int, lo: int
    ) -> Optional[Tuple[int, Flit]]:
        """Pick a sendable VC from subswitch (r, c)'s output buffer lane."""
        sub = self.sub[r][c]
        if sub.resident == 0:
            return None
        bank = sub.out_bufs[lo]
        ready = []
        for vc in range(self.config.num_vcs):
            flit = bank[vc].head()
            ready.append(flit is not None and self._global_vc_ok(j, flit))
        vc = self._port_vc_arb[j][r].arbitrate(ready)
        if vc is None:
            return None
        flit = bank[vc].head()
        invariant(flit is not None, "port VC arbiter granted an empty VC",
                  port=j, vc=vc, check="arbitration")
        return vc, flit

    def _global_vc_ok(self, j: int, flit: Flit) -> bool:
        """Global VC allocation check at output j (among subswitches)."""
        state = self.output_vcs[j]
        invariant(flit.out_vc is not None, "flit reached global VC check "
                  "without a local VC assignment", port=j,
                  check="vc-ownership")
        if flit.is_head:
            return (
                state.is_free(flit.out_vc)
                or state.owner(flit.out_vc) == flit.packet_id
            )
        return state.owner(flit.out_vc) == flit.packet_id

    def _port_transmit(
        self, j: int, r: int, c: int, lo: int, vc: int, flit: Flit
    ) -> None:
        popped = self.sub[r][c].out_bufs[lo][vc].pop()
        self.sub[r][c].resident -= 1
        self._col_resident[c] -= 1
        invariant(popped is flit, "subswitch output buffer head changed "
                  "before pop", cycle=self.cycle, port=j, vc=vc,
                  check="buffer-integrity")
        if flit.is_head:
            self.output_vcs[j].allocate(flit.out_vc, flit.packet_id)
        self._start_traversal(flit, j)

    # ------------------------------------------------------------------

    def busy(self) -> bool:
        if super().busy():
            return True
        # Keep the clock running while subswitch-input credits are
        # still in the return pipe.
        return self._credit_pipe.pending() > 0

    def next_event(self, now: int) -> Optional[int]:
        horizon = super().next_event(now)
        due = self._credit_pipe.next_due()
        if due is not None and (horizon is None or due < horizon):
            horizon = due
        return horizon

    def _extra_occupancy(self) -> int:
        inside = sum(
            self.sub[r][c].occupancy()
            for r in range(self.num_sub)
            for c in range(self.num_sub)
        )
        return inside + self._in_flight
