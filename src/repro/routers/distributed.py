"""High-radix baseline: distributed switch and VC allocation (Section 4).

Centralized single-cycle allocation is infeasible at radix 64, so this
router distributes allocation:

* **Switch allocation** (Section 4.1, Figure 6) is separable and
  three-staged: each input controller's arbiter picks one ready VC
  (SA1), the request travels over per-input request lines (wire stage),
  a *local* output arbiter selects among its group of ``m`` inputs
  (SA2), and a *global* output arbiter selects among the ``k/m`` local
  winners (SA3).  We model the issue-to-decision latency with a delay
  line of ``config.sa_latency`` cycles and perform the local/global
  arbitration with :class:`~repro.core.arbiter.HierarchicalArbiter` at
  maturity.  Each input keeps a single request in flight, and re-bids
  (possibly for a different VC) when a denial comes back.

* **Virtual-channel allocation** (Section 4.2, Figures 7-8) is
  speculative — the switch request proceeds before the output VC is
  known to be free:

  - **CVA** (crosspoint VC allocation): the request carries the output
    VC it needs; the per-output-VC arbiter at the crosspoint kills
    requests whose VC is busy *before* switch output arbitration, so a
    failed speculation wastes only the requesting input's bid.
  - **OVA** (output VC allocation): switch allocation runs to
    completion first, and only the single winner then checks for a
    free output VC; a failure wastes the output's grant for that cycle
    — which is why Figure 9 shows OVA saturating below CVA.

* **Prioritized allocation** (Section 4.4, Figure 10(b)): with
  ``config.prioritize_nonspeculative`` the output arbitration uses two
  arbiters and grants speculative requests only when no nonspeculative
  request is present, applied (as in the paper) only at the output
  arbiter.

With ``config.speculative`` False, head flits first obtain their output
VC through a separate (pipelined) VC request and only then bid for the
switch — the non-speculative ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..allocation.speculation import SpeculationTracker
from ..allocation.switch_alloc import OutputArbiterBank
from ..allocation.vc_alloc import CvaPolicy, OvaPolicy
from ..core.arbiter import RoundRobinArbiter
from ..core.config import RouterConfig
from ..core.errors import invariant
from ..core.flit import Flit
from ..core.pipeline import DelayLine
from .base import Router

#: Request kinds flowing through the allocation pipeline.
KIND_SWITCH = "switch"
KIND_VA_ONLY = "va"


@dataclass
class _Request:
    """One switch (or VA-only) request in flight from an input."""

    input: int
    vc: int
    flit: Flit
    out: int
    out_vc: Optional[int]
    speculative: bool
    kind: str = KIND_SWITCH


class DistributedRouter(Router):
    """Radix-k router with distributed three-stage allocation."""

    # "SA" fires when a switch request is issued into the allocation
    # pipeline (SA1); the request matures sa_latency cycles later and
    # "ST" fires at the grant (plus the OVA extra grant delay).
    TRACE_STAGES = ("RC", "SA", "ST")

    def __init__(self, config: RouterConfig) -> None:
        super().__init__(config)
        k, v, m = config.radix, config.num_vcs, config.local_group_size
        self._input_arb = [RoundRobinArbiter(v) for _ in range(k)]
        self._output_arb = OutputArbiterBank(
            k, k, m, prioritized=config.prioritize_nonspeculative
        )
        self._cva = CvaPolicy()
        self._ova = OvaPolicy(k, v, config.ova_extra_latency)
        self.speculation = SpeculationTracker()
        self._alloc: Dict[Tuple[int, int], int] = {}
        self._pending: List[Optional[_Request]] = [None] * k
        # Requests parked at each output arbiter, keyed by input.
        self._resident: List[Dict[int, _Request]] = [dict() for _ in range(k)]
        self._pipe: DelayLine[_Request] = DelayLine(config.sa_latency)
        self._head_delay = config.route_latency
        # (i, vc) pairs whose head flit won a non-speculative VA and may
        # now bid for the switch (non-speculative mode only).
        self._va_done: Set[Tuple[int, int]] = set()
        # Output VC each input VC's current head will request next
        # (rotated after every failed speculation).
        self._spec_vc: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        for req in self._pipe.pop_ready(self.cycle):
            if req.kind == KIND_VA_ONLY:
                self._resolve_va_only(req)
            else:
                # The request line stays asserted at the output arbiter
                # until granted or killed (level-sensitive requests).
                self._resident[req.out][req.input] = req
        self._arbitrate_outputs()
        self._issue()

    # ------------------------------------------------------------------
    # Input side: SA1 (input arbitration) and request issue
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        """Each input with no request in flight bids for one VC."""
        now = self.cycle
        horizon = now + self.config.sa_latency
        for i in range(self.config.radix):
            if self._pending[i] is not None:
                continue
            if not self._in_active[i]:
                continue
            if self.input_busy.busy_until(i) > horizon:
                continue
            candidates = [
                self._candidate(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([c is not None for c in candidates])
            if vc is None:
                continue
            request = candidates[vc]
            invariant(request is not None, "input arbiter granted a VC "
                      "with no candidate request", cycle=self.cycle,
                      port=i, vc=vc, check="arbitration")
            if request.kind == KIND_SWITCH:
                self.speculation.record_request(request.speculative)
                if self.hooks.stage_enter:
                    self.hooks.emit_stage_enter(request.flit, "SA", i, now)
            self._pending[i] = request
            self._pipe.push(now, request)

    def _candidate(self, i: int, vc: int) -> Optional[_Request]:
        """Build the request (i, vc) would issue, or None if ineligible."""
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        key = (i, vc)
        if not flit.is_head or key in self._alloc:
            # Body/tail flit of a packet whose VC is already held: a
            # nonspeculative switch request.
            out_vc = self._alloc.get(key)
            if flit.is_head and out_vc is None:
                return None
            return _Request(i, vc, flit, flit.dest, out_vc, speculative=False)
        # Head flit awaiting route computation.
        if self.cycle - flit.injected_at < self._head_delay:
            return None
        if not self.config.speculative and key not in self._va_done:
            # Non-speculative mode: acquire the output VC first.
            return _Request(
                i, vc, flit, flit.dest, flit.vc, speculative=False,
                kind=KIND_VA_ONLY,
            )
        if key in self._va_done:
            out_vc = self._alloc[key]
            return _Request(i, vc, flit, flit.dest, out_vc, speculative=False)
        if self.config.vc_allocator == "cva":
            # CVA requests name the output VC they need.  The input
            # cannot see output VC status (that is why the request is
            # speculative), so the choice is blind: it starts at the
            # packet's input VC class and rotates to the next VC after
            # each failed speculation.  With several VCs a re-bid
            # "will likely find an available output VC" (Section 4.4);
            # with a single VC the packet keeps re-bidding for the one
            # VC it is waiting on.
            out_vc = self._spec_vc.setdefault(key, flit.vc)
            return _Request(i, vc, flit, flit.dest, out_vc, speculative=True)
        return _Request(i, vc, flit, flit.dest, None, speculative=True)

    # ------------------------------------------------------------------
    # Output side: SA2/SA3 (local/global arbitration) plus VC allocation
    # ------------------------------------------------------------------

    def _arbitrate_outputs(self) -> None:
        """SA2/SA3 plus VC allocation over the resident requests.

        Requests parked at an output remain in contention every cycle
        (losers are not bounced back to the inputs); a request leaves
        the output arbiter only by being granted or — for a speculative
        request whose VC allocation fails — killed, in which case its
        input is free to re-bid.
        """
        for out in range(self.config.radix):
            reqs = self._resident[out]
            if not reqs:
                continue
            if not self.output_busy.free(out, self.cycle):
                continue
            if self.config.vc_allocator == "cva":
                self._resolve_cva(out, reqs)
            else:
                self._resolve_ova(out, reqs)

    def _resolve_va_only(self, req: _Request) -> None:
        """Non-speculative VA request: allocate the VC if free."""
        state = self.output_vcs[req.out]
        invariant(req.out_vc is not None, "VA request carries no output "
                  "VC", cycle=self.cycle, port=req.input,
                  check="vc-ownership")
        if state.is_free(req.out_vc):
            state.allocate(req.out_vc, req.flit.packet_id)
            self._alloc[(req.input, req.vc)] = req.out_vc
            self._va_done.add((req.input, req.vc))
        else:
            self.stats.spec_vc_failures += 1
        self._pending[req.input] = None

    def _resolve_cva(self, out: int, reqs: Dict[int, _Request]) -> None:
        """CVA: VC allocation in parallel with switch arbitration.

        All requests — speculative or not — compete in the output
        switch arbitration, because the per-output-VC arbiters at the
        crosspoint run *concurrently* with it ("CVA parallelize the
        switch and VC allocation").  When the switch winner is a
        speculative request whose named output VC turns out to be busy,
        the output's grant for this cycle is wasted — exactly the
        bandwidth loss that Section 4.4's prioritized (two-arbiter)
        allocation exists to contain.
        """
        winner = self._arbitrate_output(out, list(reqs.values()))
        if winner is None:
            return
        if winner.speculative:
            invariant(winner.out_vc is not None, "speculative CVA request "
                      "carries no output VC", cycle=self.cycle,
                      port=winner.input, check="vc-ownership")
            if not self._cva.admissible(
                self.output_vcs[out], winner.out_vc, winner.flit.packet_id
            ):
                # Failed speculation: the switch slot goes unused this
                # cycle and the request is killed back to its input.
                self.stats.spec_vc_failures += 1
                self.stats.wasted_output_cycles += 1
                self.speculation.record_kill()
                if self.hooks.spec_outcome:
                    self.hooks.emit_spec_outcome("cva", False, out, self.cycle)
                self._kill(winner)
                return
            if self.hooks.spec_outcome:
                self.hooks.emit_spec_outcome("cva", True, out, self.cycle)
        self._grant(winner)

    def _resolve_ova(self, out: int, reqs: Dict[int, _Request]) -> None:
        """OVA: arbitrate first, then the single winner checks VC state."""
        winner = self._arbitrate_output(out, list(reqs.values()))
        if winner is None:
            return
        if not winner.speculative:
            self._grant(winner)
            return
        out_vc = self._ova.allocate(out, self.output_vcs[out])
        if out_vc is None:
            # The output's grant is wasted this cycle: nobody else can
            # use it, and the winner must re-bid from its input.
            self.stats.spec_vc_failures += 1
            self.stats.wasted_output_cycles += 1
            self.speculation.record_kill()
            if self.hooks.spec_outcome:
                self.hooks.emit_spec_outcome("ova", False, out, self.cycle)
            self._kill(winner)
            return
        winner.out_vc = out_vc
        if self.hooks.spec_outcome:
            self.hooks.emit_spec_outcome("ova", True, out, self.cycle)
        self._grant(winner, extra_delay=self._ova.extra_grant_latency)

    def _arbitrate_output(
        self, out: int, reqs: List[_Request]
    ) -> Optional[_Request]:
        by_input: Dict[int, _Request] = {req.input: req for req in reqs}
        winner_input = self._output_arb.grant(
            out, [(req.input, req.speculative) for req in reqs]
        )
        if winner_input is None:
            return None
        winner = by_input[winner_input]
        self.speculation.record_grant(winner.speculative)
        return winner

    # ------------------------------------------------------------------
    # Grant / deny plumbing
    # ------------------------------------------------------------------

    def _kill(self, req: _Request) -> None:
        """Remove a request from contention and let its input re-bid."""
        self.stats.switch_denials += 1
        del self._resident[req.out][req.input]
        self._pending[req.input] = None
        if req.speculative and self.config.vc_allocator == "cva":
            key = (req.input, req.vc)
            current = self._spec_vc.get(key, req.vc)
            self._spec_vc[key] = (current + 1) % self.config.num_vcs

    def _grant(self, req: _Request, extra_delay: int = 0) -> None:
        i, vc, flit, out = req.input, req.vc, req.flit, req.out
        key = (i, vc)
        if flit.is_head and key not in self._alloc:
            invariant(req.out_vc is not None, "granted head flit has no "
                      "allocated output VC", cycle=self.cycle, port=i,
                      vc=vc, check="vc-ownership")
            self.output_vcs[out].allocate(req.out_vc, flit.packet_id)
            self._alloc[key] = req.out_vc
            self._spec_vc.pop(key, None)
        flit.out_vc = self._alloc[key]
        if flit.is_tail:
            del self._alloc[key]
            self._va_done.discard(key)
        popped = self.inputs[i][vc].pop()
        invariant(popped is flit, "input buffer head changed between "
                  "grant and pop", cycle=self.cycle, port=i, vc=vc,
                  check="buffer-integrity")
        self._input_emptied(i)
        start = self.cycle + extra_delay
        self.input_busy.extend(i, start + self.config.flit_cycles)
        self._start_traversal(flit, out, start=start)
        del self._resident[out][i]
        self._pending[i] = None
