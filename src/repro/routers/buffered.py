"""Fully buffered crossbar: per-VC buffers at every crosspoint (Section 5).

Adding buffering at the crosspoints "decouples input and output virtual
channel and switch allocation.  This decoupling simplifies the
allocation, reduces the need for speculation, and overcomes the
performance problems of the baseline architecture" (Section 5).

Microarchitecture implemented here, following Sections 5.1-5.2:

* Each crosspoint (i, j) holds ``num_vcs`` buffers of
  ``crosspoint_buffer_depth`` flits; the buffers are associated with the
  *input* VCs, so no VC allocation is needed to reach the crosspoint —
  "in effect, the crosspoint buffers are per-output extensions of the
  input buffers".
* Input side: the input arbiter picks one ready VC whose head flit has
  a credit for its crosspoint buffer and launches it across the input
  row; the row is occupied for ``flit_cycles`` cycles and the flit
  lands in the crosspoint buffer after that traversal.  Because the
  flit is buffered at the crosspoint, it never has to re-arbitrate at
  the input after losing output arbitration.
* Output side: output VC allocation is performed in two stages — "a
  v-to-1 arbiter that selects a VC at each crosspoint followed by a
  k-to-1 arbiter that selects a crosspoint to communicate with the
  output" — with the k-to-1 stage using the same local/global
  (hierarchical) arbitration as the unbuffered switch.
* Crosspoint credits (Section 5.2): each input keeps a free-buffer
  counter per crosspoint buffer in its row; all crosspoints on a row
  share a single credit return bus with distributed round-robin
  arbitration.  ``config.ideal_credit_return`` switches to the ideal
  (immediate, dedicated-wire) credit return for the comparison the
  paper reports ("simulations show that there is minimal difference").

With sufficient crosspoint buffering this design reaches ~100% of
capacity on uniform random traffic (Figure 13) because head-of-line
blocking is eliminated; its cost is O(v·k²) buffer storage (Figure 15).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..allocation.switch_alloc import OutputArbiterBank
from ..core.arbiter import (
    BatchArbiterBank,
    BatchHierarchicalArbiterBank,
    RoundRobinArbiter,
    _np,
)
from ..core.batch import (
    HAVE_NUMPY,
    ArrayBusyTracker,
    QueueArrays,
    mirror_credit_array,
    mirror_output_vcs,
    mirror_vc_bank,
)
from ..core.buffers import VcBufferBank
from ..core.config import RouterConfig
from ..core.errors import invariant
from ..core.credit import CreditCounter, CreditReturnBus, DelayedCreditPipe
from ..core.flit import Flit
from ..core.pipeline import DelayLine
from .base import Router


class BufferedCrossbarRouter(Router):
    """Crossbar with per-VC buffers at each crosspoint (Figure 12(b))."""

    # "XB" fires when the flit launches across its input row toward the
    # crosspoint buffer; "ST" fires when the output column grants it.
    TRACE_STAGES = ("RC", "XB", "ST")

    def __init__(self, config: RouterConfig) -> None:
        super().__init__(config)
        k, v = config.radix, config.num_vcs
        depth = config.crosspoint_buffer_depth
        self.crosspoints: List[List[VcBufferBank]] = [
            [VcBufferBank(v, depth) for _ in range(k)] for _ in range(k)
        ]
        self._credits: List[List[List[CreditCounter]]] = [
            [[CreditCounter(depth) for _ in range(v)] for _ in range(k)]
            for _ in range(k)
        ]
        # Flat view of every crosspoint queue's deque: the occupancy
        # scan over k*k*v queues runs every cycle under the sanitizer,
        # so it must stay a single C-level sum(map(len, ...)).
        self._xp_flat = [
            q._q for row in self.crosspoints for bank in row
            for q in bank.queues
        ]
        self._input_arb = [RoundRobinArbiter(v) for _ in range(k)]
        self._xp_vc_arb = [
            [RoundRobinArbiter(v) for _ in range(k)] for _ in range(k)
        ]
        self._output_arb = OutputArbiterBank(k, k, config.local_group_size)
        # Flits crossing the input row toward their crosspoint.
        self._to_crosspoint: DelayLine[Tuple[Flit, int, int]] = DelayLine(
            config.flit_cycles
        )
        self._in_flight_to_xp = 0
        # Per output: the set of crosspoints currently holding flits,
        # so the output stage skips the (vast) empty majority.
        self._occupied: List[set] = [set() for _ in range(k)]
        if config.ideal_credit_return:
            self._credit_pipes: Optional[List[DelayedCreditPipe]] = [
                DelayedCreditPipe(0) for _ in range(k)
            ]
            self._credit_buses: Optional[List[CreditReturnBus]] = None
        else:
            self._credit_pipes = None
            self._credit_buses = [
                CreditReturnBus(k, config.credit_latency) for _ in range(k)
            ]
        self._head_delay = config.route_latency
        self._batch = bool(config.batch_hot_path) and HAVE_NUMPY
        if self._batch:
            self._init_batch()

    def _init_batch(self) -> None:
        """Build the struct-of-arrays mirrors for the batched hot path.

        Every scalar state primitive consulted by the per-cycle
        eligibility scans is replaced (while empty/idle, at
        construction time) by a mirrored twin that keeps a shared flat
        array in sync on each mutation; see ``repro.core.batch``.  The
        scalar arbiters stay allocated but idle — the batched banks
        below hold the pointer state of record in this mode.
        """
        k, v = self.config.radix, self.config.num_vcs
        self._b_in = QueueArrays(k * v)
        for i, bank in enumerate(self.inputs):
            mirror_vc_bank(bank, self._b_in, i * v)
        self._b_xp = QueueArrays(k * k * v)
        for i, row in enumerate(self.crosspoints):
            for j, bank in enumerate(row):
                mirror_vc_bank(bank, self._b_xp, (i * k + j) * v)
        # The flat occupancy view references the replaced queues' deques.
        self._xp_flat = [
            q._q for row in self.crosspoints for bank in row
            for q in bank.queues
        ]
        self._b_cred_ok = _np.ones(k * k * v, dtype=bool)
        self._credits = [
            [
                mirror_credit_array(
                    self._credits[i][j], self._b_cred_ok, (i * k + j) * v
                )
                for j in range(k)
            ]
            for i in range(k)
        ]
        # Per-crosspoint total occupancy, so the output stage touches
        # only the (sparse) occupied crosspoints; kept in sync at the
        # landing and transmit sites.
        self._b_xp_cnt = _np.zeros(k * k, dtype=_np.int64)
        # Scatter target for per-crosspoint VC-arbitration winners;
        # only slots granted this cycle are ever read back.
        self._b_xp_vcw = _np.zeros(k * k, dtype=_np.int64)
        self._b_vc_owner = _np.full(k * v, -1, dtype=_np.int64)
        self.output_vcs = mirror_output_vcs(self.output_vcs, self._b_vc_owner)
        self.input_busy = ArrayBusyTracker(k)
        self.output_busy = ArrayBusyTracker(k)
        self._input_arb_b = BatchArbiterBank(k, v)
        self._xp_vc_arb_b = BatchArbiterBank(k * k, v)
        self._output_arb_b = BatchHierarchicalArbiterBank(
            k, k, self.config.local_group_size
        )
        # flat[i, vc] -> index of credit slot (i, dest, vc) given dest:
        # gather base + dest * v.
        self._b_cred_gather = (
            (_np.arange(k, dtype=_np.int64) * (k * v))[:, None]
            + _np.arange(v, dtype=_np.int64)[None, :]
        )
        # Persistent (output, input) request scratch for the k-to-1
        # arbitration; set/cleared around each grant_all call.
        self._b_req = _np.zeros((k, k), dtype=bool)
        if self._credit_buses is not None:
            # Pending-credit counts per (input row, crosspoint), kept in
            # sync with the buses at the single post site below, plus a
            # per-row total so the step visits only buses with backlog.
            self._bus_counts = _np.zeros(k * k, dtype=_np.int64)
            self._b_bus_row_cnt = _np.zeros(k, dtype=_np.int64)
            self._b_bus_live: set = set()
            self._bus_arb_b = BatchArbiterBank(k, k)
        else:
            self._bus_counts = None
            self._b_bus_row_cnt = None
            self._b_bus_live = set()
            self._bus_arb_b = None

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        self._land_crosspoint_flits()
        if self._batch:
            self._output_stage_batched()
            self._input_stage_batched()
        else:
            self._output_stage()
            self._input_stage()
        self._step_credit_return()

    # ------------------------------------------------------------------
    # Input row: launch flits toward their crosspoint buffers
    # ------------------------------------------------------------------

    def _input_stage(self) -> None:
        now = self.cycle
        for i in range(self.config.radix):
            if not self._in_active[i]:
                continue
            if not self.input_busy.free(i, now):
                continue
            sendable = [
                self._sendable(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([f is not None for f in sendable])
            if vc is None:
                continue
            flit = sendable[vc]
            invariant(flit is not None, "input arbiter granted a VC with "
                      "no sendable flit", cycle=now, port=i, vc=vc,
                      check="arbitration")
            popped = self.inputs[i][vc].pop()
            invariant(popped is flit, "input buffer head changed between "
                      "arbitration and pop", cycle=now, port=i, vc=vc,
                      check="buffer-integrity")
            self._input_emptied(i)
            self._credits[i][flit.dest][vc].consume()
            self.input_busy.reserve(i, now, self.config.flit_cycles)
            self._to_crosspoint.push(now, (flit, i, flit.dest))
            self._in_flight_to_xp += 1
            if self.hooks.stage_enter:
                self.hooks.emit_stage_enter(flit, "XB", flit.dest, now)

    def _sendable(self, i: int, vc: int) -> Optional[Flit]:
        """Head-of-queue flit of (i, vc) if a crosspoint credit exists."""
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        if flit.is_head and self.cycle - flit.injected_at < self._head_delay:
            return None
        if not self._credits[i][flit.dest][vc].available:
            return None
        return flit

    def _land_crosspoint_flits(self) -> None:
        # The batched path tracks crosspoint occupancy in _b_xp_cnt and
        # never reads the scalar _occupied sets (and vice versa), so
        # each mode maintains only its own structure.
        if self._batch:
            k = self.config.radix
            for flit, i, j in self._to_crosspoint.pop_ready(self.cycle):
                self.crosspoints[i][j][flit.vc].push(flit)
                self._in_flight_to_xp -= 1
                self._b_xp_cnt[i * k + j] += 1
            return
        for flit, i, j in self._to_crosspoint.pop_ready(self.cycle):
            self.crosspoints[i][j][flit.vc].push(flit)
            self._occupied[j].add(i)
            self._in_flight_to_xp -= 1

    # ------------------------------------------------------------------
    # Output column: two-stage output VC allocation + switch arbitration
    # ------------------------------------------------------------------

    def _output_stage(self) -> None:
        now = self.cycle
        for j in range(self.config.radix):
            if not self.output_busy.free(j, now) or not self._occupied[j]:
                continue
            candidates: dict = {}
            # Sorted so candidate order (which feeds the output arbiter)
            # never depends on set iteration order.
            for i in sorted(self._occupied[j]):
                cand = self._crosspoint_candidate(i, j)
                if cand is not None:
                    candidates[i] = cand
            if not candidates:
                continue
            winner = self._output_arb.grant(
                j, [(i, False) for i in candidates]
            )
            if winner is None:
                continue
            vc, flit = candidates[winner]
            self._transmit(winner, j, vc, flit)

    def _crosspoint_candidate(
        self, i: int, j: int
    ) -> Optional[Tuple[int, Flit]]:
        """v-to-1 crosspoint arbitration: pick a sendable VC at (i, j)."""
        bank = self.crosspoints[i][j]
        ready = [
            self._xp_flit_ready(j, bank[vc].head())
            for vc in range(self.config.num_vcs)
        ]
        vc = self._xp_vc_arb[i][j].arbitrate(ready)
        if vc is None:
            return None
        flit = bank[vc].head()
        invariant(flit is not None, "crosspoint VC arbiter granted an "
                  "empty VC", cycle=self.cycle, port=i, vc=vc,
                  check="arbitration")
        return vc, flit

    def _xp_flit_ready(self, j: int, flit: Optional[Flit]) -> bool:
        """Can this crosspoint flit proceed to output j?

        Body/tail flits proceed iff their packet owns the output VC;
        head flits claim their input-VC class and proceed iff that
        output VC is free (crosspoint VC allocation).
        """
        if flit is None:
            return False
        state = self.output_vcs[j]
        if flit.is_head:
            return state.is_free(flit.vc) or state.owner(flit.vc) == flit.packet_id
        return state.owner(flit.vc) == flit.packet_id

    def _transmit(self, i: int, j: int, vc: int, flit: Flit) -> None:
        popped = self.crosspoints[i][j][vc].pop()
        invariant(popped is flit, "crosspoint buffer head changed between "
                  "arbitration and pop", cycle=self.cycle, port=i, vc=vc,
                  check="buffer-integrity")
        if self._batch:
            self._b_xp_cnt[i * self.config.radix + j] -= 1
        elif self.crosspoints[i][j].occupancy() == 0:
            self._occupied[j].discard(i)
        if flit.is_head:
            self.output_vcs[j].allocate(flit.vc, flit.packet_id)
        flit.out_vc = flit.vc
        self._start_traversal(flit, j)
        self._post_credit(i, j, vc)

    # ------------------------------------------------------------------
    # Credit return (Section 5.2)
    # ------------------------------------------------------------------

    def _post_credit(self, i: int, j: int, vc: int) -> None:
        counter = self._credits[i][j][vc]
        if self.hooks.credit:
            self.hooks.emit_credit(i, vc, self.cycle)
        if self._credit_pipes is not None:
            self._credit_pipes[i].send(self.cycle, counter.restore)
        else:
            invariant(self._credit_buses is not None, "credit return "
                      "misconfigured: neither pipes nor buses present",
                      cycle=self.cycle, port=i, check="credit-return")
            self._credit_buses[i].post(j, counter.restore)
            if self._batch:
                self._bus_counts[i * self.config.radix + j] += 1
                self._b_bus_row_cnt[i] += 1

    def _step_credit_return(self) -> None:
        if self._credit_pipes is not None:
            for pipe in self._credit_pipes:
                pipe.step(self.cycle)
        elif self._batch:
            self._step_credit_return_batched()
        else:
            invariant(self._credit_buses is not None, "credit return "
                      "misconfigured: neither pipes nor buses present",
                      cycle=self.cycle, check="credit-return")
            for bus in self._credit_buses:
                bus.step(self.cycle)

    # ------------------------------------------------------------------
    # Batched hot path (config.batch_hot_path)
    #
    # Stage-for-stage equivalents of the scalar methods above, operating
    # on the mirror arrays.  Equivalence rests on three facts proven in
    # docs/architecture.md: (1) an all-False arbiter row is identical to
    # skipping the scalar arbiter call (no pointer motion either way);
    # (2) input-stage grant bodies touch only row-i state, so a single
    # pre-computed eligibility matrix matches the scalar ascending-i
    # scan; (3) output-stage transmits touch only column-j state, so a
    # pre-stage mask snapshot matches the scalar ascending-j scan.
    # ------------------------------------------------------------------

    def _input_stage_batched(self) -> None:
        now = self.cycle
        k, v = self.config.radix, self.config.num_vcs
        a = self._b_in
        # Sparse over free inputs: a port stays busy for flit_cycles
        # after each launch, so at high load only a small fraction of
        # rows are candidates each cycle.  Skipped rows are all-False
        # rows for the arbiter bank (no grant, no pointer motion).
        free = _np.nonzero(self.input_busy.array <= now)[0]
        if not free.size:
            return
        sendable = a.occ.reshape(k, v)[free] > 0
        if not sendable.any():
            return
        sendable &= ~(
            a.head.reshape(k, v)[free]
            & ((now - a.inj.reshape(k, v)[free]) < self._head_delay)
        )
        # Credit gather at (i, dest, vc); stale keys of empty queues may
        # index arbitrary slots but those lanes are already masked off.
        flat = self._b_cred_gather[free] + a.key.reshape(k, v)[free] * v
        sendable &= self._b_cred_ok[flat]
        if self._stuck_inputs:
            for (i, vc) in sorted(self._stuck_inputs):
                pos = int(_np.searchsorted(free, i))
                if pos < free.size and free[pos] == i:
                    sendable[pos, vc] = False
        winners = self._input_arb_b.arbitrate_rows(free, sendable)
        hit = _np.nonzero(winners >= 0)[0]
        fc = self.config.flit_cycles
        for pos in hit.tolist():
            i = int(free[pos])
            vc = int(winners[pos])
            flit = self.inputs[i].queues[vc].pop()
            self._credits[i][flit.dest][vc].consume()
            self.input_busy.reserve(i, now, fc)
            self._to_crosspoint.push(now, (flit, i, flit.dest))
            self._in_flight_to_xp += 1
            if self.hooks.stage_enter:
                self.hooks.emit_stage_enter(flit, "XB", flit.dest, now)

    def _output_stage_batched(self) -> None:
        now = self.cycle
        k, v = self.config.radix, self.config.num_vcs
        # Sparse row extraction: only occupied crosspoints whose output
        # column is free this cycle get VC-arbitrated, which matches
        # the scalar _occupied[j] / output-busy skip exactly (skipped
        # rows are all-False rows: no grant, no pointer motion).
        rows = _np.nonzero(self._b_xp_cnt)[0]
        if not rows.size:
            return
        j_rows = rows % k
        mask = self.output_busy.array[j_rows] <= now
        rows = rows[mask]
        if not rows.size:
            return
        j_rows = j_rows[mask]
        a = self._b_xp
        occ2 = a.occ.reshape(k * k, v)
        head2 = a.head.reshape(k * k, v)
        pid2 = a.pid.reshape(k * k, v)
        own_s = self._b_vc_owner.reshape(k, v)[j_rows]
        # _xp_flit_ready per (row, vc): body/tail flits need ownership,
        # head flits ownership or a free output VC.
        ready = (occ2[rows] > 0) & (
            (pid2[rows] == own_s) | (head2[rows] & (own_s < 0))
        )
        vcw = self._xp_vc_arb_b.arbitrate_rows(rows, ready)
        hit = _np.nonzero(vcw >= 0)[0]
        if not hit.size:
            return
        grows = rows[hit]
        self._b_xp_vcw[grows] = vcw[hit]
        requests = self._b_req
        gj, gi = grows % k, grows // k
        requests[gj, gi] = True
        winners = self._output_arb_b.grant_all(requests)
        requests[gj, gi] = False
        vcw_all = self._b_xp_vcw
        for j in _np.nonzero(winners >= 0)[0].tolist():
            i = int(winners[j])
            vc = int(vcw_all[i * k + j])
            flit = self.crosspoints[i][j][vc].head()
            invariant(flit is not None, "batched crosspoint arbitration "
                      "granted an empty VC", cycle=now, port=i, vc=vc,
                      check="arbitration")
            self._transmit(i, j, vc, flit)

    def _step_credit_return_batched(self) -> None:
        now = self.cycle
        k = self.config.radix
        counts = self._bus_counts
        buses = self._credit_buses
        # A bus with neither backlog (a grant to hand out) nor credits
        # in flight on the wire is a no-op in the scalar per-bus step,
        # so the batched step only visits buses with work: rows with a
        # nonzero pending count, plus the live set of buses whose wire
        # still carries credits from earlier grants.
        busy = _np.nonzero(self._b_bus_row_cnt)[0]
        win = {}
        if busy.size:
            granted = self._bus_arb_b.arbitrate_rows(
                busy, counts.reshape(k, k)[busy] > 0
            )
            for pos, i in enumerate(busy.tolist()):
                win[i] = int(granted[pos])
        live = self._b_bus_live
        todo = set(win)
        todo.update(live)
        # Ascending bus order matches the scalar loop (delivery order
        # is observable through fault drop hooks).
        for i in sorted(todo):
            bus = buses[i]
            w = win.get(i, -1)
            if w >= 0:
                bus.grant_to(w, now)
                counts[i * k + w] -= 1
                self._b_bus_row_cnt[i] -= 1
            bus.deliver(now)
            if bus.wire_busy:
                live.add(i)
            else:
                live.discard(i)

    # ------------------------------------------------------------------

    def busy(self) -> bool:
        if super().busy():
            return True
        # Delayed credit returns must keep the clock running even when
        # no flit is resident, or the restore callbacks never mature.
        if self._credit_pipes is not None:
            return any(pipe.pending() for pipe in self._credit_pipes)
        buses = self._credit_buses
        return buses is not None and not all(bus.idle() for bus in buses)

    def next_event(self, now: int) -> Optional[int]:
        horizon = super().next_event(now)
        if self._credit_pipes is not None:
            for pipe in self._credit_pipes:
                due = pipe.next_due()
                if due is not None and (horizon is None or due < horizon):
                    horizon = due
        elif self._credit_buses is not None:
            for bus in self._credit_buses:
                due = bus.next_due(now)
                if due is not None and (horizon is None or due < horizon):
                    horizon = due
        return horizon

    def _extra_occupancy(self) -> int:
        return sum(map(len, self._xp_flat)) + self._in_flight_to_xp

    def crosspoint_occupancy(self) -> int:
        """Total flits held in crosspoint buffers (for tests/metrics)."""
        return sum(map(len, self._xp_flat))
