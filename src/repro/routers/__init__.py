"""The four switch organizations evaluated in the paper.

* :class:`BaselineRouter` — low-radix input-queued crossbar with
  centralized single-cycle allocation (Section 3).
* :class:`DistributedRouter` — high-radix router with distributed
  three-stage switch allocation and speculative CVA/OVA virtual channel
  allocation (Section 4).
* :class:`BufferedCrossbarRouter` — per-VC buffers at every crosspoint
  (Section 5).
* :class:`SharedBufferCrossbarRouter` — one shared buffer per
  crosspoint with ACK/NACK flow control (Section 5.4).
* :class:`HierarchicalCrossbarRouter` — the paper's proposal: (k/p)^2
  buffered p-by-p subswitches (Section 6).
* :class:`VoqRouter` — the Section 8 comparison point: a virtual
  output queued switch driven by a centralized iSLIP allocator.
"""

from .base import Router, RouterStats
from .baseline import BaselineRouter
from .buffered import BufferedCrossbarRouter
from .distributed import DistributedRouter
from .hierarchical import HierarchicalCrossbarRouter
from .shared_buffer import SharedBufferCrossbarRouter
from .voq import VoqRouter

__all__ = [
    "Router",
    "RouterStats",
    "BaselineRouter",
    "DistributedRouter",
    "BufferedCrossbarRouter",
    "SharedBufferCrossbarRouter",
    "HierarchicalCrossbarRouter",
    "VoqRouter",
]
