"""Buffered crossbar *without* per-VC crosspoint buffers (Section 5.4).

One approach to reducing the area of the fully buffered crossbar is a
single buffer per crosspoint shared among the VCs, cutting crosspoint
storage by a factor of v.  The catch (Section 5.4): a speculative flit
cannot be allowed to wait in the shared buffer for output VC allocation
— it would block every VC and could deadlock.  So flits are sent
speculatively while "kept in the input buffer until an ACK is received
from output VC allocation"; a flit that fails VC allocation is removed
from the crosspoint and a NACK returns to the input, which presents the
flit again later.

Protocol implemented here:

* The input launches a *copy* of the head-of-queue flit to the
  crosspoint (consuming a shared-buffer credit) and marks the VC as
  awaiting a response; the original flit stays in the input buffer.
* On arrival at the crosspoint, a head flit attempts output VC
  allocation (its input-VC class).  Success (or any body/tail flit)
  enqueues the flit and returns an ACK; the input then retires the
  original and the VC may proceed.  Failure returns a NACK and restores
  the credit; the input retries the same flit later.
* The output side is the same two-stage (crosspoint, then k-to-1
  local/global) arbitration as the fully buffered crossbar, except the
  per-crosspoint stage degenerates to the single shared FIFO head.

The repeated send/NACK cycles of a blocked head flit waste input-row
bandwidth, and input buffer slots are held until ACKs return — the
costs the paper cites for this organization.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..allocation.switch_alloc import OutputArbiterBank
from ..core.arbiter import RoundRobinArbiter
from ..core.buffers import FlitQueue
from ..core.config import RouterConfig
from ..core.errors import invariant
from ..core.credit import CreditCounter
from ..core.flit import Flit
from ..core.pipeline import DelayLine
from .base import Router

_ACK = True
_NACK = False


class SharedBufferCrossbarRouter(Router):
    """Crossbar with one shared buffer per crosspoint and ACK/NACK flow."""

    # "XB" fires at every speculative launch across the input row — a
    # NACKed head flit re-emits it on each retry — and "ST" fires when
    # the output column grants the buffered copy.
    TRACE_STAGES = ("RC", "XB", "ST")

    def __init__(self, config: RouterConfig) -> None:
        super().__init__(config)
        k = config.radix
        depth = config.crosspoint_buffer_depth
        self.crosspoints: List[List[FlitQueue]] = [
            [FlitQueue(depth) for _ in range(k)] for _ in range(k)
        ]
        self._credits: List[List[CreditCounter]] = [
            [CreditCounter(depth) for _ in range(k)] for _ in range(k)
        ]
        self._input_arb = [RoundRobinArbiter(config.num_vcs) for _ in range(k)]
        self._output_arb = OutputArbiterBank(k, k, config.local_group_size)
        # Per (input, vc): True while a launched flit awaits ACK/NACK.
        self._awaiting = [[False] * config.num_vcs for _ in range(k)]
        self._to_crosspoint: DelayLine[Tuple[Flit, int, int]] = DelayLine(
            config.flit_cycles
        )
        self._in_flight = 0
        # (input, vc, ack?) responses travelling back to the inputs.
        self._responses: DelayLine[Tuple[int, int, bool]] = DelayLine(
            config.credit_latency
        )
        self._credit_return: DelayLine[CreditCounter] = DelayLine(
            config.credit_latency
        )
        # Per output: crosspoints currently holding flits, so the
        # output stage skips the O(k) head scan of empty columns.
        self._occupied: List[set] = [set() for _ in range(k)]
        self._head_delay = config.route_latency

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        self._deliver_responses()
        self._land_crosspoint_flits()
        self._output_stage()
        self._input_stage()
        for counter in self._credit_return.pop_ready(self.cycle):
            counter.restore()

    # ------------------------------------------------------------------

    def _input_stage(self) -> None:
        now = self.cycle
        for i in range(self.config.radix):
            if not self._in_active[i]:
                continue
            if not self.input_busy.free(i, now):
                continue
            sendable = [
                self._sendable(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([f is not None for f in sendable])
            if vc is None:
                continue
            flit = sendable[vc]
            invariant(flit is not None, "input arbiter granted a VC with "
                      "no sendable flit", cycle=self.cycle, port=i, vc=vc,
                      check="arbitration")
            self._credits[i][flit.dest].consume()
            self._awaiting[i][vc] = True
            self.input_busy.reserve(i, now, self.config.flit_cycles)
            self._to_crosspoint.push(now, (flit, i, flit.dest))
            self._in_flight += 1
            if self.hooks.stage_enter:
                self.hooks.emit_stage_enter(flit, "XB", flit.dest, now)

    def _sendable(self, i: int, vc: int) -> Optional[Flit]:
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        if self._awaiting[i][vc]:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        if flit.is_head and self.cycle - flit.injected_at < self._head_delay:
            return None
        if not self._credits[i][flit.dest].available:
            return None
        return flit

    def _land_crosspoint_flits(self) -> None:
        for flit, i, j in self._to_crosspoint.pop_ready(self.cycle):
            self._in_flight -= 1
            if flit.is_head:
                state = self.output_vcs[j]
                claim = flit.vc
                ok = state.is_free(claim) or state.owner(claim) == flit.packet_id
                if not ok:
                    # NACK: the flit is dropped at the crosspoint and
                    # its credit restored; the input will retry.
                    self.stats.nacks += 1
                    self.stats.spec_vc_failures += 1
                    self._credits[i][j].restore()
                    self._responses.push(self.cycle, (i, flit.vc, _NACK))
                    if self.hooks.spec_outcome:
                        self.hooks.emit_spec_outcome(
                            "xpva", False, j, self.cycle
                        )
                    continue
                state.allocate(claim, flit.packet_id)
                if self.hooks.spec_outcome:
                    self.hooks.emit_spec_outcome("xpva", True, j, self.cycle)
            flit.out_vc = flit.vc
            self.crosspoints[i][j].push(flit)
            self._occupied[j].add(i)
            self._responses.push(self.cycle, (i, flit.vc, _ACK))

    def _deliver_responses(self) -> None:
        for i, vc, ack in self._responses.pop_ready(self.cycle):
            self._awaiting[i][vc] = False
            if ack:
                # Retire the original copy held at the input.
                self.inputs[i][vc].pop()
                self._input_emptied(i)

    # ------------------------------------------------------------------

    def _output_stage(self) -> None:
        now = self.cycle
        k = self.config.radix
        for j in range(k):
            if not self._occupied[j]:
                continue
            if not self.output_busy.free(j, now):
                continue
            # Sorted so request order never depends on set iteration
            # order (the occupied set holds exactly the non-empty
            # crosspoints, in place of the old full head scan).
            winner = self._output_arb.grant(
                j, [(i, False) for i in sorted(self._occupied[j])]
            )
            if winner is None:
                continue
            flit = self.crosspoints[winner][j].pop()
            if not self.crosspoints[winner][j]:
                self._occupied[j].discard(winner)
            self._start_traversal(flit, j)
            self._credit_return.push(now, self._credits[winner][j])
            if self.hooks.credit:
                self.hooks.emit_credit(winner, flit.vc, now)

    # ------------------------------------------------------------------

    def busy(self) -> bool:
        if super().busy():
            return True
        # Credit restores still travelling back to the inputs.
        return bool(self._credit_return)

    def next_event(self, now: int) -> Optional[int]:
        horizon = super().next_event(now)
        due = self._credit_return.next_due()
        if due is not None and (horizon is None or due < horizon):
            horizon = due
        return horizon

    def _extra_occupancy(self) -> int:
        buffered = sum(len(q) for row in self.crosspoints for q in row)
        # Original flits retired on ACK are double-counted while a copy
        # is in flight or buffered; occupancy is used only as an
        # emptiness test, for which the overcount is harmless.
        return buffered + self._in_flight + len(self._responses)