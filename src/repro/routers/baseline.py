"""Low-radix baseline: input-queued crossbar with centralized allocation.

This is the reference design of Section 3 (Figures 4 and 5), "similar
to that used for a low-radix router": per-VC input buffers feed a
single crossbar; a centralized separable allocator performs virtual
channel allocation (VA) and switch allocation (SA) in a single cycle
each.  The paper stresses that this single-cycle centralized allocation
*does not scale* to high radix — it exists as the comparison point in
Figure 9 ("note that this represents an unrealistic design point since
the centralized single-cycle allocation does not scale").

Pipeline (Figure 5(b)): RC | VA | SA | ST for head flits, SA | ST for
body flits.  RC+VA are modeled as an eligibility delay of
``route_latency + 1`` cycles on head flits; SA happens in the cycle of
arbitration and switch traversal starts the same cycle, occupying the
input and output for ``flit_cycles`` cycles.

Even with multiple virtual channels, head-of-line blocking limits this
router to roughly 60% throughput on uniform random traffic [18], which
Figure 9 reproduces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.arbiter import RoundRobinArbiter
from ..core.config import RouterConfig
from ..core.errors import invariant
from ..core.flit import Flit
from .base import Router


class BaselineRouter(Router):
    """Input-queued crossbar with centralized single-cycle VA and SA."""

    # The centralized allocator has no observable intermediate stage:
    # the "RC" span measured by repro.trace covers the RC+VA eligibility
    # delay (route_latency + 1), and "ST" fires at the grant.
    TRACE_STAGES = ("RC", "ST")

    def __init__(self, config: RouterConfig) -> None:
        super().__init__(config)
        k, v = config.radix, config.num_vcs
        self._input_arb = [RoundRobinArbiter(v) for _ in range(k)]
        self._output_arb = [RoundRobinArbiter(k) for _ in range(k)]
        self._vc_pick = [RoundRobinArbiter(v) for _ in range(k)]
        # Output VC held by the in-progress packet of input VC (i, vc).
        self._alloc: Dict[Tuple[int, int], int] = {}
        # Head flits become eligible after the RC and VA pipe stages.
        self._head_delay = config.route_latency + 1

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        requests = self._gather_requests()
        self._grant(requests)

    def _gather_requests(self) -> Dict[int, List[Tuple[int, int, Flit]]]:
        """Input arbitration: one (input, vc, flit) request per free input.

        Returns a map from output port to its list of requests.
        """
        requests: Dict[int, List[Tuple[int, int, Flit]]] = {}
        now = self.cycle
        for i in range(self.config.radix):
            if not self._in_active[i]:
                continue
            if not self.input_busy.free(i, now):
                continue
            eligible = [
                self._eligible(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([e is not None for e in eligible])
            if vc is None:
                continue
            flit = eligible[vc]
            invariant(flit is not None, "input arbiter granted a VC with "
                      "no eligible flit", cycle=self.cycle, port=i, vc=vc,
                      check="arbitration")
            requests.setdefault(flit.dest, []).append((i, vc, flit))
        return requests

    def _eligible(self, i: int, vc: int) -> Optional[Flit]:
        """The head-of-queue flit of (i, vc) if it may bid this cycle."""
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        if flit.is_head and (i, vc) not in self._alloc:
            # Head flit: RC/VA pipeline delay, then requires a free
            # output VC (the centralized VA is done with the grant).
            if self.cycle - flit.injected_at < self._head_delay:
                return None
            if not self.output_vcs[flit.dest].any_free():
                return None
        return flit

    def _grant(self, requests: Dict[int, List[Tuple[int, int, Flit]]]) -> None:
        """Output arbitration and centralized VA for the winners."""
        now = self.cycle
        k = self.config.radix
        for out, reqs in requests.items():
            if not self.output_busy.free(out, now):
                self.stats.switch_denials += len(reqs)
                continue
            lines = [False] * k
            by_input = {}
            for i, vc, flit in reqs:
                lines[i] = True
                by_input[i] = (vc, flit)
            winner = self._output_arb[out].arbitrate(lines)
            if winner is None:
                continue
            vc, flit = by_input[winner]
            self._transmit(winner, vc, flit, out)
            self.stats.switch_denials += len(reqs) - 1

    def _transmit(self, i: int, vc: int, flit: Flit, out: int) -> None:
        """Pop the granted flit and start its switch traversal."""
        key = (i, vc)
        if flit.is_head and key not in self._alloc:
            out_vc = self._allocate_vc(out, flit.packet_id)
            self._alloc[key] = out_vc
        flit.out_vc = self._alloc[key]
        if flit.is_tail:
            del self._alloc[key]
        popped = self.inputs[i][vc].pop()
        invariant(popped is flit, "input buffer head changed between "
                  "grant and pop", cycle=self.cycle, port=i, vc=vc,
                  check="buffer-integrity")
        self._input_emptied(i)
        self.input_busy.reserve(i, self.cycle, self.config.flit_cycles)
        self._start_traversal(flit, out)

    def _allocate_vc(self, out: int, packet_id: int) -> int:
        """Centralized VA: round-robin among the output's free VCs."""
        free = [self.output_vcs[out].is_free(vc) for vc in range(self.config.num_vcs)]
        out_vc = self._vc_pick[out].arbitrate(free)
        if out_vc is None:
            raise RuntimeError("VA invoked with no free output VC")
        self.output_vcs[out].allocate(out_vc, packet_id)
        return out_vc
