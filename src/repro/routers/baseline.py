"""Low-radix baseline: input-queued crossbar with centralized allocation.

This is the reference design of Section 3 (Figures 4 and 5), "similar
to that used for a low-radix router": per-VC input buffers feed a
single crossbar; a centralized separable allocator performs virtual
channel allocation (VA) and switch allocation (SA) in a single cycle
each.  The paper stresses that this single-cycle centralized allocation
*does not scale* to high radix — it exists as the comparison point in
Figure 9 ("note that this represents an unrealistic design point since
the centralized single-cycle allocation does not scale").

Pipeline (Figure 5(b)): RC | VA | SA | ST for head flits, SA | ST for
body flits.  RC+VA are modeled as an eligibility delay of
``route_latency + 1`` cycles on head flits; SA happens in the cycle of
arbitration and switch traversal starts the same cycle, occupying the
input and output for ``flit_cycles`` cycles.

Even with multiple virtual channels, head-of-line blocking limits this
router to roughly 60% throughput on uniform random traffic [18], which
Figure 9 reproduces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.arbiter import BatchArbiterBank, RoundRobinArbiter, _np
from ..core.batch import (
    HAVE_NUMPY,
    ArrayBusyTracker,
    QueueArrays,
    mirror_output_vcs,
    mirror_vc_bank,
)
from ..core.config import RouterConfig
from ..core.errors import invariant
from ..core.flit import Flit
from .base import Router


class BaselineRouter(Router):
    """Input-queued crossbar with centralized single-cycle VA and SA."""

    # The centralized allocator has no observable intermediate stage:
    # the "RC" span measured by repro.trace covers the RC+VA eligibility
    # delay (route_latency + 1), and "ST" fires at the grant.
    TRACE_STAGES = ("RC", "ST")

    def __init__(self, config: RouterConfig) -> None:
        super().__init__(config)
        k, v = config.radix, config.num_vcs
        self._input_arb = [RoundRobinArbiter(v) for _ in range(k)]
        self._output_arb = [RoundRobinArbiter(k) for _ in range(k)]
        self._vc_pick = [RoundRobinArbiter(v) for _ in range(k)]
        # Output VC held by the in-progress packet of input VC (i, vc).
        self._alloc: Dict[Tuple[int, int], int] = {}
        # Head flits become eligible after the RC and VA pipe stages.
        self._head_delay = config.route_latency + 1
        self._batch = bool(config.batch_hot_path) and HAVE_NUMPY
        if self._batch:
            self._init_batch()

    def _init_batch(self) -> None:
        """Struct-of-arrays mirrors for the batched request gather.

        Only the per-cycle eligibility scan is batched; the grant loop
        (output arbitration, VA, transmits) keeps its scalar form so
        stats and delay-line insertion order are untouched.  See
        ``repro.core.batch`` for the mirroring contract.
        """
        k, v = self.config.radix, self.config.num_vcs
        self._b_in = QueueArrays(k * v)
        for i, bank in enumerate(self.inputs):
            mirror_vc_bank(bank, self._b_in, i * v)
        self._b_vc_owner = _np.full(k * v, -1, dtype=_np.int64)
        self.output_vcs = mirror_output_vcs(self.output_vcs, self._b_vc_owner)
        # _b_alloc2[i, vc] mirrors (i, vc) in self._alloc; maintained at
        # the two _alloc mutation sites in _transmit.
        self._b_alloc2 = _np.zeros((k, v), dtype=bool)
        self.input_busy = ArrayBusyTracker(k)
        self.output_busy = ArrayBusyTracker(k)
        self._input_arb_b = BatchArbiterBank(k, v)

    # ------------------------------------------------------------------

    def _advance(self) -> None:
        if self._batch:
            requests = self._gather_requests_batched()
        else:
            requests = self._gather_requests()
        self._grant(requests)

    def _gather_requests(self) -> Dict[int, List[Tuple[int, int, Flit]]]:
        """Input arbitration: one (input, vc, flit) request per free input.

        Returns a map from output port to its list of requests.
        """
        requests: Dict[int, List[Tuple[int, int, Flit]]] = {}
        now = self.cycle
        for i in range(self.config.radix):
            if not self._in_active[i]:
                continue
            if not self.input_busy.free(i, now):
                continue
            eligible = [
                self._eligible(i, vc) for vc in range(self.config.num_vcs)
            ]
            vc = self._input_arb[i].arbitrate([e is not None for e in eligible])
            if vc is None:
                continue
            flit = eligible[vc]
            invariant(flit is not None, "input arbiter granted a VC with "
                      "no eligible flit", cycle=self.cycle, port=i, vc=vc,
                      check="arbitration")
            requests.setdefault(flit.dest, []).append((i, vc, flit))
        return requests

    def _gather_requests_batched(self) -> Dict[int, List[Tuple[int, int, Flit]]]:
        """Whole-matrix equivalent of :meth:`_gather_requests`.

        The gather is a pure read of pre-stage state (its only state
        change is input-arbiter pointer motion), so one vectorized
        eligibility matrix over the free inputs reproduces the scalar
        ascending-i scan exactly; skipped rows are all-False rows for
        the arbiter bank (no grant, no pointer motion either way).
        """
        now = self.cycle
        k, v = self.config.radix, self.config.num_vcs
        a = self._b_in
        requests: Dict[int, List[Tuple[int, int, Flit]]] = {}
        free = _np.nonzero(self.input_busy.array <= now)[0]
        if not free.size:
            return requests
        eligible = a.occ.reshape(k, v)[free] > 0
        if not eligible.any():
            return requests
        # Head flits without a held output VC wait out the RC/VA delay
        # and need a free VC at their destination (_eligible's gating).
        gated = a.head.reshape(k, v)[free] & ~self._b_alloc2[free]
        if gated.any():
            young = (now - a.inj.reshape(k, v)[free]) < self._head_delay
            no_free = (self._b_vc_owner.reshape(k, v) >= 0).all(axis=1)
            # Stale keys of empty queues may index arbitrary outputs,
            # but those lanes are already masked off by occ > 0.
            eligible &= ~(gated & (young | no_free[a.key.reshape(k, v)[free]]))
        if self._stuck_inputs:
            for (i, vc) in sorted(self._stuck_inputs):
                pos = int(_np.searchsorted(free, i))
                if pos < free.size and free[pos] == i:
                    eligible[pos, vc] = False
        winners = self._input_arb_b.arbitrate_rows(free, eligible)
        for pos in _np.nonzero(winners >= 0)[0].tolist():
            i = int(free[pos])
            vc = int(winners[pos])
            flit = self.inputs[i].queues[vc].head()
            invariant(flit is not None, "batched input arbitration granted "
                      "a VC with no eligible flit", cycle=now, port=i,
                      vc=vc, check="arbitration")
            requests.setdefault(flit.dest, []).append((i, vc, flit))
        return requests

    def _eligible(self, i: int, vc: int) -> Optional[Flit]:
        """The head-of-queue flit of (i, vc) if it may bid this cycle."""
        if self._stuck_inputs and (i, vc) in self._stuck_inputs:
            return None
        flit = self.inputs[i][vc].head()
        if flit is None:
            return None
        if flit.is_head and (i, vc) not in self._alloc:
            # Head flit: RC/VA pipeline delay, then requires a free
            # output VC (the centralized VA is done with the grant).
            if self.cycle - flit.injected_at < self._head_delay:
                return None
            if not self.output_vcs[flit.dest].any_free():
                return None
        return flit

    def _grant(self, requests: Dict[int, List[Tuple[int, int, Flit]]]) -> None:
        """Output arbitration and centralized VA for the winners."""
        now = self.cycle
        k = self.config.radix
        for out, reqs in requests.items():
            if not self.output_busy.free(out, now):
                self.stats.switch_denials += len(reqs)
                continue
            lines = [False] * k
            by_input = {}
            for i, vc, flit in reqs:
                lines[i] = True
                by_input[i] = (vc, flit)
            winner = self._output_arb[out].arbitrate(lines)
            if winner is None:
                continue
            vc, flit = by_input[winner]
            self._transmit(winner, vc, flit, out)
            self.stats.switch_denials += len(reqs) - 1

    def _transmit(self, i: int, vc: int, flit: Flit, out: int) -> None:
        """Pop the granted flit and start its switch traversal."""
        key = (i, vc)
        if flit.is_head and key not in self._alloc:
            out_vc = self._allocate_vc(out, flit.packet_id)
            self._alloc[key] = out_vc
            if self._batch:
                self._b_alloc2[i, vc] = True
        flit.out_vc = self._alloc[key]
        if flit.is_tail:
            del self._alloc[key]
            if self._batch:
                self._b_alloc2[i, vc] = False
        popped = self.inputs[i][vc].pop()
        invariant(popped is flit, "input buffer head changed between "
                  "grant and pop", cycle=self.cycle, port=i, vc=vc,
                  check="buffer-integrity")
        self._input_emptied(i)
        self.input_busy.reserve(i, self.cycle, self.config.flit_cycles)
        self._start_traversal(flit, out)

    def _allocate_vc(self, out: int, packet_id: int) -> int:
        """Centralized VA: round-robin among the output's free VCs."""
        free = [self.output_vcs[out].is_free(vc) for vc in range(self.config.num_vcs)]
        out_vc = self._vc_pick[out].arbitrate(free)
        if out_vc is None:
            raise RuntimeError("VA invoked with no free output VC")
        self.output_vcs[out].allocate(out_vc, packet_id)
        return out_vc
