"""Credit-loop buffer sizing (Section 5.2).

"The required size of the crosspoint buffers is determined by the
credit latency — the latency between when the buffer count is
decremented at the input and when the credit is returned in an
unloaded switch."

For a buffer drained at one flit per ``flit_cycles`` cycles to sustain
full throughput, its depth must cover the credit round trip: the
forward flit delivery, the wait until the buffer's consumer can next
accept a flit (up to ``flit_cycles - 1`` cycles of alignment), and the
credit's return (including any arbitration slack on a shared credit
bus).  The credit itself is issued the moment the flit *leaves* the
buffer, so the consumer's own serialization is not part of the loop.
This module provides that arithmetic, both for the crosspoint buffers
of the fully buffered crossbar and for generic credit loops (subswitch
boundaries, network channels), and explains the Figure 14(a) result —
four-flit buffers suffice for the paper's timing — as a consequence.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.config import RouterConfig


def credit_round_trip(
    forward_latency: int,
    credit_latency: int,
    flit_cycles: int,
    service_wait: Optional[int] = None,
) -> int:
    """Cycles from consuming a credit to having it back.

    Args:
        forward_latency: Cycles for a flit to reach the buffer after
            the sender spends the credit.
        credit_latency: Cycles for the returned credit to reach the
            sender after the flit departs the buffer.
        flit_cycles: Consumer service period (one flit accepted per
            ``flit_cycles`` cycles).
        service_wait: Cycles a flit waits at the buffer head for the
            consumer; defaults to the worst-case alignment
            ``flit_cycles - 1``.  Pass 0 for the best case.
    """
    if forward_latency < 0 or credit_latency < 0:
        raise ValueError("latencies must be >= 0")
    if flit_cycles < 1:
        raise ValueError(f"flit_cycles must be >= 1, got {flit_cycles}")
    if service_wait is None:
        service_wait = flit_cycles - 1
    if service_wait < 0:
        raise ValueError(f"service_wait must be >= 0, got {service_wait}")
    return forward_latency + service_wait + credit_latency


def required_depth(
    forward_latency: int,
    credit_latency: int,
    flit_cycles: int,
    service_wait: Optional[int] = None,
) -> int:
    """Buffer depth needed to sustain one flit per ``flit_cycles``.

    Little's law on the credit loop: at full rate the sender issues a
    flit every ``flit_cycles`` cycles, so it needs
    ``ceil(round_trip / flit_cycles)`` credits in flight.
    """
    rt = credit_round_trip(
        forward_latency, credit_latency, flit_cycles, service_wait
    )
    return math.ceil(rt / flit_cycles)


def crosspoint_required_depth(config: RouterConfig) -> int:
    """Depth the fully buffered crossbar's crosspoint buffers need.

    Forward path: the input-row traversal (``flit_cycles``).  Return
    path: the shared credit bus (``credit_latency``, plus up to
    ``flit_cycles - 1`` cycles of bus re-arbitration slack in the
    worst case — the paper notes a losing crosspoint "has 3 additional
    cycles to re-arbitrate ... without affecting the throughput").
    """
    worst_credit = config.credit_latency + (config.flit_cycles - 1)
    return required_depth(
        forward_latency=config.flit_cycles,
        credit_latency=worst_credit,
        flit_cycles=config.flit_cycles,
    )


def max_throughput_fraction(
    depth: int,
    forward_latency: int,
    credit_latency: int,
    flit_cycles: int,
    service_wait: Optional[int] = None,
) -> float:
    """Throughput ceiling imposed by a ``depth``-flit credited buffer.

    With fewer credits than the round trip needs, the sender stalls:
    it can move at most ``depth`` flits per round trip.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    rt = credit_round_trip(
        forward_latency, credit_latency, flit_cycles, service_wait
    )
    peak = depth * flit_cycles / rt
    return min(1.0, peak)
