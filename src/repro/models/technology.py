"""Technology presets used by the analytical models (Section 2).

The paper anchors its latency and cost analysis on four technology
points (footnote 3):

* 1991 — J-Machine: B = 3.84 Gb/s, t_r = 62 ns, N = 1024, L = 128 bits
* 1996 — Cray T3E: B = 64 Gb/s, t_r = 40 ns, N = 2048, L = 128 bits
* 2003 — SGI Altix 3000: B = 0.4 Tb/s, t_r = 25 ns, N = 1024, L = 128 bits
* 2010 — estimate: B = 20 Tb/s, t_r = 5 ns, N = 2048, L = 256 bits

These give the aspect ratios annotated in Figure 2 (≈554 for 2003 and
≈2978 for 2010) and the optimal radices of Section 2 (≈40 for 2003,
≈127 for 2010).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Network technology operating point.

    Attributes:
        name: Human-readable label (usually the year).
        bandwidth: Total router bandwidth B, bits/second.
        router_delay: Per-hop router delay t_r, seconds.
        num_nodes: Network size N.
        packet_length: Packet length L, bits.
        year: Calendar year of the operating point.
    """

    name: str
    bandwidth: float
    router_delay: float
    num_nodes: int
    packet_length: int
    year: int

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.router_delay <= 0:
            raise ValueError(
                f"router_delay must be > 0, got {self.router_delay}"
            )
        if self.num_nodes < 2:
            raise ValueError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.packet_length < 1:
            raise ValueError(
                f"packet_length must be >= 1, got {self.packet_length}"
            )

    @property
    def aspect_ratio(self) -> float:
        """A = B * t_r * ln(N) / L (Section 2, Equation 3).

        A high aspect ratio calls for a "tall, skinny" router (many
        narrow channels); a low ratio for a "short, fat" one.
        """
        return (
            self.bandwidth
            * self.router_delay
            * math.log(self.num_nodes)
            / self.packet_length
        )


TECH_1991 = Technology("1991 (J-Machine)", 3.84e9, 62e-9, 1024, 128, 1991)
TECH_1996 = Technology("1996 (Cray T3E)", 64e9, 40e-9, 2048, 128, 1996)
TECH_2003 = Technology("2003 (SGI Altix 3000)", 0.4e12, 25e-9, 1024, 128, 2003)
TECH_2010 = Technology("2010 (estimate)", 20e12, 5e-9, 2048, 256, 2010)

ALL_TECHNOLOGIES = (TECH_1991, TECH_1996, TECH_2003, TECH_2010)
