"""Router power breakdown (Section 2's power argument).

The paper's claim: "the power of an individual router node is largely
independent of the radix as long as the total router bandwidth is held
constant.  Router power is largely due to I/O circuits and switch
bandwidth.  The arbitration logic, which becomes more complex as radix
increases, represents a negligible fraction of total power [33]."

This module makes the claim checkable: a per-router power model with
I/O, switch-datapath, buffer, and arbitration components, parameterized
by energy constants (defaults loosely follow the relative magnitudes in
Wang-Peh-Malik [33], where datapath and I/O dwarf control).  At fixed
total bandwidth, only the arbitration term grows with radix — and
stays a few percent of the total across the whole sweep, which is what
licenses the network-level conclusion that power tracks router *count*
(see :func:`repro.models.cost.network_power`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PowerModel:
    """Per-router power, watts, at fixed total bandwidth B.

    Attributes:
        io_energy_pj_per_bit: Off-chip signaling energy per bit.
        switch_energy_pj_per_bit: Crossbar datapath energy per bit.
        buffer_energy_pj_per_bit: Buffer read+write energy per bit.
        arbiter_power_per_port_mw: Arbitration/control power per port
            (the only radix-dependent term; grows as k log k for the
            distributed allocator's request/grant trees).
    """

    io_energy_pj_per_bit: float = 10.0
    switch_energy_pj_per_bit: float = 2.0
    buffer_energy_pj_per_bit: float = 1.0
    arbiter_power_per_port_mw: float = 0.2

    def io_power(self, bandwidth: float) -> float:
        """I/O power at total bandwidth ``bandwidth`` bits/s, watts."""
        return self.io_energy_pj_per_bit * 1e-12 * bandwidth

    def switch_power(self, bandwidth: float) -> float:
        return self.switch_energy_pj_per_bit * 1e-12 * bandwidth

    def buffer_power(self, bandwidth: float) -> float:
        return self.buffer_energy_pj_per_bit * 1e-12 * bandwidth

    def arbitration_power(self, radix: int) -> float:
        """Control power, watts; grows as k log2(k)."""
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        return (
            self.arbiter_power_per_port_mw
            * 1e-3
            * radix
            * math.log2(radix)
        )

    def router_power(self, radix: int, bandwidth: float) -> float:
        """Total router power at fixed bandwidth, watts."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        return (
            self.io_power(bandwidth)
            + self.switch_power(bandwidth)
            + self.buffer_power(bandwidth)
            + self.arbitration_power(radix)
        )

    def breakdown(self, radix: int, bandwidth: float) -> Dict[str, float]:
        """Per-component power, watts."""
        return {
            "io": self.io_power(bandwidth),
            "switch": self.switch_power(bandwidth),
            "buffers": self.buffer_power(bandwidth),
            "arbitration": self.arbitration_power(radix),
        }

    def arbitration_fraction(self, radix: int, bandwidth: float) -> float:
        """Share of router power spent on arbitration.

        The paper's claim is that this stays negligible across the
        radix sweep — a few percent even at radix 256 for terabit
        routers.
        """
        return self.arbitration_power(radix) / self.router_power(
            radix, bandwidth
        )
