"""Network cost and power models (Section 2, Figure 3(b)).

"Network cost is largely due to router pins and connectors and hence is
roughly proportional to total router bandwidth: the number of channels
times their bandwidth.  For a fixed network bisection bandwidth, this
cost is proportional to hop count."  Since every packet crosses
H = 2 log_k N routers, an N-node network needs N*H/k routers of radix
k, i.e. N*H channels in total; raising the radix shrinks the hop count
and with it both channel count and cost.

"Power dissipated by a network also decreases with increasing radix":
power is roughly proportional to the number of router nodes (router
power is dominated by I/O circuits and switch bandwidth, both fixed for
fixed per-router bandwidth B; "the arbitration logic ... represents a
negligible fraction of total power").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .latency import hop_count
from .technology import Technology


def channel_count(radix: int, num_nodes: int) -> float:
    """Total network channels: N * H(k)."""
    return num_nodes * hop_count(radix, num_nodes)


def router_count(radix: int, num_nodes: int) -> float:
    """Routers needed: N * H(k) / k."""
    return channel_count(radix, num_nodes) / radix


def network_cost(radix: int, tech: Technology, unit_cost: float = 1.0) -> float:
    """Cost in units of ``unit_cost`` per channel (Figure 3(b) uses
    thousands of channels, i.e. ``unit_cost = 1000``)."""
    if unit_cost <= 0:
        raise ValueError(f"unit_cost must be > 0, got {unit_cost}")
    return channel_count(radix, tech.num_nodes) / unit_cost


def network_power(
    radix: int, tech: Technology, router_power: float = 1.0
) -> float:
    """Power in units of one router's dissipation."""
    return router_count(radix, tech.num_nodes) * router_power


def cost_vs_radix(
    tech: Technology, radices: Sequence[int], unit_cost: float = 1000.0
) -> List[Tuple[int, float]]:
    """(k, cost in thousands of channels) series for Figure 3(b)."""
    return [(k, network_cost(k, tech, unit_cost)) for k in radices]


def power_vs_radix(
    tech: Technology, radices: Sequence[int]
) -> List[Tuple[int, float]]:
    """(k, relative network power) series."""
    return [(k, network_power(k, tech)) for k in radices]
