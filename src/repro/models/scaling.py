"""Historical router pin-bandwidth scaling (Figure 1).

Figure 1 plots the pin bandwidth of router chips over twenty years and
observes "an order of magnitude increase in the off-chip bandwidth
approximately every five years".  The paper's exact per-machine numbers
are read off its log-scale plot; the dataset below transcribes the
machines from the figure legend with bandwidths taken from the paper
where stated (J-Machine, Cray T3E, SGI Altix 3000, 2010 estimate) and
from the cited machine references elsewhere (approximate, to within the
plot's resolution).

``fit_exponential`` reproduces the dotted trend line: a least-squares
fit of log10(bandwidth) against year, whose slope corresponds to the
roughly 10x-per-5-years growth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class RouterDataPoint:
    """One router chip: name, year, and pin bandwidth in Gb/s."""

    name: str
    year: int
    bandwidth_gbps: float
    highest_of_era: bool = False


#: Machines from Figure 1's legend.  Bandwidths marked in the paper's
#: text or footnotes are exact; the rest are approximate transcriptions.
ROUTER_SCALING_DATA: Tuple[RouterDataPoint, ...] = (
    RouterDataPoint("Torus Routing Chip", 1985, 0.24),
    RouterDataPoint("Intel iPSC/2", 1988, 0.35),
    RouterDataPoint("J-Machine", 1991, 3.84, highest_of_era=True),
    RouterDataPoint("CM-5", 1993, 1.6),
    RouterDataPoint("Intel Paragon XP", 1992, 6.4),
    RouterDataPoint("Cray T3D", 1993, 9.6),
    RouterDataPoint("MIT Alewife", 1994, 3.6),
    RouterDataPoint("IBM Vulcan", 1994, 4.5),
    RouterDataPoint("Cray T3E", 1996, 64.0, highest_of_era=True),
    RouterDataPoint("SGI Origin 2000", 1997, 25.0),
    RouterDataPoint("AlphaServer GS320", 2000, 51.2),
    RouterDataPoint("IBM SP Switch2", 2000, 64.0),
    RouterDataPoint("Quadrics QsNet", 2002, 87.0),
    RouterDataPoint("Cray X1", 2003, 102.0),
    RouterDataPoint("Velio 3003", 2003, 1000.0, highest_of_era=True),
    RouterDataPoint("IBM HPS", 2003, 64.0),
    RouterDataPoint("SGI Altix 3000", 2003, 400.0),
    RouterDataPoint("2010 estimate", 2010, 20000.0, highest_of_era=True),
)


def fit_exponential(
    data: Sequence[RouterDataPoint] = ROUTER_SCALING_DATA,
) -> Tuple[float, float]:
    """Least-squares fit of log10(bandwidth) = a + b * year.

    Returns (a, b); ``10**b`` is the annual growth factor.
    """
    if len(data) < 2:
        raise ValueError("need at least two data points to fit")
    xs = [float(d.year) for d in data]
    ys = [math.log10(d.bandwidth_gbps) for d in data]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all data points share the same year")
    b = sxy / sxx
    a = mean_y - b * mean_x
    return a, b


def doubling_years(data: Sequence[RouterDataPoint] = ROUTER_SCALING_DATA) -> float:
    """Years for bandwidth to double along the fitted trend."""
    _, b = fit_exponential(data)
    return math.log10(2.0) / b


def growth_per_five_years(
    data: Sequence[RouterDataPoint] = ROUTER_SCALING_DATA,
) -> float:
    """Bandwidth multiplication over five years along the fit.

    The paper's observation is that this is roughly 10x.
    """
    _, b = fit_exponential(data)
    return 10.0 ** (5.0 * b)


def predicted_bandwidth_gbps(
    year: int, data: Sequence[RouterDataPoint] = ROUTER_SCALING_DATA
) -> float:
    """Bandwidth the fitted trend predicts for ``year``, in Gb/s."""
    a, b = fit_exponential(data)
    return 10.0 ** (a + b * year)


def frontier(
    data: Sequence[RouterDataPoint] = ROUTER_SCALING_DATA,
) -> List[RouterDataPoint]:
    """The highest-performance routers per era (the solid line of Fig 1)."""
    return [d for d in data if d.highest_of_era]
