"""Router area models (Figures 15 and 17(d)).

Two related questions from the paper:

* **Figure 15** — for the fully buffered crossbar in a 0.10 um process
  with v = 4, how do *storage* area (crosspoint + input buffers) and
  *wire* area (the crossbar datapath plus control/credit wiring) grow
  with radix?  The crossbar's datapath area is constant (total
  bandwidth is held constant as radix grows) while control wiring grows
  with k; storage grows as k^2 and overtakes wire area beyond radix
  ~50.
* **Figure 17(d)** — measured purely in storage bits, how do the fully
  buffered crossbar and hierarchical crossbars of various subswitch
  sizes compare?  Fully buffered storage is O(v k^2 d); a hierarchical
  crossbar needs only O(v k^2 d / p), and at k = 64, p = 8 (counting
  total router area, storage + wire) saves ~40% versus fully buffered.

Absolute mm^2 values in the paper come from the authors' layout
estimates; here the per-bit and per-track constants are calibrated so
that the storage/wire crossover lands at radix ~50 for the fully
buffered design (the paper's qualitative anchor), and all comparisons
between architectures are exact bit counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.config import RouterConfig

#: Flit width in bits: the paper's multiprocessor packets are 8-16 B
#: and its 2003 anchor uses 128-bit packets; one flit is taken as 64
#: bits of payload plus sideband, stored as 64 bits.
DEFAULT_FLIT_BITS = 64


# ----------------------------------------------------------------------
# Storage bit counts (exact, architecture by architecture)
# ----------------------------------------------------------------------


def input_buffer_bits(config: RouterConfig, flit_bits: int = DEFAULT_FLIT_BITS) -> int:
    """Input buffers common to every organization: k * v * depth flits."""
    return config.radix * config.num_vcs * config.input_buffer_depth * flit_bits


def baseline_storage_bits(
    config: RouterConfig, flit_bits: int = DEFAULT_FLIT_BITS
) -> int:
    """The unbuffered crossbar stores flits only at the inputs."""
    return input_buffer_bits(config, flit_bits)


def fully_buffered_storage_bits(
    config: RouterConfig, flit_bits: int = DEFAULT_FLIT_BITS
) -> int:
    """Input buffers + k^2 crosspoints, each with v per-VC buffers."""
    k, v, d = config.radix, config.num_vcs, config.crosspoint_buffer_depth
    return input_buffer_bits(config, flit_bits) + k * k * v * d * flit_bits


def shared_buffer_storage_bits(
    config: RouterConfig, flit_bits: int = DEFAULT_FLIT_BITS
) -> int:
    """Section 5.4: one shared buffer per crosspoint (v times smaller)."""
    k, d = config.radix, config.crosspoint_buffer_depth
    return input_buffer_bits(config, flit_bits) + k * k * d * flit_bits


def voq_storage_bits(
    config: RouterConfig,
    flit_bits: int = DEFAULT_FLIT_BITS,
    voq_depth: int = 4,
) -> int:
    """Section 8's VOQ comparison: k^2 v queues at the inputs.

    "VOQ adds O(k^2) buffering and becomes costly, especially as k
    increases" — the storage mirrors the fully buffered crossbar's,
    just placed at the inputs instead of the crosspoints.
    """
    k, v = config.radix, config.num_vcs
    return k * k * v * voq_depth * flit_bits


def hierarchical_storage_bits(
    config: RouterConfig, flit_bits: int = DEFAULT_FLIT_BITS
) -> int:
    """Input buffers + per-VC buffers at every subswitch boundary.

    (k/p)^2 subswitches, each with p input and p output lanes carrying
    v VC buffers: total grows as O(v k^2 / p) (Section 6).
    """
    k, v, p = config.radix, config.num_vcs, config.subswitch_size
    s = config.num_subswitches_per_side
    per_sub = p * v * (config.subswitch_in_depth + config.subswitch_out_depth)
    return input_buffer_bits(config, flit_bits) + s * s * per_sub * flit_bits


def storage_bits(
    architecture: str,
    config: RouterConfig,
    flit_bits: int = DEFAULT_FLIT_BITS,
) -> int:
    """Dispatch by architecture name used throughout the benchmarks."""
    table = {
        "baseline": baseline_storage_bits,
        "distributed": baseline_storage_bits,
        "buffered": fully_buffered_storage_bits,
        "shared_buffer": shared_buffer_storage_bits,
        "hierarchical": hierarchical_storage_bits,
        "voq": voq_storage_bits,
    }
    if architecture not in table:
        raise ValueError(
            f"unknown architecture {architecture!r}; expected one of "
            f"{sorted(table)}"
        )
    return table[architecture](config, flit_bits)


# ----------------------------------------------------------------------
# Area model (storage + wire), Figure 15
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AreaModel:
    """Converts bit counts and radix into area (mm^2, 0.10 um process).

    Attributes:
        bit_area_mm2: Area per storage bit, including overhead.
        crossbar_area_mm2: Fixed datapath area of the crossbar (total
            bandwidth, and hence datapath width, is held constant as
            radix changes).
        control_area_per_port_mm2: Wiring area added per port for
            request/grant distribution and credit return ("the increase
            in wire area with radix is due to increased control
            complexity").
    """

    bit_area_mm2: float = 2.9e-5
    crossbar_area_mm2: float = 48.0
    control_area_per_port_mm2: float = 0.6

    def storage_area(self, bits: int) -> float:
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return bits * self.bit_area_mm2

    def wire_area(self, radix: int) -> float:
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        return self.crossbar_area_mm2 + self.control_area_per_port_mm2 * radix

    def total_area(
        self,
        architecture: str,
        config: RouterConfig,
        flit_bits: int = DEFAULT_FLIT_BITS,
    ) -> float:
        bits = storage_bits(architecture, config, flit_bits)
        return self.storage_area(bits) + self.wire_area(config.radix)


def area_sweep(
    architecture: str,
    radices: Sequence[int],
    base_config: RouterConfig,
    model: AreaModel = AreaModel(),
    flit_bits: int = DEFAULT_FLIT_BITS,
) -> List[Tuple[int, float, float]]:
    """(k, storage area, wire area) over a radix sweep (Figure 15)."""
    rows = []
    for k in radices:
        cfg = base_config.with_(radix=k)
        bits = storage_bits(architecture, cfg, flit_bits)
        rows.append((k, model.storage_area(bits), model.wire_area(k)))
    return rows


def storage_crossover_radix(
    architecture: str,
    base_config: RouterConfig,
    model: AreaModel = AreaModel(),
    flit_bits: int = DEFAULT_FLIT_BITS,
    max_radix: int = 512,
) -> int:
    """Smallest radix at which storage area exceeds wire area.

    The paper reports ~50 for the fully buffered crossbar with v=4
    (Figure 15).  Only radices compatible with the configuration's
    subswitch size are considered.
    """
    p = base_config.subswitch_size
    for k in range(2, max_radix + 1):
        if k % p != 0 and architecture == "hierarchical":
            continue
        cfg = base_config.with_(radix=k) if k % p == 0 else base_config.with_(
            radix=k, subswitch_size=1
        )
        bits = storage_bits(architecture, cfg, flit_bits)
        if model.storage_area(bits) > model.wire_area(k):
            return k
    raise ValueError(f"no crossover up to radix {max_radix}")
