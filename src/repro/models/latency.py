"""Analytical latency model and optimal radix (Section 2, Eqs 1-3).

Under low load, packet latency is header latency plus serialization
latency:

    T = H * t_r + L / b                                      (Eq. 1)

For an N-node network of radix-k routers, H = 2 * log_k N hops are
needed (non-blocking network under uniform traffic) and each of the 2k
channels carries b = B / 2k, giving

    T(k) = 2 * t_r * log_k N + 2 k L / B                     (Eq. 2)

Setting dT/dk = 0 yields the latency-optimal radix as the solution of

    k* ln^2 k* = B * t_r * ln N / L  =  A                    (Eq. 3)

where A is the router *aspect ratio*.  (The paper prints Eq. 3 with an
unspecified logarithm base; natural logarithms reproduce its annotated
values — A = 554 giving k* = 40 for the 2003 technology and A = 2978
giving k* = 127 for 2010 — so natural logarithms are used here.)

The refinement t_r = t_cy (X + Y log2 k) (pipelined router delay) does
not change the optimal radix — the log k growth of router depth is
exactly offset by the 1/log k shrinkage of hop count — which
``optimal_radix_detailed`` demonstrates numerically.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .technology import Technology


def hop_count(radix: int, num_nodes: int) -> float:
    """H = 2 log_k N: hops through a non-blocking network."""
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    return 2.0 * math.log(num_nodes) / math.log(radix)


def header_latency(radix: int, tech: Technology) -> float:
    """T_h = H * t_r, seconds."""
    return hop_count(radix, tech.num_nodes) * tech.router_delay


def serialization_latency(radix: int, tech: Technology) -> float:
    """T_s = L / b with b = B / 2k, seconds."""
    channel_bandwidth = tech.bandwidth / (2.0 * radix)
    return tech.packet_length / channel_bandwidth


def packet_latency(radix: int, tech: Technology) -> float:
    """T(k) of Equation 2, seconds."""
    return header_latency(radix, tech) + serialization_latency(radix, tech)


def aspect_ratio(tech: Technology) -> float:
    """A = B t_r ln(N) / L (Equation 3's right-hand side)."""
    return tech.aspect_ratio


def optimal_radix_continuous(aspect: float) -> float:
    """Solve k ln^2 k = A for real k >= 2 (bisection).

    For A below the k=2 value of the left-hand side the optimum
    saturates at the minimum radix 2.
    """
    if aspect <= 0:
        raise ValueError(f"aspect ratio must be > 0, got {aspect}")

    def lhs(k: float) -> float:
        return k * math.log(k) ** 2

    lo, hi = 2.0, 2.0
    if lhs(lo) >= aspect:
        return 2.0
    while lhs(hi) < aspect:
        hi *= 2.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if lhs(mid) < aspect:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def optimal_radix(tech: Technology) -> int:
    """Integer radix minimizing T(k) of Equation 2 (exact search).

    Searches around the continuous solution of Equation 3 and returns
    the integer argmin, which also validates the closed form.
    """
    k_star = optimal_radix_continuous(tech.aspect_ratio)
    lo = max(2, int(k_star * 0.5))
    hi = max(lo + 2, int(k_star * 2.0) + 2)
    best = min(range(lo, hi + 1), key=lambda k: packet_latency(k, tech))
    return best


def latency_vs_radix(
    tech: Technology, radices: Sequence[int]
) -> List[Tuple[int, float]]:
    """(k, T(k) in seconds) series for Figure 3(a)."""
    return [(k, packet_latency(k, tech)) for k in radices]


# ----------------------------------------------------------------------
# Detailed (pipelined) router-delay refinement
# ----------------------------------------------------------------------


def pipelined_router_delay(
    radix: int, cycle_time: float, stages_fixed: float, stages_per_log: float
) -> float:
    """t_r = t_cy (X + Y log2 k): pipeline depth grows with log(k)."""
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    return cycle_time * (stages_fixed + stages_per_log * math.log2(radix))


def packet_latency_detailed(
    radix: int,
    tech: Technology,
    cycle_time: float,
    stages_fixed: float = 3.0,
    stages_per_log: float = 1.0,
) -> float:
    """Equation 2 with the radix-dependent router delay substituted."""
    t_r = pipelined_router_delay(radix, cycle_time, stages_fixed, stages_per_log)
    header = hop_count(radix, tech.num_nodes) * t_r
    return header + serialization_latency(radix, tech)


def optimal_radix_detailed(
    tech: Technology,
    cycle_time: float,
    stages_fixed: float = 3.0,
    stages_per_log: float = 1.0,
    max_radix: int = 1024,
) -> int:
    """Integer argmin of the detailed model (Section 2's claim is that
    the Y log2 k term leaves the optimum essentially unchanged)."""
    return min(
        range(2, max_radix + 1),
        key=lambda k: packet_latency_detailed(
            k, tech, cycle_time, stages_fixed, stages_per_log
        ),
    )


# ----------------------------------------------------------------------
# Time of flight (Section 2's final latency term)
# ----------------------------------------------------------------------

#: Signal propagation velocity in network cabling, m/s (~2/3 c).
DEFAULT_VELOCITY = 2.0e8


def time_of_flight(
    total_distance: float, velocity: float = DEFAULT_VELOCITY
) -> float:
    """T_tof = D / v, seconds.

    Section 2: "time of flight does not depend on the radix ... as
    radix increases, the distance between two router nodes increases.
    However, the *total* distance traveled by a packet will be
    approximately equal since a lower-radix network requires more
    hops."  The term therefore shifts every latency curve uniformly
    and has no effect on the optimal radix.
    """
    if total_distance < 0:
        raise ValueError(f"total_distance must be >= 0, got {total_distance}")
    if velocity <= 0:
        raise ValueError(f"velocity must be > 0, got {velocity}")
    return total_distance / velocity


def packet_latency_with_flight(
    radix: int,
    tech: Technology,
    total_distance: float,
    velocity: float = DEFAULT_VELOCITY,
) -> float:
    """Equation 2 plus the radix-independent time-of-flight term."""
    return packet_latency(radix, tech) + time_of_flight(
        total_distance, velocity
    )
