"""Struct-of-arrays mirrors for the batched hot path.

The batched arbitration path (``config.batch_hot_path``) replaces the
per-flit Python scans of the eligibility loops with whole-matrix numpy
operations.  For that to work without walking every buffer each cycle,
the scan inputs — queue occupancies, head-flit facts, credit
availability, output-VC ownership, resource busy horizons — must
already live in flat arrays.  This module provides drop-in subclasses
of the scalar state primitives that keep such arrays up to date
*incrementally*: every mutation path (push/pop/clear, consume/restore,
allocate/release, reserve/extend) writes its one array slot as it runs,
so the arrays are consistent with the objects at every instant and the
batched stages only ever read them.

Mirroring is a construction-time substitution: the scalar objects are
replaced (while empty / full / idle) by mirrored twins sharing arrays
with the router.  Scalar semantics are inherited wholesale — each
override calls ``super()`` first and then updates its slot — so the
mirrored objects are byte-identical stand-ins on the scalar path too.

Snapshot interop: the arrays live both on the router (for the stage
math) and inside the mirrored objects (for the incremental writes), as
the *same* array objects.  ``Component.snapshot`` deep-copies the whole
state dict in one pass, so the deepcopy memo preserves that aliasing
and a restored router keeps writing through to the arrays it reads.
Persistent references must therefore always be to the flat base arrays
— numpy's ``__deepcopy__`` does not preserve base/view relationships,
so reshaped views are created fresh inside each stage instead of being
stored.
"""

from __future__ import annotations

from typing import List, Optional

from .arbiter import HAVE_NUMPY, _np
from .buffers import FlitQueue, VcBufferBank
from .credit import CreditCounter
from .errors import invariant
from .flit import Flit
from .pipeline import BusyTracker
from .vcstate import OutputVcState

__all__ = [
    "HAVE_NUMPY",
    "QueueArrays",
    "MirroredFlitQueue",
    "MirroredCreditCounter",
    "MirroredOutputVcState",
    "ArrayBusyTracker",
    "mirror_vc_bank",
    "mirror_credit_array",
    "mirror_output_vcs",
]


class QueueArrays:
    """Flat per-queue fact arrays shared by a family of mirrored queues.

    One slot per queue: occupancy, and the head flit's ``is_head`` flag,
    routing key (destination port, or next route hop), injection cycle,
    and packet id.  Head-flit slots are stale while a queue is empty;
    every batched consumer masks them with ``occ > 0`` first.
    """

    __slots__ = ("occ", "head", "key", "inj", "pid")

    def __init__(self, count: int) -> None:
        self.occ = _np.zeros(count, dtype=_np.int64)
        self.head = _np.zeros(count, dtype=bool)
        self.key = _np.full(count, -1, dtype=_np.int64)
        self.inj = _np.zeros(count, dtype=_np.int64)
        self.pid = _np.full(count, -1, dtype=_np.int64)


class MirroredFlitQueue(FlitQueue):
    """A :class:`FlitQueue` that mirrors its state into shared arrays.

    ``route_key=True`` keys on the head flit's next route hop (the
    network routers' output port; -1 when the route is exhausted)
    instead of its switch destination.  Safe because every fact written
    is settled before the push that exposes it: ``injected_at`` is
    stamped in ``accept`` before the push, ``hops`` is incremented
    before delivery into the next router's queue, and ``dest`` /
    ``packet_id`` / ``is_head`` are immutable while buffered.
    """

    __slots__ = ("_idx", "_arrays", "_route_key")

    def __init__(
        self,
        maxlen: Optional[int],
        idx: int,
        arrays: QueueArrays,
        route_key: bool = False,
    ) -> None:
        super().__init__(maxlen)
        self._idx = idx
        self._arrays = arrays
        self._route_key = route_key

    def _write_head(self, flit: Flit) -> None:
        a, i = self._arrays, self._idx
        a.head[i] = flit.is_head
        a.pid[i] = flit.packet_id
        a.inj[i] = flit.injected_at
        if self._route_key:
            hops, route = flit.hops, flit.route
            a.key[i] = route[hops] if hops < len(route) else -1
        else:
            a.key[i] = flit.dest

    def push(self, flit: Flit) -> None:
        super().push(flit)
        n = len(self._q)
        self._arrays.occ[self._idx] = n
        if n == 1:
            self._write_head(flit)

    def pop(self) -> Flit:
        flit = super().pop()
        q = self._q
        self._arrays.occ[self._idx] = len(q)
        if q:
            self._write_head(q[0])
        return flit

    def clear(self) -> List[Flit]:
        drained = super().clear()
        self._arrays.occ[self._idx] = 0
        return drained


class MirroredCreditCounter(CreditCounter):
    """A :class:`CreditCounter` mirroring its go/no-go bit into an array.

    ``ok[idx]`` holds the combined :attr:`available` predicate
    (``free > 0 and not stuck``) so the batched eligibility scan needs a
    single gather.  ``stuck`` becomes a property (shadowing the parent
    slot) so fault injectors that assign ``counter.stuck`` directly keep
    the array in sync.
    """

    __slots__ = ("_idx", "_ok", "_stuck")

    def __init__(self, capacity: int, idx: int, ok) -> None:
        # Child slots must exist before the parent constructor runs:
        # it assigns ``self.stuck``, which lands on the property below.
        self._idx = idx
        self._ok = ok
        super().__init__(capacity)

    @property
    def stuck(self) -> bool:
        return self._stuck

    @stuck.setter
    def stuck(self, value: bool) -> None:
        self._stuck = value
        self._ok[self._idx] = self._free > 0 and not value

    def consume(self) -> None:
        super().consume()
        self._ok[self._idx] = self._free > 0 and not self._stuck

    def restore(self) -> None:
        super().restore()
        self._ok[self._idx] = self._free > 0 and not self._stuck


class MirroredOutputVcState(OutputVcState):
    """An :class:`OutputVcState` mirroring owners into a flat array.

    ``owner_arr[base + vc]`` is the owning packet id, -1 when free.
    """

    __slots__ = ("_base", "_owner_arr")

    def __init__(self, num_vcs: int, base: int, owner_arr) -> None:
        super().__init__(num_vcs)
        self._base = base
        self._owner_arr = owner_arr

    def allocate(self, vc: int, packet_id: int) -> None:
        super().allocate(vc, packet_id)
        self._owner_arr[self._base + vc] = packet_id

    def release(self, vc: int, packet_id: int) -> None:
        super().release(vc, packet_id)
        self._owner_arr[self._base + vc] = -1


class ArrayBusyTracker(BusyTracker):
    """A :class:`BusyTracker` whose horizon vector is a numpy array.

    The inherited scalar methods index the array directly; batched
    stages read ``array <= now`` as the free mask in one comparison.
    """

    __slots__ = ()

    def __init__(self, count: int) -> None:
        super().__init__(count)
        self._busy_until = _np.zeros(count, dtype=_np.int64)

    @property
    def array(self):
        """The underlying busy-until vector (read-only by convention)."""
        return self._busy_until

    def busy_until(self, idx: int) -> int:
        return int(self._busy_until[idx])

    def any_busy(self, now: int) -> bool:
        return bool((self._busy_until > now).any())


# ----------------------------------------------------------------------
# Construction-time substitution helpers
# ----------------------------------------------------------------------


def mirror_vc_bank(
    bank: VcBufferBank,
    arrays: QueueArrays,
    base: int,
    route_key: bool = False,
) -> None:
    """Replace ``bank``'s queues with mirrored twins at ``base + vc``.

    Only valid while the bank is empty (mirroring happens at
    construction / attach time, before any traffic).
    """
    invariant(len(bank) == 0, "cannot mirror a non-empty buffer bank",
              check="batch-mirror")
    bank.queues = [
        MirroredFlitQueue(q.maxlen, base + vc, arrays, route_key)
        for vc, q in enumerate(bank.queues)
    ]


def mirror_credit_array(counters: List[CreditCounter], ok, base: int) -> List[
        MirroredCreditCounter]:
    """Mirrored twins of ``counters`` writing ``ok[base + n]``.

    Only valid while every counter is full and unstuck (construction
    time); the twins start full, which is then consistent with the
    ``ok`` slots they initialize to True.
    """
    out = []
    for n, counter in enumerate(counters):
        invariant(counter.free == counter.capacity and not counter.stuck,
                  "cannot mirror a partially drained credit counter",
                  check="batch-mirror")
        out.append(MirroredCreditCounter(counter.capacity, base + n, ok))
    return out


def mirror_output_vcs(states: List[OutputVcState], owner_arr) -> List[
        MirroredOutputVcState]:
    """Mirrored twins of per-output VC ledgers over one flat owner array."""
    out = []
    base = 0
    for state in states:
        invariant(all(o is None for o in state.owners),
                  "cannot mirror an owned VC ledger", check="batch-mirror")
        out.append(
            MirroredOutputVcState(len(state.owners), base, owner_arr)
        )
        base += len(state.owners)
    return out
