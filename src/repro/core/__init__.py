"""Core primitives shared by every router model.

Flits and packets, router configuration, bounded flit buffers,
credit-based flow control, round-robin / hierarchical / prioritized
arbiters, fixed-latency delay lines, and deterministic RNG streams.
"""

from .arbiter import (
    HierarchicalArbiter,
    MultiStageArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
)
from .buffers import FlitQueue, VcBufferBank
from .config import FAST_CONFIG, PAPER_CONFIG, RouterConfig
from .credit import CreditCounter, CreditReturnBus, DelayedCreditPipe
from .flit import Flit, make_packet, reset_packet_ids
from .pipeline import BusyTracker, DelayLine
from .pipeline_diagram import (
    Stage,
    baseline_pipeline,
    compare as compare_pipelines,
    cva_pipeline,
    head_flit_latency,
    ova_pipeline,
    pipeline_for,
    render as render_pipeline,
)
from .rng import derive_rng

__all__ = [
    "Flit",
    "make_packet",
    "reset_packet_ids",
    "RouterConfig",
    "PAPER_CONFIG",
    "FAST_CONFIG",
    "FlitQueue",
    "VcBufferBank",
    "CreditCounter",
    "CreditReturnBus",
    "DelayedCreditPipe",
    "RoundRobinArbiter",
    "HierarchicalArbiter",
    "MultiStageArbiter",
    "PriorityArbiter",
    "DelayLine",
    "BusyTracker",
    "Stage",
    "baseline_pipeline",
    "cva_pipeline",
    "ova_pipeline",
    "pipeline_for",
    "head_flit_latency",
    "render_pipeline",
    "compare_pipelines",
    "derive_rng",
]
