"""Arbiters.

Section 4.1 of the paper builds its distributed allocators out of small
round-robin arbiters: "to ensure fairness, the arbiter at each stage
maintains a priority pointer which rotates in a round-robin manner
based on the requests."

``RoundRobinArbiter`` is that primitive.  ``HierarchicalArbiter``
composes a layer of local arbiters (one per group of ``group_size``
requesters) with a global arbiter across groups — the local/global
output arbitration of Figure 6.  ``PriorityArbiter`` implements the
two-class (nonspeculative over speculative) arbitration of Figure 10(b).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence
from .errors import invariant

try:  # Optional: the struct-of-arrays batched hot path (PR 10).
    import numpy as _np
except ImportError:  # pragma: no cover - baked into the dev image
    _np = None  # type: ignore[assignment]

HAVE_NUMPY = _np is not None

#: Count-trailing-zeros tables for the packed-bits arbitration path:
#: ``_CTZ[pad][m]`` is the lowest set bit of ``m`` (0 for m == 0,
#: masked off by the grant predicate).  Built lazily per pad width.
_CTZ_TABLES: dict = {}


def _ctz_table(pad: int) -> Any:
    table = _CTZ_TABLES.get(pad)
    if table is None:
        table = _np.zeros(1 << pad, dtype=_np.int64)
        for m in range(1, 1 << pad):
            table[m] = (m & -m).bit_length() - 1
        _CTZ_TABLES[pad] = table
    return table


class RoundRobinArbiter:
    """Round-robin arbiter over ``size`` request lines.

    The priority pointer advances to one past the winner only when a
    grant is issued, which is the rotation rule the paper relies on for
    fairness.
    """

    __slots__ = ("size", "_ptr")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        self._ptr = 0

    @property
    def pointer(self) -> int:
        return self._ptr

    def arbitrate(self, requests: Sequence[bool], advance: bool = True) -> Optional[int]:
        """Grant one of the asserted ``requests``.

        Args:
            requests: One boolean per request line.
            advance: Rotate the priority pointer past the winner.  Pass
                False for speculative grants whose pointer update must
                be deferred (Section 4.4).

        Returns:
            Index of the granted requester, or None if no request.
        """
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            idx = (self._ptr + offset) % self.size
            if requests[idx]:
                if advance:
                    self._ptr = (idx + 1) % self.size
                return idx
        return None

    def commit(self, winner: int) -> None:
        """Rotate the pointer past ``winner`` (deferred pointer update)."""
        if not 0 <= winner < self.size:
            raise ValueError(f"winner {winner} out of range 0..{self.size - 1}")
        self._ptr = (winner + 1) % self.size


class HierarchicalArbiter:
    """Local/global two-stage arbiter of Figure 6.

    ``size`` requesters are split into groups of ``group_size``.  A
    local round-robin arbiter picks at most one winner per group; a
    global round-robin arbiter then picks one group.  For very high
    radix the paper notes the structure extends to more stages; two
    stages suffice for radix 64 with m=8.
    """

    __slots__ = ("size", "group_size", "_locals", "_global")

    def __init__(self, size: int, group_size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.size = size
        self.group_size = min(group_size, size)
        num_groups = (size + self.group_size - 1) // self.group_size
        self._locals = [
            RoundRobinArbiter(min(self.group_size, size - g * self.group_size))
            for g in range(num_groups)
        ]
        self._global = RoundRobinArbiter(num_groups)

    @property
    def num_groups(self) -> int:
        return len(self._locals)

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one requester via local-then-global arbitration."""
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        local_winners: List[Optional[int]] = []
        for g, local in enumerate(self._locals):
            base = g * self.group_size
            group_reqs = requests[base : base + local.size]
            # Do not advance local pointers until the global winner is
            # known; only the group that actually transmits rotates.
            local_winners.append(local.arbitrate(group_reqs, advance=False))
        group_requests = [w is not None for w in local_winners]
        winning_group = self._global.arbitrate(group_requests)
        if winning_group is None:
            return None
        local_idx = local_winners[winning_group]
        invariant(local_idx is not None, "global arbiter granted a group "
                  "with no local winner", check="arbitration")
        self._locals[winning_group].commit(local_idx)
        return winning_group * self.group_size + local_idx


class BatchArbiterBank:
    """A bank of round-robin arbiters arbitrated as one batched matrix.

    Semantically a list of ``rows`` independent
    :class:`RoundRobinArbiter` instances, but :meth:`arbitrate_all`
    grants every row of a (rows, width) boolean request matrix in one
    rotate-and-argmin pass over struct-of-arrays pointer state instead
    of ``rows`` Python-level scans.  Pointer semantics are bit-identical
    to the scalar arbiter: the pointer rotates to one past the winner on
    a grant (or via the deferred :meth:`commit`), and an all-False row
    leaves its pointer untouched — which is also why skipping a scalar
    arbiter call is equivalent to batching an all-False row.

    Rows may be *ragged*: ``sizes[r]`` request lines are live in row
    ``r`` (callers must leave the padding columns False).  Ranking by
    ``(idx - ptr) % width`` preserves the scalar ``(idx - ptr) %
    sizes[r]`` ordering because wrapped indices keep their relative
    order and land strictly after the unwrapped ones; only the pointer
    rotation needs the true per-row modulus.

    A pure-Python backend (``force_python=True``, or automatic when
    numpy is absent) runs the scalar scan per row, so batched callers
    degrade gracefully instead of importing numpy unconditionally.
    """

    __slots__ = (
        "rows", "width", "_numpy", "_ptr", "_sizes", "_cols", "_mask", "_pad",
    )

    def __init__(
        self,
        rows: int,
        width: int,
        sizes: Optional[Sequence[int]] = None,
        force_python: bool = False,
    ) -> None:
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        size_list = [width] * rows if sizes is None else [int(s) for s in sizes]
        if len(size_list) != rows:
            raise ValueError(
                f"expected {rows} row sizes, got {len(size_list)}"
            )
        for s in size_list:
            if not 1 <= s <= width:
                raise ValueError(f"row size {s} out of range 1..{width}")
        self.rows = rows
        self.width = width
        self._numpy = bool(HAVE_NUMPY and not force_python)
        # Bitwise-AND modulus for the (common) power-of-two width.
        self._mask = width - 1 if width & (width - 1) == 0 else None
        # Narrow banks use the packed-bits path: each row packs into one
        # machine word, rotation is two shifts, and the winner offset is
        # a count-trailing-zeros table lookup.
        self._pad = 8 if width <= 8 else (16 if width <= 16 else None)
        if self._numpy:
            self._ptr = _np.zeros(rows, dtype=_np.int64)
            self._sizes = _np.asarray(size_list, dtype=_np.int64)
            self._cols = _np.arange(width, dtype=_np.int64)
            if self._pad is not None:
                _ctz_table(self._pad)
        else:
            self._ptr = [0] * rows
            self._sizes = size_list
            self._cols = None

    @property
    def pointers(self) -> List[int]:
        """Current priority pointer of every row (scalar-arbiter view)."""
        if self._numpy:
            return [int(p) for p in self._ptr]
        return list(self._ptr)

    def arbitrate_all(self, requests: Any, advance: bool = True) -> Any:
        """Grant one requester per row of a (rows, width) boolean matrix.

        Returns a length-``rows`` integer vector (numpy array on the
        numpy backend, list on the pure-Python one) holding the granted
        column per row, or -1 for rows with no asserted request.
        """
        if not self._numpy:
            return self._arbitrate_all_python(requests, advance)
        winners, granted = self._arbitrate_numpy(requests, self._ptr)
        if advance:
            self._ptr = _np.where(
                granted, (winners + 1) % self._sizes, self._ptr
            )
        return winners

    def arbitrate_rows(self, rows: Any, requests: Any, advance: bool = True) -> Any:
        """Arbitrate only the given row indices (numpy backend).

        ``requests`` is (len(rows), width); rows not listed behave like
        all-False rows — no grant, no pointer motion — so sparse callers
        can skip provably empty rows without changing semantics.  Each
        row may appear at most once.
        """
        if not self._numpy:
            winners = []
            for r, row in zip(rows, requests):
                ptr, size = self._ptr[r], self._sizes[r]
                win = -1
                for offset in range(size):
                    idx = (ptr + offset) % size
                    if row[idx]:
                        win = idx
                        break
                winners.append(win)
                if advance and win >= 0:
                    self._ptr[r] = (win + 1) % size
            return winners
        winners, granted = self._arbitrate_numpy(requests, self._ptr[rows])
        if advance:
            hit = _np.nonzero(granted)[0]
            if hit.size:
                grows = rows[hit]
                self._ptr[grows] = (winners[hit] + 1) % self._sizes[grows]
        return winners

    def _arbitrate_numpy(self, requests: Any, ptr: Any) -> "tuple[Any, Any]":
        """Winner/granted vectors for a request matrix against ``ptr``.

        Pure with respect to bank state (pointer updates are the
        caller's).  The packed path rotates each row's request word
        right by its pointer and takes count-trailing-zeros: the
        identical first-asserted-line-at-or-after-the-pointer rule,
        with the pad width as the (order-preserving) ranking modulus.
        """
        if self._pad is not None:
            packed = _np.packbits(requests, axis=1, bitorder="little")
            if self._pad == 8:
                word = packed[:, 0].astype(_np.int64)
            else:
                word = (
                    packed[:, 0].astype(_np.int64)
                    | (packed[:, 1].astype(_np.int64) << 8)
                )
            pad_mask = (1 << self._pad) - 1
            rot = ((word >> ptr) | (word << (self._pad - ptr))) & pad_mask
            offset = _ctz_table(self._pad)[rot]
            granted = word != 0
            winners = _np.where(granted, (ptr + offset) & (self._pad - 1), -1)
            return winners, granted
        rel = self._cols - ptr[:, None]
        rank = rel & self._mask if self._mask is not None else rel % self.width
        masked = _np.where(requests, rank, self.width)
        win_rank = masked.min(axis=1)
        granted = win_rank < self.width
        raw = ptr + win_rank
        if self._mask is not None:
            raw &= self._mask
        else:
            raw %= self.width
        winners = _np.where(granted, raw, -1)
        return winners, granted

    def _arbitrate_all_python(self, requests: Any, advance: bool) -> List[int]:
        winners = []
        for r in range(self.rows):
            row = requests[r]
            ptr = self._ptr[r]
            size = self._sizes[r]
            win = -1
            for offset in range(size):
                idx = (ptr + offset) % size
                if row[idx]:
                    win = idx
                    break
            winners.append(win)
            if advance and win >= 0:
                self._ptr[r] = (win + 1) % size
        return winners

    def commit(self, row: int, winner: int) -> None:
        """Deferred pointer rotation for one row (scalar ``commit``)."""
        if not 0 <= winner < self._sizes[row]:
            raise ValueError(
                f"winner {winner} out of range 0..{int(self._sizes[row]) - 1}"
            )
        self._ptr[row] = (winner + 1) % self._sizes[row]

    def commit_rows(self, rows: Any, winners: Any) -> None:
        """Vectorized deferred pointer rotation for many rows."""
        if self._numpy:
            self._ptr[rows] = (winners + 1) % self._sizes[rows]
        else:
            for row, winner in zip(rows, winners):
                self._ptr[row] = (winner + 1) % self._sizes[row]


class BatchHierarchicalArbiterBank:
    """A bank of :class:`HierarchicalArbiter` instances batched as one.

    ``count`` independent local/global two-stage arbiters over ``size``
    request lines each, granted together from a (count, size) boolean
    request matrix.  The staging mirrors the scalar arbiter exactly:
    locals arbitrate without advancing, the global arbiter advances on
    grant, and only the winning group's local pointer commits.
    """

    __slots__ = (
        "count", "size", "group_size", "_ngroups", "_padded",
        "_numpy", "_locals", "_global", "_padbuf",
    )

    def __init__(
        self,
        count: int,
        size: int,
        group_size: int,
        force_python: bool = False,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.count = count
        self.size = size
        self.group_size = min(group_size, size)
        gs = self.group_size
        self._ngroups = (size + gs - 1) // gs
        self._padded = self._ngroups * gs
        local_sizes = [
            min(gs, size - g * gs) for g in range(self._ngroups)
        ] * count
        self._locals = BatchArbiterBank(
            count * self._ngroups, gs, sizes=local_sizes,
            force_python=force_python,
        )
        self._global = BatchArbiterBank(
            count, self._ngroups, force_python=force_python
        )
        self._numpy = self._locals._numpy
        if self._numpy and self._padded != size:
            # Persistent padded staging buffer; the pad columns stay
            # False because only [:, :size] is ever written.
            self._padbuf = _np.zeros((count, self._padded), dtype=bool)
        else:
            self._padbuf = None

    @property
    def pointers(self) -> "tuple[List[int], List[int]]":
        """(local pointers, global pointers) for state comparisons."""
        return self._locals.pointers, self._global.pointers

    def grant_all(self, requests: Any) -> Any:
        """Grant one input per row of a (count, size) request matrix.

        Returns a length-``count`` integer vector: winning request line
        per row, -1 where no line is asserted.
        """
        if not self._numpy:
            return self._grant_all_python(requests)
        if self._padbuf is not None:
            self._padbuf[:, : self.size] = requests
            req = self._padbuf
        else:
            req = requests
        req2 = req.reshape(self.count * self._ngroups, self.group_size)
        local_w = self._locals.arbitrate_all(req2, advance=False)
        group_req = (local_w >= 0).reshape(self.count, self._ngroups)
        gwin = self._global.arbitrate_all(group_req, advance=True)
        rows = _np.nonzero(gwin >= 0)[0]
        winners = _np.full(self.count, -1, dtype=_np.int64)
        if rows.size:
            lrows = rows * self._ngroups + gwin[rows]
            self._locals.commit_rows(lrows, local_w[lrows])
            winners[rows] = gwin[rows] * self.group_size + local_w[lrows]
        return winners

    def _grant_all_python(self, requests: Any) -> List[int]:
        gs = self.group_size
        winners = []
        for c in range(self.count):
            row = requests[c]
            local_winners: List[int] = []
            group_req = []
            for g in range(self._ngroups):
                lrow = c * self._ngroups + g
                base = g * gs
                span = self._locals._sizes[lrow]
                ptr = self._locals._ptr[lrow]
                win = -1
                for offset in range(span):
                    idx = (ptr + offset) % span
                    if row[base + idx]:
                        win = idx
                        break
                local_winners.append(win)
                group_req.append(win >= 0)
            gptr = self._global._ptr[c]
            gwin = -1
            for offset in range(self._ngroups):
                g = (gptr + offset) % self._ngroups
                if group_req[g]:
                    gwin = g
                    break
            if gwin < 0:
                winners.append(-1)
                continue
            self._global.commit(c, gwin)
            lrow = c * self._ngroups + gwin
            self._locals.commit(lrow, local_winners[gwin])
            winners.append(gwin * gs + local_winners[gwin])
        return winners


class PriorityArbiter:
    """Two-class arbiter prioritizing nonspeculative requests.

    Figure 10(b): separate arbiters for speculative and nonspeculative
    requests; a speculative request is granted only when there are no
    nonspeculative requests.  "The priority pointer of the speculative
    switch arbiter is only updated after the speculative request is
    granted (i.e. when there are no nonspeculative requests)."
    """

    __slots__ = ("size", "group_size", "_nonspec", "_spec")

    def __init__(self, size: int, group_size: Optional[int] = None) -> None:
        if group_size is None:
            self._nonspec: "HierarchicalArbiter | RoundRobinArbiter" = (
                RoundRobinArbiter(size)
            )
            self._spec: "HierarchicalArbiter | RoundRobinArbiter" = (
                RoundRobinArbiter(size)
            )
        else:
            self._nonspec = HierarchicalArbiter(size, group_size)
            self._spec = HierarchicalArbiter(size, group_size)
        self.size = size
        self.group_size = group_size

    def arbitrate(
        self,
        nonspec_requests: Sequence[bool],
        spec_requests: Sequence[bool],
    ) -> "tuple[Optional[int], bool]":
        """Grant a nonspeculative request if any, else a speculative one.

        Returns:
            (winner index or None, True if the grant was speculative).
        """
        winner = self._nonspec.arbitrate(nonspec_requests)
        if winner is not None:
            return winner, False
        winner = self._spec.arbitrate(spec_requests)
        return winner, winner is not None


class MultiStageArbiter:
    """Arbiter tree with an arbitrary number of local stages.

    Section 4.1: "for very high-radix routers, the two-stage output
    arbiter can be extended to a larger number of stages" so that each
    stage's fan-in fits in a clock cycle.  ``group_sizes`` lists the
    fan-in of each local stage from the leaves up; a final global
    arbiter covers whatever remains.  ``MultiStageArbiter(64, [8])``
    is exactly the two-stage :class:`HierarchicalArbiter` of Figure 6;
    ``MultiStageArbiter(512, [8, 8])`` adds a third stage.

    As in the two-stage arbiter, only the arbiters on the winning path
    rotate their pointers.
    """

    def __init__(self, size: int, group_sizes: Sequence[int]) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not group_sizes:
            raise ValueError("group_sizes must be non-empty")
        for g in group_sizes:
            if g < 1:
                raise ValueError(f"group sizes must be >= 1, got {g}")
        self.size = size
        self.group_sizes = tuple(group_sizes)
        first = min(group_sizes[0], size)
        num_groups = (size + first - 1) // first
        self._locals = [
            RoundRobinArbiter(min(first, size - g * first))
            for g in range(num_groups)
        ]
        self._first = first
        if len(group_sizes) == 1 or num_groups == 1:
            self._upper: "MultiStageArbiter | RoundRobinArbiter" = (
                RoundRobinArbiter(num_groups)
            )
        else:
            self._upper = MultiStageArbiter(num_groups, group_sizes[1:])

    @property
    def num_stages(self) -> int:
        """Arbitration stages including the final global one."""
        if isinstance(self._upper, RoundRobinArbiter):
            return 2
        return 1 + self._upper.num_stages

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one requester through every stage of the tree."""
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        local_winners: List[Optional[int]] = []
        for g, local in enumerate(self._locals):
            base = g * self._first
            group_reqs = requests[base : base + local.size]
            local_winners.append(local.arbitrate(group_reqs, advance=False))
        group_requests = [w is not None for w in local_winners]
        winning_group = self._upper.arbitrate(group_requests)
        if winning_group is None:
            return None
        local_idx = local_winners[winning_group]
        invariant(local_idx is not None, "global arbiter granted a group "
                  "with no local winner", check="arbitration")
        self._locals[winning_group].commit(local_idx)
        return winning_group * self._first + local_idx
