"""Arbiters.

Section 4.1 of the paper builds its distributed allocators out of small
round-robin arbiters: "to ensure fairness, the arbiter at each stage
maintains a priority pointer which rotates in a round-robin manner
based on the requests."

``RoundRobinArbiter`` is that primitive.  ``HierarchicalArbiter``
composes a layer of local arbiters (one per group of ``group_size``
requesters) with a global arbiter across groups — the local/global
output arbitration of Figure 6.  ``PriorityArbiter`` implements the
two-class (nonspeculative over speculative) arbitration of Figure 10(b).
"""

from __future__ import annotations

from typing import List, Optional, Sequence
from .errors import invariant


class RoundRobinArbiter:
    """Round-robin arbiter over ``size`` request lines.

    The priority pointer advances to one past the winner only when a
    grant is issued, which is the rotation rule the paper relies on for
    fairness.
    """

    __slots__ = ("size", "_ptr")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        self._ptr = 0

    @property
    def pointer(self) -> int:
        return self._ptr

    def arbitrate(self, requests: Sequence[bool], advance: bool = True) -> Optional[int]:
        """Grant one of the asserted ``requests``.

        Args:
            requests: One boolean per request line.
            advance: Rotate the priority pointer past the winner.  Pass
                False for speculative grants whose pointer update must
                be deferred (Section 4.4).

        Returns:
            Index of the granted requester, or None if no request.
        """
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            idx = (self._ptr + offset) % self.size
            if requests[idx]:
                if advance:
                    self._ptr = (idx + 1) % self.size
                return idx
        return None

    def commit(self, winner: int) -> None:
        """Rotate the pointer past ``winner`` (deferred pointer update)."""
        if not 0 <= winner < self.size:
            raise ValueError(f"winner {winner} out of range 0..{self.size - 1}")
        self._ptr = (winner + 1) % self.size


class HierarchicalArbiter:
    """Local/global two-stage arbiter of Figure 6.

    ``size`` requesters are split into groups of ``group_size``.  A
    local round-robin arbiter picks at most one winner per group; a
    global round-robin arbiter then picks one group.  For very high
    radix the paper notes the structure extends to more stages; two
    stages suffice for radix 64 with m=8.
    """

    __slots__ = ("size", "group_size", "_locals", "_global")

    def __init__(self, size: int, group_size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.size = size
        self.group_size = min(group_size, size)
        num_groups = (size + self.group_size - 1) // self.group_size
        self._locals = [
            RoundRobinArbiter(min(self.group_size, size - g * self.group_size))
            for g in range(num_groups)
        ]
        self._global = RoundRobinArbiter(num_groups)

    @property
    def num_groups(self) -> int:
        return len(self._locals)

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one requester via local-then-global arbitration."""
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        local_winners: List[Optional[int]] = []
        for g, local in enumerate(self._locals):
            base = g * self.group_size
            group_reqs = requests[base : base + local.size]
            # Do not advance local pointers until the global winner is
            # known; only the group that actually transmits rotates.
            local_winners.append(local.arbitrate(group_reqs, advance=False))
        group_requests = [w is not None for w in local_winners]
        winning_group = self._global.arbitrate(group_requests)
        if winning_group is None:
            return None
        local_idx = local_winners[winning_group]
        invariant(local_idx is not None, "global arbiter granted a group "
                  "with no local winner", check="arbitration")
        self._locals[winning_group].commit(local_idx)
        return winning_group * self.group_size + local_idx


class PriorityArbiter:
    """Two-class arbiter prioritizing nonspeculative requests.

    Figure 10(b): separate arbiters for speculative and nonspeculative
    requests; a speculative request is granted only when there are no
    nonspeculative requests.  "The priority pointer of the speculative
    switch arbiter is only updated after the speculative request is
    granted (i.e. when there are no nonspeculative requests)."
    """

    __slots__ = ("size", "group_size", "_nonspec", "_spec")

    def __init__(self, size: int, group_size: Optional[int] = None) -> None:
        if group_size is None:
            self._nonspec: "HierarchicalArbiter | RoundRobinArbiter" = (
                RoundRobinArbiter(size)
            )
            self._spec: "HierarchicalArbiter | RoundRobinArbiter" = (
                RoundRobinArbiter(size)
            )
        else:
            self._nonspec = HierarchicalArbiter(size, group_size)
            self._spec = HierarchicalArbiter(size, group_size)
        self.size = size
        self.group_size = group_size

    def arbitrate(
        self,
        nonspec_requests: Sequence[bool],
        spec_requests: Sequence[bool],
    ) -> "tuple[Optional[int], bool]":
        """Grant a nonspeculative request if any, else a speculative one.

        Returns:
            (winner index or None, True if the grant was speculative).
        """
        winner = self._nonspec.arbitrate(nonspec_requests)
        if winner is not None:
            return winner, False
        winner = self._spec.arbitrate(spec_requests)
        return winner, winner is not None


class MultiStageArbiter:
    """Arbiter tree with an arbitrary number of local stages.

    Section 4.1: "for very high-radix routers, the two-stage output
    arbiter can be extended to a larger number of stages" so that each
    stage's fan-in fits in a clock cycle.  ``group_sizes`` lists the
    fan-in of each local stage from the leaves up; a final global
    arbiter covers whatever remains.  ``MultiStageArbiter(64, [8])``
    is exactly the two-stage :class:`HierarchicalArbiter` of Figure 6;
    ``MultiStageArbiter(512, [8, 8])`` adds a third stage.

    As in the two-stage arbiter, only the arbiters on the winning path
    rotate their pointers.
    """

    def __init__(self, size: int, group_sizes: Sequence[int]) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not group_sizes:
            raise ValueError("group_sizes must be non-empty")
        for g in group_sizes:
            if g < 1:
                raise ValueError(f"group sizes must be >= 1, got {g}")
        self.size = size
        self.group_sizes = tuple(group_sizes)
        first = min(group_sizes[0], size)
        num_groups = (size + first - 1) // first
        self._locals = [
            RoundRobinArbiter(min(first, size - g * first))
            for g in range(num_groups)
        ]
        self._first = first
        if len(group_sizes) == 1 or num_groups == 1:
            self._upper: "MultiStageArbiter | RoundRobinArbiter" = (
                RoundRobinArbiter(num_groups)
            )
        else:
            self._upper = MultiStageArbiter(num_groups, group_sizes[1:])

    @property
    def num_stages(self) -> int:
        """Arbitration stages including the final global one."""
        if isinstance(self._upper, RoundRobinArbiter):
            return 2
        return 1 + self._upper.num_stages

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one requester through every stage of the tree."""
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        local_winners: List[Optional[int]] = []
        for g, local in enumerate(self._locals):
            base = g * self._first
            group_reqs = requests[base : base + local.size]
            local_winners.append(local.arbitrate(group_reqs, advance=False))
        group_requests = [w is not None for w in local_winners]
        winning_group = self._upper.arbitrate(group_requests)
        if winning_group is None:
            return None
        local_idx = local_winners[winning_group]
        invariant(local_idx is not None, "global arbiter granted a group "
                  "with no local winner", check="arbitration")
        self._locals[winning_group].commit(local_idx)
        return winning_group * self._first + local_idx
