"""Fixed-latency pipeline stages.

The high-radix router pipelines of Figure 7 separate request issue from
grant by several cycles (wire stage, local output arbitration, global
output arbitration).  ``DelayLine`` models any such fixed-latency stage:
items inserted at cycle ``t`` become visible at cycle ``t + latency``.
"""

from __future__ import annotations

import copy
import heapq
import itertools
from typing import Any, Callable, Dict, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class DelayLine(Generic[T]):
    """Queue whose items mature after a fixed (or explicit) delay.

    Implemented as a priority queue on maturity cycle with a tiebreak
    counter, so same-cycle items drain in insertion order and items may
    be scheduled out of order (e.g. OVA grants that carry an extra
    cycle of VC-check latency alongside ordinary grants).
    """

    __slots__ = ("latency", "_heap", "_counter")

    def __init__(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency
        self._heap: List[Tuple[int, int, T]] = []
        self._counter = itertools.count()

    def push(self, now: int, item: T) -> None:
        """Insert ``item`` at cycle ``now``; it matures at ``now + latency``."""
        heapq.heappush(self._heap, (now + self.latency, next(self._counter), item))

    def push_at(self, due: int, item: T) -> None:
        """Insert ``item`` maturing at an explicit cycle."""
        heapq.heappush(self._heap, (due, next(self._counter), item))

    def pop_ready(self, now: int) -> List[T]:
        """Remove and return every item that has matured by cycle ``now``."""
        ready: List[T] = []
        while self._heap and self._heap[0][0] <= now:
            ready.append(heapq.heappop(self._heap)[2])
        return ready

    def peek_ready(self, now: int) -> List[T]:
        """Return matured items without removing them."""
        return [item for due, _, item in self._heap if due <= now]

    def pending(self, now: int) -> List[Tuple[int, T]]:
        """``(due, item)`` pairs maturing by ``now``, in pop order.

        Unlike :meth:`peek_ready` (heap-array order, sufficient for
        membership probes) this sorts on ``(due, insertion counter)``,
        so the returned sequence matches exactly what successive
        :meth:`pop_ready` calls will deliver — the sharded engine
        pre-draws per-credit fault decisions against this order.
        Pure read.
        """
        return [
            (due, item)
            for due, _, item in sorted(
                entry for entry in self._heap if entry[0] <= now
            )
        ]

    def next_due(self) -> "int | None":
        """Maturity cycle of the earliest queued item, or None.

        The delivery-time horizon consumed by event-driven scheduling
        (:class:`repro.engine.EventScheduler`): a parked component whose
        only pending work sits in delay lines must next run at the
        earliest ``next_due`` among them.  Pure read — the heap head is
        the minimum by construction.
        """
        return self._heap[0][0] if self._heap else None

    def items(self) -> List[T]:
        """Every queued item, matured or not (for invariant probes)."""
        return [item for _, _, item in self._heap]

    def dump(
        self, encode: Optional[Callable[[T], Any]] = None
    ) -> Dict[str, Any]:
        """Serializable capture: entries (sorted), counter position.

        ``encode`` maps each item to a picklable stand-in (e.g. a sink
        callback to its port index); identity when omitted.  The
        insertion counters are kept verbatim so a :meth:`load` twin
        pops in exactly the original order.
        """
        return {
            "latency": self.latency,
            "counter": next(copy.copy(self._counter)),
            "entries": [
                (due, cnt, item if encode is None else encode(item))
                for due, cnt, item in sorted(self._heap)
            ],
        }

    @classmethod
    def load(
        cls,
        state: Dict[str, Any],
        decode: Optional[Callable[[Any], T]] = None,
    ) -> "DelayLine[T]":
        """Rebuild a delay line from a :meth:`dump` capture."""
        line: "DelayLine[T]" = cls(state["latency"])
        line._heap = [
            (due, cnt, item if decode is None else decode(item))
            for due, cnt, item in state["entries"]
        ]
        heapq.heapify(line._heap)
        line._counter = itertools.count(state["counter"])
        return line

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class BusyTracker:
    """Tracks multi-cycle occupancy of a shared resource.

    A switch grant occupies its input row and output column for
    ``flit_cycles`` cycles; ``BusyTracker`` answers "is this resource
    free at cycle t" and records reservations.
    """

    __slots__ = ("_busy_until",)

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._busy_until = [0] * count

    def free(self, idx: int, now: int) -> bool:
        """True if resource ``idx`` is idle at cycle ``now``."""
        return self._busy_until[idx] <= now

    def reserve(self, idx: int, now: int, duration: int) -> None:
        """Occupy resource ``idx`` for ``duration`` cycles starting now."""
        if not self.free(idx, now):
            raise RuntimeError(
                f"resource {idx} reserved while busy until "
                f"{self._busy_until[idx]} (now={now})"
            )
        self._busy_until[idx] = now + duration

    def extend(self, idx: int, until: int) -> None:
        """Hold resource ``idx`` busy at least until cycle ``until``."""
        if until > self._busy_until[idx]:
            self._busy_until[idx] = until

    def busy_until(self, idx: int) -> int:
        return self._busy_until[idx]

    def any_busy(self, now: int) -> bool:
        return any(b > now for b in self._busy_until)

    def __len__(self) -> int:
        return len(self._busy_until)
