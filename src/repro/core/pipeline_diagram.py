"""Pipeline diagrams (Figures 5(b) and 7 of the paper), as text.

The paper describes each router's pipeline with stage diagrams:
Figure 5(b) for the baseline (RC | VA | SA | ST), and Figure 7 for the
speculative high-radix pipelines — (b) CVA, where VC allocation runs
concurrently with the distributed switch-allocation stages, and (c)
OVA, where it is serialized after them.  This module regenerates those
diagrams from a :class:`~repro.core.config.RouterConfig`, so the
rendered pipeline always reflects the configured latencies
(``sa_latency``, ``ova_extra_latency``, ``flit_cycles``).

Speculative stages — those issued before VC allocation resolves — are
marked with ``*``, mirroring the underlines in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .config import RouterConfig


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a label, a duration, a speculative flag."""

    name: str
    cycles: int
    speculative: bool = False

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(f"stage cycles must be >= 1, got {self.cycles}")


def baseline_pipeline(config: RouterConfig) -> List[Stage]:
    """Figure 5(b): the centralized low-radix pipeline.

    In the cycle-accurate model the single-cycle SA grant coincides
    with the first switch-traversal cycle, so SA carries no stage of
    its own here and the stage sum equals the simulated zero-load
    head-flit latency exactly.
    """
    return [
        Stage("RC", config.route_latency),
        Stage("VA", 1),
        Stage("ST", config.flit_cycles),
    ]


def _sa_stages(config: RouterConfig, speculative: bool) -> List[Stage]:
    """SA1 + wire + SA2 of the distributed allocator (Figure 6).

    The ``sa_latency`` budget covers request issue (SA1), the wire
    stage, and the local output arbitration (SA2); the *global*
    arbitration SA3 — the grant — coincides with the following stage's
    first cycle (the VC check for OVA, switch traversal otherwise), so
    the stage sum equals ``sa_latency`` and the diagram totals match
    the simulated router exactly.
    """
    total = config.sa_latency
    stages: List[Stage] = []
    if total >= 1:
        stages.append(Stage("SA1", 1, speculative))
    if total >= 3:
        stages.append(Stage("wire", total - 2, speculative))
        stages.append(Stage("SA2", 1, speculative))
    elif total == 2:
        stages.append(Stage("wire", 1, speculative))
    return stages


def cva_pipeline(config: RouterConfig) -> List[Stage]:
    """Figure 7(b): CVA — VC allocation in parallel with SA2/SA3.

    The VA work shares the switch-allocation cycles (it happens at the
    crosspoints while the output arbitration runs), so it adds no stage
    of its own; every stage after route computation is speculative
    until the grant resolves.
    """
    return (
        [Stage("RC", config.route_latency)]
        + _sa_stages(config, speculative=True)
        + [Stage("ST", config.flit_cycles)]
    )


def ova_pipeline(config: RouterConfig) -> List[Stage]:
    """Figure 7(c): OVA — VC allocation serialized after SA3."""
    return (
        [Stage("RC", config.route_latency)]
        + _sa_stages(config, speculative=True)
        + [Stage("VA", max(1, config.ova_extra_latency), speculative=True)]
        + [Stage("ST", config.flit_cycles)]
    )


def pipeline_for(config: RouterConfig, architecture: str) -> List[Stage]:
    """Pipeline stages for an architecture name.

    ``baseline`` renders Figure 5(b); ``cva``/``ova`` render
    Figure 7(b)/(c).
    """
    table = {
        "baseline": baseline_pipeline,
        "cva": cva_pipeline,
        "ova": ova_pipeline,
    }
    if architecture not in table:
        raise ValueError(
            f"unknown architecture {architecture!r}; expected one of "
            f"{sorted(table)}"
        )
    return table[architecture](config)


def measured_pipeline(config: RouterConfig, architecture: str) -> List[Stage]:
    """Expected *observable* stage spans at zero load, per architecture.

    Where :func:`pipeline_for` renders the paper's figure pipelines
    (with their RC/VA/SA1/SA2 decomposition), this table describes the
    stages a :class:`repro.trace.TraceCollector` actually sees on the
    ``stage_enter`` hook — one entry per emission point, named after the
    router's ``TRACE_STAGES`` — and how many cycles a contention-free
    head flit spends in each.  Internal work with no emission point of
    its own is folded into the preceding stage: the baseline's "RC"
    span covers RC+VA (``route_latency + 1``), and the OVA "SA" span
    covers SA plus the serialized VC check
    (``sa_latency + ova_extra_latency``).

    The stage sum equals the simulated zero-load head-flit latency from
    :meth:`Router.accept` to ejection; for ``baseline``/``cva``/``ova``
    it also equals ``head_flit_latency(pipeline_for(config, arch))``
    (with the default ``ova_extra_latency=1``), which the differential
    tests pin.
    """
    rl, fc = config.route_latency, config.flit_cycles
    if architecture == "baseline":
        return [Stage("RC", rl + 1), Stage("ST", fc)]
    if architecture == "cva":
        return [
            Stage("RC", rl),
            Stage("SA", config.sa_latency, speculative=True),
            Stage("ST", fc),
        ]
    if architecture == "ova":
        return [
            Stage("RC", rl),
            Stage("SA", config.sa_latency + config.ova_extra_latency,
                  speculative=True),
            Stage("ST", fc),
        ]
    if architecture in ("buffered", "shared-buffer"):
        return [Stage("RC", rl), Stage("XB", fc), Stage("ST", fc)]
    if architecture == "hierarchical":
        return [
            Stage("RC", rl),
            Stage("ROW", fc),
            Stage("SUB", fc),
            Stage("ST", fc),
        ]
    if architecture == "voq":
        return [Stage("RC", rl), Stage("ST", fc)]
    raise ValueError(
        f"unknown architecture {architecture!r}; expected one of "
        "['baseline', 'buffered', 'cva', 'hierarchical', 'ova', "
        "'shared-buffer', 'voq']"
    )


def head_flit_latency(stages: List[Stage]) -> int:
    """Zero-load cycles from arrival to delivery for a head flit."""
    return sum(stage.cycles for stage in stages)


def render(stages: List[Stage], title: str = "") -> str:
    """Render stages as the paper's boxed pipeline diagram.

    Speculative stages carry a ``*``; multi-cycle stages show their
    width, e.g. ``ST(4)``.
    """
    cells = []
    for stage in stages:
        label = stage.name
        if stage.cycles > 1:
            label += f"({stage.cycles})"
        if stage.speculative:
            label += "*"
        cells.append(f" {label} ")
    row = "|" + "|".join(cells) + "|"
    rule = "+" + "+".join("-" * len(c) for c in cells) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.extend([rule, row, rule])
    lines.append(
        f"head-flit latency: {head_flit_latency(stages)} cycles "
        "(* = speculative stage)"
    )
    return "\n".join(lines)


def compare(config: RouterConfig) -> str:
    """Render all three pipelines side by side (Figures 5(b) and 7)."""
    parts = [
        render(baseline_pipeline(config), "baseline (Figure 5(b)):"),
        render(cva_pipeline(config), "high-radix CVA (Figure 7(b)):"),
        render(ova_pipeline(config), "high-radix OVA (Figure 7(c)):"),
    ]
    return "\n\n".join(parts)
