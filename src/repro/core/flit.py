"""Flits and packets: the units of data moved by the router.

The paper (Section 3) breaks packets into one or more fixed-size *flits*
(flow-control digits).  The *head* flit carries routing information and
triggers per-packet actions (route computation, virtual-channel
allocation); *body* flits follow the head; the *tail* flit releases the
virtual channel when it departs.  A single-flit packet is simultaneously
head and tail.

``Flit`` is deliberately a small mutable record: the simulator annotates
it in place as it advances (allocated output VC, measurement label,
timestamps) rather than re-wrapping it at each stage.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (useful for reproducible tests)."""
    global _packet_ids
    _packet_ids = itertools.count()


def packet_id_state() -> int:
    """The next packet id the global counter will hand out.

    Peeked via a copy so the counter itself never advances; paired
    with :func:`set_packet_id_state` to checkpoint/restore the global
    allocation stream.
    """
    return next(copy.copy(_packet_ids))


def set_packet_id_state(next_id: int) -> None:
    """Restart the global packet-id counter at ``next_id``."""
    global _packet_ids
    _packet_ids = itertools.count(next_id)


@dataclass
class Flit:
    """One flow-control digit.

    Attributes:
        packet_id: Identifier shared by all flits of the same packet.
        flit_index: Position of this flit within its packet (0 = head).
        is_head: True for the first flit of the packet.
        is_tail: True for the last flit of the packet.
        src: Input port the flit arrived on (or source node id in a
            network simulation).
        dest: Destination output port (or destination node id).
        vc: Input virtual channel currently holding the flit.
        out_vc: Output virtual channel allocated to the packet, or None
            until virtual-channel allocation succeeds.
        created_at: Cycle the packet was generated at its source.
        injected_at: Cycle the flit entered the router input buffer.
        measured: True if the packet belongs to the measurement sample
            (packets injected during the measurement window; see
            Section 4.3 of the paper).
        hops: Number of routers traversed so far (network simulations).
        route: Remaining output ports to take, head first (network
            simulations with source routing).
    """

    packet_id: int
    flit_index: int
    is_head: bool
    is_tail: bool
    src: int
    dest: int
    vc: int = 0
    out_vc: Optional[int] = None
    created_at: int = 0
    injected_at: int = 0
    measured: bool = False
    hops: int = 0
    route: List[int] = field(default_factory=list)

    @property
    def is_body(self) -> bool:
        """True if the flit is neither head nor tail (middle of a packet)."""
        return not self.is_head and not self.is_tail

    def clone_for_stats(self) -> "Flit":
        """Shallow snapshot used by instrumentation hooks."""
        return Flit(
            packet_id=self.packet_id,
            flit_index=self.flit_index,
            is_head=self.is_head,
            is_tail=self.is_tail,
            src=self.src,
            dest=self.dest,
            vc=self.vc,
            out_vc=self.out_vc,
            created_at=self.created_at,
            injected_at=self.injected_at,
            measured=self.measured,
            hops=self.hops,
            route=list(self.route),
        )


def make_packet(
    dest: int,
    size: int,
    src: int = 0,
    created_at: int = 0,
    measured: bool = False,
    packet_id: Optional[int] = None,
    route: Optional[List[int]] = None,
) -> List[Flit]:
    """Create the flits of a ``size``-flit packet bound for ``dest``.

    Args:
        dest: Destination output port (or node).
        size: Number of flits in the packet; must be >= 1.
        src: Source input port (or node).
        created_at: Generation timestamp recorded on every flit.
        measured: Whether the packet is part of the measurement sample.
        packet_id: Explicit packet id; allocated from a global counter
            when omitted.
        route: Optional source route (list of output ports), copied onto
            every flit.

    Returns:
        List of flits, head first.
    """
    if size < 1:
        raise ValueError(f"packet size must be >= 1, got {size}")
    pid = next(_packet_ids) if packet_id is None else packet_id
    flits = []
    for i in range(size):
        flits.append(
            Flit(
                packet_id=pid,
                flit_index=i,
                is_head=(i == 0),
                is_tail=(i == size - 1),
                src=src,
                dest=dest,
                created_at=created_at,
                measured=measured,
                route=list(route) if route else [],
            )
        )
    return flits
