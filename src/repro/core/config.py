"""Router configuration.

A single frozen dataclass carries every microarchitectural parameter the
paper varies, with defaults matching the paper's main evaluation point:
radix 64, four virtual channels, four cycles of switch traversal per
flit, four-flit crosspoint buffers, subswitch size 8, and local
arbitration groups of 8 inputs (Section 4.3, Section 5.3, Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


VALID_VC_ALLOCATORS = ("cva", "ova")


@dataclass(frozen=True)
class RouterConfig:
    """Parameters of a single router.

    Attributes:
        radix: Number of input ports == number of output ports (k).
        num_vcs: Virtual channels per port (v).
        flit_cycles: Cycles a flit needs to traverse the switch, the
            input row bus, or the output column (the paper uses 4:
            "each flit taking 4 cycles to traverse the switch").  A
            switch grant holds its input and output resources for this
            many cycles, so the per-port capacity is one flit every
            ``flit_cycles`` cycles.
        input_buffer_depth: Flit slots per input virtual channel.
        crosspoint_buffer_depth: Flit slots per (crosspoint, VC) buffer
            in the fully buffered crossbar, and the default subswitch
            boundary buffer depth for the hierarchical crossbar.
        subswitch_size: p, the radix of each subswitch in the
            hierarchical crossbar; must divide ``radix``.
        subswitch_input_depth / subswitch_output_depth: Flit slots per
            VC at the subswitch boundaries; when 0 they default to
            ``crosspoint_buffer_depth``.
        local_group_size: m, the number of inputs handled by each local
            output arbiter of the distributed switch allocator
            (Figure 6; the paper uses m=8).
        vc_allocator: "cva" (crosspoint VC allocation) or "ova" (output
            VC allocation); see Section 4.2.
        prioritize_nonspeculative: Use the two-arbiter switch allocator
            of Figure 10(b) that grants speculative requests only when
            no nonspeculative request wants the output.
        sa_latency: Pipeline latency, in cycles, between a switch
            request leaving the input arbiter and the grant decision
            (covers the wire stage plus local and global output
            arbitration, SA1..SA3 of Figure 7).
        ova_extra_latency: Additional cycles OVA spends checking the
            output VC after switch allocation completes.
        route_latency: Route-computation pipeline depth (RC stage).
        credit_latency: Cycles for a credit to travel back to the
            input (used for crosspoint and subswitch buffer credits).
        ideal_credit_return: If True, crosspoint credits return
            immediately instead of arbitrating for the shared per-row
            credit return bus (the "ideal but not realizable" scheme of
            Section 5.2).
        speculative: Enable speculative VC allocation (switch
            allocation proceeds before VC allocation completes).  The
            paper's high-radix routers always speculate; disabling is
            provided for ablation.
        batch_hot_path: Run the arbitration/eligibility hot loops as
            struct-of-arrays numpy batches (see docs/architecture.md,
            "Batched hot path").  Byte-identical to the scalar path by
            contract; silently falls back to the scalar path when numpy
            is unavailable.
        seed: Seed for all randomized tie-breaking and traffic.
    """

    radix: int = 64
    num_vcs: int = 4
    flit_cycles: int = 4
    input_buffer_depth: int = 16
    crosspoint_buffer_depth: int = 4
    subswitch_size: int = 8
    subswitch_input_depth: int = 0
    subswitch_output_depth: int = 0
    local_group_size: int = 8
    vc_allocator: str = "cva"
    prioritize_nonspeculative: bool = False
    sa_latency: int = 3
    ova_extra_latency: int = 1
    route_latency: int = 1
    credit_latency: int = 2
    ideal_credit_return: bool = False
    speculative: bool = True
    batch_hot_path: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError(f"radix must be >= 2, got {self.radix}")
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.flit_cycles < 1:
            raise ValueError(
                f"flit_cycles must be >= 1, got {self.flit_cycles}"
            )
        if self.input_buffer_depth < 1:
            raise ValueError(
                f"input_buffer_depth must be >= 1, got {self.input_buffer_depth}"
            )
        if self.crosspoint_buffer_depth < 1:
            raise ValueError(
                "crosspoint_buffer_depth must be >= 1, got "
                f"{self.crosspoint_buffer_depth}"
            )
        if self.radix % self.subswitch_size != 0:
            raise ValueError(
                f"subswitch_size {self.subswitch_size} must divide radix "
                f"{self.radix}"
            )
        if self.local_group_size < 1:
            raise ValueError(
                f"local_group_size must be >= 1, got {self.local_group_size}"
            )
        if self.vc_allocator not in VALID_VC_ALLOCATORS:
            raise ValueError(
                f"vc_allocator must be one of {VALID_VC_ALLOCATORS}, got "
                f"{self.vc_allocator!r}"
            )
        if self.sa_latency < 0:
            raise ValueError(f"sa_latency must be >= 0, got {self.sa_latency}")
        if self.credit_latency < 0:
            raise ValueError(
                f"credit_latency must be >= 0, got {self.credit_latency}"
            )

    @property
    def num_subswitches_per_side(self) -> int:
        """k/p: subswitch rows (== columns) in the hierarchical crossbar."""
        return self.radix // self.subswitch_size

    @property
    def subswitch_in_depth(self) -> int:
        """Effective subswitch input buffer depth (per VC)."""
        return self.subswitch_input_depth or self.crosspoint_buffer_depth

    @property
    def subswitch_out_depth(self) -> int:
        """Effective subswitch output buffer depth (per VC)."""
        return self.subswitch_output_depth or self.crosspoint_buffer_depth

    @property
    def capacity_flits_per_cycle(self) -> float:
        """Per-port capacity: one flit per ``flit_cycles`` cycles."""
        return 1.0 / self.flit_cycles

    def with_(self, **changes: Any) -> "RouterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The paper's main evaluation point (Section 4.3): radix 64, 4 VCs,
#: 4-cycle switch traversal per flit.
PAPER_CONFIG = RouterConfig()

#: A reduced-scale configuration with identical structure, used by the
#: default benchmark harness so pure-Python simulation stays tractable.
FAST_CONFIG = RouterConfig(radix=32, subswitch_size=8, local_group_size=8)
