"""Flit buffers.

Two building blocks recur throughout the router models:

* ``FlitQueue`` — a bounded FIFO of flits, the unit of storage behind
  every input VC buffer, crosspoint buffer, and subswitch boundary
  buffer in the paper.
* ``VcBufferBank`` — a bank of per-virtual-channel ``FlitQueue``s
  attached to one port (or one crosspoint), as in Figure 4 (input
  buffers) and Figure 12(b) (per-VC crosspoint buffers).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from .flit import Flit


class FlitQueue:
    """A bounded FIFO of flits.

    ``maxlen`` of ``None`` means unbounded (used for source queues,
    which the measurement methodology treats as infinite).
    """

    __slots__ = ("_q", "maxlen")

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self._q: Deque[Flit] = deque()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __iter__(self) -> Iterator[Flit]:
        return iter(self._q)

    @property
    def free_slots(self) -> int:
        """Remaining capacity; a large sentinel when unbounded."""
        if self.maxlen is None:
            return 1 << 30
        return self.maxlen - len(self._q)

    @property
    def full(self) -> bool:
        return self.maxlen is not None and len(self._q) >= self.maxlen

    def head(self) -> Optional[Flit]:
        """The flit at the front, or None if empty."""
        return self._q[0] if self._q else None

    def push(self, flit: Flit) -> None:
        """Append a flit; raises ``OverflowError`` when full.

        Credit-based flow control is supposed to make overflow
        impossible, so overflow indicates a protocol bug and is loud.
        """
        if self.full:
            raise OverflowError(
                f"flit queue overflow (maxlen={self.maxlen}); "
                "credit protocol violated"
            )
        self._q.append(flit)

    def pop(self) -> Flit:
        """Remove and return the head flit; raises ``IndexError`` if empty."""
        return self._q.popleft()

    def clear(self) -> List[Flit]:
        """Drop and return all buffered flits (used by NACK handling)."""
        drained = list(self._q)
        self._q.clear()
        return drained


class VcBufferBank:
    """Per-virtual-channel buffers attached to one port or crosspoint."""

    __slots__ = ("queues",)

    def __init__(self, num_vcs: int, depth: Optional[int]) -> None:
        if num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
        self.queues: List[FlitQueue] = [FlitQueue(depth) for _ in range(num_vcs)]

    def __len__(self) -> int:
        # Reaches through to the deques: this runs in every occupancy
        # probe of every bank every cycle, so the per-queue Python
        # __len__ dispatch is worth skipping.
        return sum(len(q._q) for q in self.queues)

    def __getitem__(self, vc: int) -> FlitQueue:
        return self.queues[vc]

    @property
    def num_vcs(self) -> int:
        return len(self.queues)

    def occupancy(self) -> int:
        """Total flits buffered across all VCs."""
        return len(self)

    def heads(self) -> List[Optional[Flit]]:
        """Head flit of each VC queue (None for empty queues)."""
        return [q.head() for q in self.queues]

    def nonempty_vcs(self) -> List[int]:
        """Indices of VCs that currently hold at least one flit."""
        return [vc for vc, q in enumerate(self.queues) if q]
