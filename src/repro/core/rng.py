"""Deterministic random-number management.

Every stochastic component (traffic patterns, injection processes,
randomized tie-breaking) draws from its own ``random.Random`` stream
derived from a master seed, so simulations are reproducible both within
and across processes (Python's built-in string ``hash`` is salted per
process, so a stable digest is used instead).
"""

from __future__ import annotations

import hashlib
import random  # this module is R001's one sanctioned user (rule-exempt)

#: The RNG stream type handed out by :func:`derive_rng`.  Modules that
#: only *consume* randomness annotate their parameters with this alias
#: instead of importing :mod:`random` themselves — the R001 lint rule
#: (see :mod:`repro.analysis`) forbids direct ``random`` usage outside
#: this module so every stream is seed-derived and reproducible.
Rng = random.Random


def derive_seed(seed: int, *names: object) -> int:
    """Deterministic 64-bit seed for a named component stream.

    Stable across processes and platforms (unlike the builtin salted
    ``hash``): a SHA-256 digest of the seed and name path.
    """
    key = ":".join([str(seed)] + [str(n) for n in names])
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, *names: object) -> random.Random:
    """Create an independent RNG stream for a named component.

    The stream is a deterministic function of ``seed`` and the name
    path, e.g. ``derive_rng(1, "traffic", 3)`` for input 3's traffic
    source.  The same arguments always produce the same stream, in any
    process.
    """
    return random.Random(derive_seed(seed, *names))
