"""Deterministic random-number management.

Every stochastic component (traffic patterns, injection processes,
randomized tie-breaking) draws from its own ``random.Random`` stream
derived from a master seed, so simulations are reproducible both within
and across processes (Python's built-in string ``hash`` is salted per
process, so a stable digest is used instead).
"""

from __future__ import annotations

import hashlib
import random


def derive_rng(seed: int, *names: object) -> random.Random:
    """Create an independent RNG stream for a named component.

    The stream is a deterministic function of ``seed`` and the name
    path, e.g. ``derive_rng(1, "traffic", 3)`` for input 3's traffic
    source.  The same arguments always produce the same stream, in any
    process.
    """
    key = ":".join([str(seed)] + [str(n) for n in names])
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
