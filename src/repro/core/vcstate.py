"""Output virtual-channel ownership ledger.

A virtual channel on an output port is *owned* by one packet at a time:
ownership is acquired when the packet's head flit wins VC allocation
and released "upon the transmission of the tail flit" (Section 3).
Every router model and both VC-allocation schemes consult this ledger.
"""

from __future__ import annotations

from typing import List, Optional


class OutputVcState:
    """Ownership ledger for the virtual channels of one output port."""

    __slots__ = ("owners",)

    def __init__(self, num_vcs: int) -> None:
        if num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
        self.owners: List[Optional[int]] = [None] * num_vcs

    def is_free(self, vc: int) -> bool:
        return self.owners[vc] is None

    def owner(self, vc: int) -> Optional[int]:
        return self.owners[vc]

    def allocate(self, vc: int, packet_id: int) -> None:
        if self.owners[vc] is not None and self.owners[vc] != packet_id:
            raise RuntimeError(
                f"output VC {vc} already owned by packet {self.owners[vc]}"
            )
        self.owners[vc] = packet_id

    def release(self, vc: int, packet_id: int) -> None:
        if self.owners[vc] != packet_id:
            raise RuntimeError(
                f"output VC {vc} release by packet {packet_id} but owner is "
                f"{self.owners[vc]}"
            )
        self.owners[vc] = None

    def free_vcs(self) -> List[int]:
        return [vc for vc, owner in enumerate(self.owners) if owner is None]

    def any_free(self) -> bool:
        return any(owner is None for owner in self.owners)
