"""Credit-based flow control.

Section 5.2 of the paper: "each input keeps a separate free buffer
counter for each of the crosspoint buffers in its row.  For each flit
sent to one of these buffers, the corresponding free count is
decremented...  when a flit departs a crosspoint buffer, a credit is
returned to increment the input's free buffer count."

``CreditCounter`` is the per-buffer free count kept at the sender.
``CreditReturnBus`` models the shared per-input-row credit return bus:
all crosspoints on a row share one bus, a single credit can be returned
per cycle, and crosspoints that lose the bus arbitration retry on later
cycles.  ``DelayedCreditPipe`` models a fixed credit wire delay for the
ideal (dedicated-wire) comparison.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Tuple


class CreditCounter:
    """Free-slot counter for one downstream buffer, kept at the sender.

    ``stuck`` models a fault: a stuck downstream buffer stops accepting
    new flits, which at the sender looks exactly like running out of
    credits.  Flits already buffered downstream still drain (credits
    still ``restore``), so conservation invariants are untouched.
    """

    __slots__ = ("capacity", "_free", "stuck")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._free = capacity
        self.stuck = False

    @property
    def free(self) -> int:
        return self._free

    @property
    def available(self) -> bool:
        return self._free > 0 and not self.stuck

    def consume(self) -> None:
        """Spend one credit (a flit was sent downstream)."""
        if self._free <= 0:
            raise RuntimeError("credit underflow: sent a flit without credit")
        self._free -= 1

    def restore(self) -> None:
        """Return one credit (a flit departed the downstream buffer)."""
        if self._free >= self.capacity:
            raise RuntimeError(
                "credit overflow: returned more credits than capacity"
            )
        self._free += 1


class DelayedCreditPipe:
    """A fixed-latency pipe delivering credits to ``sink`` callbacks.

    Used for the idealized dedicated-wire credit return of Section 5.2
    and for inter-router credits in the network simulator.

    ``drop_hook`` is the fault-injection tap: when set, it is called
    with each sink about to be delivered and may claim it by returning
    True — the credit is then *lost* on the wire (the hook owns it and
    is responsible for eventual resync).  Default None: zero-cost path.
    """

    __slots__ = ("latency", "_inflight", "drop_hook")

    def __init__(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency
        self._inflight: Deque[Tuple[int, Callable[[], None]]] = deque()
        self.drop_hook: "Callable[[Callable[[], None]], bool] | None" = None

    def send(self, now: int, sink: Callable[[], None]) -> None:
        """Schedule ``sink()`` to fire ``latency`` cycles from ``now``."""
        self._inflight.append((now + self.latency, sink))

    def step(self, now: int) -> int:
        """Deliver all credits due at ``now``; returns how many fired."""
        fired = 0
        while self._inflight and self._inflight[0][0] <= now:
            _, sink = self._inflight.popleft()
            if self.drop_hook is not None and self.drop_hook(sink):
                continue
            sink()
            fired += 1
        return fired

    def pending(self) -> int:
        return len(self._inflight)

    def next_due(self) -> "int | None":
        """Delivery cycle of the earliest in-flight credit, or None.

        Horizon for event-driven scheduling: the FIFO head is the
        minimum because a fixed latency makes due cycles monotonic in
        send order.  Pure read.
        """
        return self._inflight[0][0] if self._inflight else None

    def pending_sinks(self) -> List[Callable[[], None]]:
        """Undelivered sink callbacks (for credit-conservation probes)."""
        return [sink for _, sink in self._inflight]


class CreditReturnBus:
    """Shared credit-return bus for one input row of crosspoints.

    At most one credit crosses the bus per cycle.  Crosspoints holding
    pending credits arbitrate in round-robin order; a crosspoint that
    loses simply retries — the paper notes that because each flit takes
    four cycles to traverse the input row, a loser has three spare
    cycles to re-arbitrate without hurting throughput.
    """

    __slots__ = ("num_sources", "latency", "_pending", "_rr", "_pipe")

    def __init__(self, num_sources: int, latency: int = 1) -> None:
        if num_sources < 1:
            raise ValueError(f"num_sources must be >= 1, got {num_sources}")
        if latency < 1:
            # A zero-latency bus would deliver a credit inside the same
            # step() that granted it the bus, violating the two-phase
            # contract (decisions this cycle would see this cycle's
            # arbitration).  Dedicated wires with latency 0 are modeled
            # by DelayedCreditPipe instead.
            raise ValueError(f"bus latency must be >= 1, got {latency}")
        self.num_sources = num_sources
        self.latency = latency
        # _pending[s] holds callbacks waiting at source s for the bus.
        self._pending: List[Deque[Callable[[], None]]] = [
            deque() for _ in range(num_sources)
        ]
        self._rr = 0
        self._pipe = DelayedCreditPipe(latency)

    def post(self, source: int, sink: Callable[[], None]) -> None:
        """Queue a credit at crosspoint ``source`` for bus arbitration."""
        self._pending[source].append(sink)

    @property
    def drop_hook(self):
        """Fault tap on the bus wire (see DelayedCreditPipe.drop_hook)."""
        return self._pipe.drop_hook

    @drop_hook.setter
    def drop_hook(self, hook) -> None:
        self._pipe.drop_hook = hook

    def step(self, now: int) -> None:
        """One cycle: grant the bus to one source, deliver due credits."""
        winner = self._arbitrate()
        if winner is not None:
            sink = self._pending[winner].popleft()
            self._pipe.send(now, sink)
            self._rr = (winner + 1) % self.num_sources
        self._pipe.step(now)

    def _arbitrate(self) -> "int | None":
        for offset in range(self.num_sources):
            s = (self._rr + offset) % self.num_sources
            if self._pending[s]:
                return s
        return None

    def grant_to(self, source: int, now: int) -> None:
        """Externally arbitrated bus grant: ``source`` wins this cycle.

        The batched hot path arbitrates every row bus in one matrix
        pass and then applies each winner here; the state updates are
        exactly those of the winning branch of :meth:`step`, so the
        round-robin position stays in lockstep with the external
        arbiter.
        """
        sink = self._pending[source].popleft()
        self._pipe.send(now, sink)
        self._rr = (source + 1) % self.num_sources

    def deliver(self, now: int) -> None:
        """Deliver due credits without arbitrating (batched step tail)."""
        self._pipe.step(now)

    @property
    def wire_busy(self) -> bool:
        """Credits still in flight on the wire (batched-step liveness)."""
        return len(self._pipe._inflight) > 0

    def backlog(self) -> int:
        """Credits still waiting for the bus (excludes in-flight ones)."""
        return sum(len(q) for q in self._pending)

    def pending_sinks(self) -> List[Callable[[], None]]:
        """Every undelivered sink: waiting for the bus or on the wire."""
        waiting = [sink for q in self._pending for sink in q]
        return waiting + self._pipe.pending_sinks()

    def next_due(self, now: int) -> "int | None":
        """Earliest cycle at which the bus has deliverable work.

        Credits waiting for bus arbitration need the very next cycle
        (one crosses per cycle); otherwise the in-flight wire head is
        the horizon.  Pure read.
        """
        if self.backlog():
            return now + 1
        return self._pipe.next_due()

    def idle(self) -> bool:
        return self.backlog() == 0 and self._pipe.pending() == 0
