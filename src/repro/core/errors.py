"""Structured simulation errors.

The simulator's correctness rests on conservation laws — flits, credits,
virtual-channel ownership — that must hold every cycle.  When one is
broken the failure must be *loud* and *located*: ``InvariantViolation``
carries the cycle, port, and VC at which the law failed, so a credit
leak surfaces as "cycle 812: output 3, VC 1: credit conservation
violated" instead of a latency number that is quietly wrong.

These classes deliberately live in :mod:`repro.core`, below both the
router models and the :mod:`repro.analysis` sanitizer, so every layer
can raise them without import cycles.  ``InvariantViolation`` remains a
subclass of :class:`AssertionError` for backward compatibility with the
original ``repro.harness.validation`` checker, but it is raised with an
explicit ``raise`` — unlike a bare ``assert``, the checks survive
``python -O``.
"""

from __future__ import annotations

from typing import Any, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation models."""


class UnregisteredComponentError(SimulationError):
    """A scheduler operation named a component it does not drive.

    Raised by :meth:`repro.engine.Scheduler.wake` (instead of the
    opaque ``KeyError`` on an object id it used to leak) when the
    target component was never registered — typically a harness wiring
    bug where an arrival sink points at a router outside the scheduled
    set.  Names the component so the broken wiring is identifiable.
    """

    def __init__(self, component: Any) -> None:
        name = getattr(component, "name", None)
        label = type(component).__name__ + (f" {name!r}" if name else "")
        self.component = component
        super().__init__(
            f"component {label} is not registered with this scheduler; "
            f"register() it before wake() (or check the harness wiring "
            f"that delivered the event)"
        )


class InvariantViolation(AssertionError, SimulationError):
    """A simulation invariant (conservation law, ownership rule) broke.

    Attributes:
        message: Human-readable description of what went wrong.
        cycle: Simulation cycle at which the violation was detected.
        port: Input or output port involved, when known.
        vc: Virtual channel involved, when known.
        check: Short machine-readable name of the violated invariant
            (e.g. ``"flit-conservation"``, ``"credit-conservation"``).
        context: Any further key/value detail supplied by the checker.
    """

    def __init__(
        self,
        message: str,
        *,
        cycle: Optional[int] = None,
        port: Optional[int] = None,
        vc: Optional[int] = None,
        check: Optional[str] = None,
        **context: Any,
    ) -> None:
        self.message = message
        self.cycle = cycle
        self.port = port
        self.vc = vc
        self.check = check
        self.context = context
        super().__init__(self._render())

    def _render(self) -> str:
        where = []
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        if self.port is not None:
            where.append(f"port {self.port}")
        if self.vc is not None:
            where.append(f"VC {self.vc}")
        prefix = ", ".join(where)
        body = self.message
        if self.check:
            body = f"[{self.check}] {body}"
        if self.context:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
            body = f"{body} ({detail})"
        return f"{prefix}: {body}" if prefix else body


def invariant(
    condition: bool,
    message: str,
    *,
    cycle: Optional[int] = None,
    port: Optional[int] = None,
    vc: Optional[int] = None,
    check: Optional[str] = None,
    **context: Any,
) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` holds.

    A drop-in replacement for the bare ``assert`` statements that used
    to guard simulation state: the check is an ordinary ``if``/``raise``,
    so it is not stripped by ``python -O``.
    """
    if not condition:
        raise InvariantViolation(
            message, cycle=cycle, port=port, vc=vc, check=check, **context
        )
