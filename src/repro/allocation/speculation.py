"""Prioritized speculative allocation (Section 4.4, Figure 10).

With speculative VC allocation, a head flit that keeps failing VC
allocation re-bids every time the input round-robin reaches it and can
waste up to 1/v of the input's bandwidth.  The fix is to prioritize
nonspeculative requests: replace the single switch allocator with
separate speculative and nonspeculative allocators, granting a
speculative request only when no nonspeculative request wants the
output (Figure 10(b)), "at the expense of doubling switch allocation
logic".

The mechanism itself is :class:`~repro.core.arbiter.PriorityArbiter`
(note its deferred pointer update: "the priority pointer of the
speculative switch arbiter is only updated after the speculative
request is granted").  This module adds the bookkeeping used to study
the trade-off — the paper finds prioritization buys ~10% of saturation
throughput with one VC but almost nothing with four VCs (Figure 11),
and applies it only at the output arbiter, since prioritizing at the
input would keep VC requests from ever reaching the VC allocators.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.arbiter import PriorityArbiter

__all__ = ["PriorityArbiter", "SpeculationTracker"]


@dataclass
class SpeculationTracker:
    """Counts speculative vs nonspeculative grant outcomes."""

    spec_requests: int = 0
    nonspec_requests: int = 0
    spec_grants: int = 0
    nonspec_grants: int = 0
    spec_kills: int = 0

    def record_request(self, speculative: bool) -> None:
        if speculative:
            self.spec_requests += 1
        else:
            self.nonspec_requests += 1

    def record_grant(self, speculative: bool) -> None:
        if speculative:
            self.spec_grants += 1
        else:
            self.nonspec_grants += 1

    def record_kill(self) -> None:
        self.spec_kills += 1

    @property
    def spec_success_rate(self) -> float:
        if self.spec_requests == 0:
            return float("nan")
        return self.spec_grants / self.spec_requests

    @property
    def wasted_bid_fraction(self) -> float:
        """Fraction of all bids that were killed speculative bids."""
        total = self.spec_requests + self.nonspec_requests
        if total == 0:
            return 0.0
        return self.spec_kills / total
