"""Distributed allocator microarchitectures (Sections 4.1-4.4)."""

from .islip import IslipAllocator
from .speculation import SpeculationTracker
from .switch_alloc import OutputArbiterBank
from .vc_alloc import CvaPolicy, OvaPolicy

__all__ = [
    "IslipAllocator",
    "OutputArbiterBank",
    "CvaPolicy",
    "OvaPolicy",
    "SpeculationTracker",
]
