"""iSLIP-style iterative VOQ allocator.

Section 8 of the paper contrasts its buffered crossbars with virtual
output queueing: "to prevent HoL blocking, virtual output queueing
(VOQ) is often used in IP routers where each input has a separate
buffer for each output [23].  VOQ adds O(k^2) buffering and becomes
costly ... The advantage of the fully buffered crossbar compared to a
VOQ switch is that there is no need for a complex allocator."

This module supplies that complex allocator — the classic iterative
round-robin matching of iSLIP (McKeown [23]) — so the repository can
make the paper's comparison concrete: a VOQ switch driven by iSLIP
reaches full throughput, but needs multiple global request/grant/accept
iterations per cycle across all k^2 (input, output) pairs, which is
exactly the centralized complexity the high-radix router designs avoid.

One allocation round:

1. *Request*: every input sends a request to each output it has a
   queued cell for.
2. *Grant*: each unmatched output grants the requesting input next at
   or after its grant pointer.
3. *Accept*: each unmatched input accepts the granting output next at
   or after its accept pointer; pointers advance past the match only
   on the **first** iteration and only when the grant is accepted
   (the iSLIP pointer-update rule that desynchronizes the pointers).

Repeating the round ``iterations`` times fills in most of the residual
maximal matching.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set


class IslipAllocator:
    """Iterative round-robin (iSLIP) matching for a k x k VOQ switch."""

    def __init__(self, num_inputs: int, num_outputs: int, iterations: int = 1) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ValueError("num_inputs and num_outputs must be >= 1")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.iterations = iterations
        self._grant_ptr = [0] * num_outputs
        self._accept_ptr = [0] * num_inputs

    def allocate(self, requests: Sequence[Set[int]]) -> Dict[int, int]:
        """Compute a matching for one cycle.

        Args:
            requests: For each input, the set of outputs it has traffic
                for.

        Returns:
            Mapping input -> matched output.
        """
        if len(requests) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} request sets, got {len(requests)}"
            )
        matched_inputs: Dict[int, int] = {}
        matched_outputs: Set[int] = set()
        for iteration in range(self.iterations):
            grants = self._grant_phase(requests, matched_inputs, matched_outputs)
            accepts = self._accept_phase(grants, iteration)
            if not accepts:
                break
            for inp, out in accepts.items():
                matched_inputs[inp] = out
                matched_outputs.add(out)
        return matched_inputs

    def _grant_phase(
        self,
        requests: Sequence[Set[int]],
        matched_inputs: Dict[int, int],
        matched_outputs: Set[int],
    ) -> Dict[int, List[int]]:
        """Each unmatched output grants one unmatched requesting input.

        Returns a map input -> list of outputs granting it.
        """
        grants: Dict[int, List[int]] = {}
        for out in range(self.num_outputs):
            if out in matched_outputs:
                continue
            requesters = [
                i
                for i in range(self.num_inputs)
                if i not in matched_inputs and out in requests[i]
            ]
            if not requesters:
                continue
            ptr = self._grant_ptr[out]
            winner = min(
                requesters, key=lambda i: (i - ptr) % self.num_inputs
            )
            grants.setdefault(winner, []).append(out)
        return grants

    def _accept_phase(
        self, grants: Dict[int, List[int]], iteration: int
    ) -> Dict[int, int]:
        """Each input accepts one granting output; updates pointers."""
        accepts: Dict[int, int] = {}
        for inp, outs in grants.items():
            ptr = self._accept_ptr[inp]
            chosen = min(outs, key=lambda o: (o - ptr) % self.num_outputs)
            accepts[inp] = chosen
            if iteration == 0:
                # iSLIP rule: pointers advance only for first-iteration
                # accepted grants, which desynchronizes the outputs.
                self._accept_ptr[inp] = (chosen + 1) % self.num_outputs
                self._grant_ptr[chosen] = (inp + 1) % self.num_inputs
        return accepts
