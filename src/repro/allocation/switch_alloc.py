"""Distributed switch allocation (Section 4.1, Figure 6).

The output side of the paper's three-stage switch allocator: one
arbiter per output, each composed of local m-input arbiters and a
global arbiter over the k/m local winners.  ``OutputArbiterBank`` owns
the k per-output arbiters (hierarchical, or dual prioritized arbiters
per Section 4.4) and answers "which requesting input wins output o this
cycle".

The input side (SA1, one request per input controller per cycle) and
the wire-stage latency are modeled in the routers with per-input
round-robin arbiters and a :class:`~repro.core.pipeline.DelayLine`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.arbiter import HierarchicalArbiter, PriorityArbiter
from ..core.errors import invariant


class OutputArbiterBank:
    """k distributed output arbiters with local/global structure.

    Args:
        num_outputs: Number of output ports (k).
        num_inputs: Number of request lines per output (k).
        group_size: Local arbiter group size m (the paper uses 8).
        prioritized: Use two arbiters per output so nonspeculative
            requests always beat speculative ones (Figure 10(b)).
    """

    def __init__(
        self,
        num_outputs: int,
        num_inputs: int,
        group_size: int,
        prioritized: bool = False,
    ) -> None:
        self.num_outputs = num_outputs
        self.num_inputs = num_inputs
        self.group_size = group_size
        self.prioritized = prioritized
        if prioritized:
            self._arbiters: List[object] = [
                PriorityArbiter(num_inputs, group_size)
                for _ in range(num_outputs)
            ]
        else:
            self._arbiters = [
                HierarchicalArbiter(num_inputs, group_size)
                for _ in range(num_outputs)
            ]

    def grant(
        self,
        output: int,
        requests: Sequence[Tuple[int, bool]],
    ) -> Optional[int]:
        """Pick the winning input for ``output``.

        Args:
            output: Output port index.
            requests: (input index, speculative?) pairs requesting the
                output this cycle.

        Returns:
            The granted input index, or None when no request.
        """
        if not requests:
            return None
        arb = self._arbiters[output]
        if isinstance(arb, PriorityArbiter):
            nonspec = [False] * self.num_inputs
            spec = [False] * self.num_inputs
            for i, speculative in requests:
                if speculative:
                    spec[i] = True
                else:
                    nonspec[i] = True
            winner, _ = arb.arbitrate(nonspec, spec)
            return winner
        lines = [False] * self.num_inputs
        for i, _speculative in requests:
            lines[i] = True
        invariant(isinstance(arb, HierarchicalArbiter),
                  "non-prioritized allocator holds a foreign arbiter type",
                  check="configuration")
        return arb.arbitrate(lines)
