"""Speculative virtual-channel allocation: CVA and OVA (Section 4.2).

An ideal VC allocator would let every input VC watch every output VC —
O(k^2 * v) wiring, "prohibitively expensive".  The paper's two scalable
schemes differ in *where* the VC state is checked relative to switch
arbitration, and therefore in what a failed speculation costs:

* **CVA** (crosspoint VC allocation): requests carry the output VC they
  need; per-output-VC arbiters at the crosspoints kill requests whose
  VC is busy *before* switch output arbitration.  A failure wastes only
  the requesting input's bid for the cycle.
* **OVA** (output VC allocation): switch allocation runs through all
  three stages first, and only the single winner then looks for a free
  output VC.  Only one VC request per output can be made per cycle, and
  a failure wastes the output's grant — the deeper speculation that
  costs OVA ~5% of saturation throughput in Figure 9.

These policy objects are consumed by
:class:`~repro.routers.distributed.DistributedRouter`, which owns the
authoritative output-VC ownership ledgers.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.arbiter import RoundRobinArbiter
from ..routers.base import OutputVcState


class CvaPolicy:
    """Crosspoint VC allocation: filter before switch arbitration."""

    name = "cva"
    #: CVA checks the VC in parallel with switch allocation, adding no
    #: pipeline depth beyond the switch allocator's.
    extra_grant_latency = 0

    def admissible(self, state: OutputVcState, out_vc: int, packet_id: int) -> bool:
        """May a speculative request for ``out_vc`` enter arbitration?"""
        return state.is_free(out_vc) or state.owner(out_vc) == packet_id


class OvaPolicy:
    """Output VC allocation: check after the switch winner is known."""

    name = "ova"

    def __init__(self, num_outputs: int, num_vcs: int, extra_latency: int = 1) -> None:
        self.num_vcs = num_vcs
        self.extra_grant_latency = extra_latency
        self._pick = [RoundRobinArbiter(num_vcs) for _ in range(num_outputs)]

    def allocate(self, output: int, state: OutputVcState) -> Optional[int]:
        """Pick a free output VC for the switch winner, or None.

        OVA is not tied to a particular VC class: the winner takes any
        free VC on the output, chosen round-robin for fairness.
        """
        free: List[bool] = [state.is_free(vc) for vc in range(self.num_vcs)]
        return self._pick[output].arbitrate(free)
