"""Traffic patterns (Table 1 of the paper, plus the worst-case pattern).

A traffic pattern maps a source port to a destination port, possibly
randomly.  The paper evaluates:

* **uniform random** — every output equally likely (Section 4.3);
* **diagonal** — "input i sends packets only to output i and (i+1)
  mod k" (Table 1);
* **hotspot** — "uniform traffic pattern with h = 8 outputs being
  oversubscribed.  For each input, 50% of the traffic is sent to the
  h outputs and the other 50% is randomly distributed" (Table 1);
* **worst-case hierarchical** (Section 6) — each group of inputs
  sharing a row of subswitches sends only to outputs within a single
  column of subswitches, concentrating all traffic into k/p of the
  (k/p)^2 subswitches;

plus two standard patterns (transpose, bit-complement) offered for
experimentation beyond the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.rng import Rng


class TrafficPattern:
    """Maps a source port to a destination port for each new packet."""

    def __init__(self, num_ports: int) -> None:
        if num_ports < 2:
            raise ValueError(f"num_ports must be >= 2, got {num_ports}")
        self.num_ports = num_ports

    def dest(self, src: int, rng: Rng) -> int:
        """Destination port for a packet from ``src``."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class UniformRandom(TrafficPattern):
    """Every output is equally likely for every input."""

    def dest(self, src: int, rng: Rng) -> int:
        return rng.randrange(self.num_ports)


class Diagonal(TrafficPattern):
    """Input i sends only to outputs i and (i+1) mod k (Table 1).

    ``fraction_same`` is the share of packets sent to output i (the
    remainder goes to (i+1) mod k); the paper does not specify a split,
    so an even split is the default.
    """

    def __init__(self, num_ports: int, fraction_same: float = 0.5) -> None:
        super().__init__(num_ports)
        if not 0.0 <= fraction_same <= 1.0:
            raise ValueError(
                f"fraction_same must be in [0, 1], got {fraction_same}"
            )
        self.fraction_same = fraction_same

    def dest(self, src: int, rng: Rng) -> int:
        if rng.random() < self.fraction_same:
            return src % self.num_ports
        return (src + 1) % self.num_ports


class Hotspot(TrafficPattern):
    """h oversubscribed outputs receive ``hot_fraction`` of all traffic.

    Table 1: h = 8, with 50% of each input's traffic spread uniformly
    over the hot outputs and the rest uniform over all outputs.
    """

    def __init__(
        self,
        num_ports: int,
        num_hotspots: int = 8,
        hot_fraction: float = 0.5,
        hotspots: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(num_ports)
        if hotspots is None:
            if not 1 <= num_hotspots <= num_ports:
                raise ValueError(
                    f"num_hotspots must be in [1, {num_ports}], got "
                    f"{num_hotspots}"
                )
            self.hotspots: List[int] = list(range(num_hotspots))
        else:
            self.hotspots = list(hotspots)
            if not self.hotspots:
                raise ValueError("hotspots must be non-empty")
            for h in self.hotspots:
                if not 0 <= h < num_ports:
                    raise ValueError(f"hotspot {h} out of range")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        self.hot_fraction = hot_fraction

    def dest(self, src: int, rng: Rng) -> int:
        if rng.random() < self.hot_fraction:
            return rng.choice(self.hotspots)
        return rng.randrange(self.num_ports)


class WorstCaseHierarchical(TrafficPattern):
    """Worst-case pattern for the hierarchical crossbar (Section 6).

    "Each group of inputs that are connected to the same row of
    subswitches send packets to a randomly selected output within a
    group of outputs that are connected to the same column of
    subswitches" — concentrating all traffic into the diagonal
    subswitches (row r targets column r).
    """

    def __init__(self, num_ports: int, subswitch_size: int) -> None:
        super().__init__(num_ports)
        if num_ports % subswitch_size != 0:
            raise ValueError(
                f"subswitch_size {subswitch_size} must divide num_ports "
                f"{num_ports}"
            )
        self.subswitch_size = subswitch_size

    def dest(self, src: int, rng: Rng) -> int:
        p = self.subswitch_size
        row = src // p
        base = row * p  # column index == row index (diagonal)
        return base + rng.randrange(p)


class Transpose(TrafficPattern):
    """Matrix-transpose permutation on a square port grid (extension)."""

    def __init__(self, num_ports: int) -> None:
        super().__init__(num_ports)
        side = int(round(num_ports ** 0.5))
        if side * side != num_ports:
            raise ValueError(
                f"transpose requires a square port count, got {num_ports}"
            )
        self.side = side

    def dest(self, src: int, rng: Rng) -> int:
        row, col = divmod(src, self.side)
        return col * self.side + row


class BitComplement(TrafficPattern):
    """Destination is the bitwise complement of the source (extension)."""

    def __init__(self, num_ports: int) -> None:
        super().__init__(num_ports)
        if num_ports & (num_ports - 1):
            raise ValueError(
                f"bit-complement requires a power-of-two port count, got "
                f"{num_ports}"
            )
        self.mask = num_ports - 1

    def dest(self, src: int, rng: Rng) -> int:
        return (~src) & self.mask


class Permutation(TrafficPattern):
    """Fixed permutation supplied explicitly."""

    def __init__(self, mapping: Sequence[int]) -> None:
        super().__init__(len(mapping))
        if sorted(mapping) != list(range(len(mapping))):
            raise ValueError("mapping must be a permutation of 0..k-1")
        self.mapping = list(mapping)

    def dest(self, src: int, rng: Rng) -> int:
        return self.mapping[src]


class Tornado(TrafficPattern):
    """Each input sends halfway around the port space (extension).

    dest = (src + ceil(k/2) - 1) mod k — the classic adversary for
    ring-like topologies and a useful stress permutation for switches.
    """

    def dest(self, src: int, rng: Rng) -> int:
        k = self.num_ports
        return (src + (k + 1) // 2 - 1) % k


class Shuffle(TrafficPattern):
    """Perfect-shuffle permutation: rotate the address left one bit."""

    def __init__(self, num_ports: int) -> None:
        super().__init__(num_ports)
        if num_ports & (num_ports - 1):
            raise ValueError(
                f"shuffle requires a power-of-two port count, got {num_ports}"
            )
        self.bits = num_ports.bit_length() - 1

    def dest(self, src: int, rng: Rng) -> int:
        msb = (src >> (self.bits - 1)) & 1
        return ((src << 1) | msb) & (self.num_ports - 1)


class NeighborExchange(TrafficPattern):
    """Even inputs swap with the next odd input and vice versa."""

    def __init__(self, num_ports: int) -> None:
        super().__init__(num_ports)
        if num_ports % 2:
            raise ValueError(
                f"neighbor exchange needs an even port count, got {num_ports}"
            )

    def dest(self, src: int, rng: Rng) -> int:
        return src ^ 1
