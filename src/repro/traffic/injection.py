"""Packet injection processes.

The paper injects packets "using a Bernoulli process" for its main
results (Section 4.3), and for the bursty experiment of Table 1 uses a
"bursty injection based on a Markov ON/OFF process" with an average
burst length of 8 packets.

An injection process answers, once per cycle, whether the source
generates a packet this cycle.  Rates are expressed in packets per
cycle; the harness converts an offered load (fraction of channel
capacity) into a packet rate via
``rate = load / (flit_cycles * packet_size)``.
"""

from __future__ import annotations

from ..core.rng import Rng


class InjectionProcess:
    """Decides, each cycle, whether a packet is generated."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1] packets/cycle, got {rate}")
        self.rate = rate

    def should_inject(self, rng: Rng) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Discard internal state so the process can be reused.

        Memoryless processes have nothing to reset; stateful ones
        (e.g. :class:`MarkovOnOff`) override this.  Sharing one
        process instance across ports or runs without resetting leaks
        burst state between them — every :class:`~repro.traffic.source.
        TrafficSource` resets its process on construction.
        """


class Bernoulli(InjectionProcess):
    """Independent Bernoulli trial each cycle (Section 4.3)."""

    def should_inject(self, rng: Rng) -> bool:
        return rng.random() < self.rate


class MarkovOnOff(InjectionProcess):
    """Two-state Markov ON/OFF process (Table 1, bursty traffic).

    While ON, packets are generated at ``peak_rate`` (default: every
    cycle a Bernoulli trial at the peak rate, which the harness sets to
    the full channel capacity, so bursts arrive back-to-back).  The ON
    state exits with probability 1/avg_burst after each generated
    packet, giving a geometric burst length with the requested mean.
    The OFF->ON probability is chosen so the long-run average rate
    equals ``rate``.
    """

    def __init__(
        self,
        rate: float,
        peak_rate: float,
        avg_burst: float = 8.0,
    ) -> None:
        super().__init__(rate)
        if not 0.0 < peak_rate <= 1.0:
            raise ValueError(f"peak_rate must be in (0, 1], got {peak_rate}")
        if avg_burst < 1.0:
            raise ValueError(f"avg_burst must be >= 1, got {avg_burst}")
        if rate > peak_rate:
            raise ValueError(
                f"rate {rate} exceeds peak_rate {peak_rate}; bursts cannot "
                "sustain the requested load"
            )
        self.peak_rate = peak_rate
        self.avg_burst = avg_burst
        self._beta = 1.0 / avg_burst  # ON -> OFF after a packet
        # Long-run ON fraction must be rate / peak_rate.  With mean ON
        # duration avg_burst / peak_rate cycles, solve for alpha.
        duty = rate / peak_rate if rate > 0 else 0.0
        if duty >= 1.0 or rate == 0.0:
            self._alpha = 1.0 if duty >= 1.0 else 0.0
        else:
            mean_on = avg_burst / peak_rate
            mean_off = mean_on * (1.0 - duty) / duty
            self._alpha = 1.0 / mean_off
        self._on = False

    def reset(self) -> None:
        """Return to the OFF state (mid-burst state must not leak
        into another port or run reusing this instance)."""
        self._on = False

    def should_inject(self, rng: Rng) -> bool:
        if self.rate == 0.0:
            return False
        if not self._on:
            if rng.random() < self._alpha:
                self._on = True
            else:
                return False
        if rng.random() < self.peak_rate:
            if rng.random() < self._beta:
                self._on = False
            return True
        return False


def make_injection(
    kind: str,
    rate: float,
    peak_rate: float = 1.0,
    avg_burst: float = 8.0,
) -> InjectionProcess:
    """Factory: ``kind`` is "bernoulli" or "onoff"."""
    if kind == "bernoulli":
        return Bernoulli(rate)
    if kind == "onoff":
        return MarkovOnOff(rate, peak_rate=peak_rate, avg_burst=avg_burst)
    raise ValueError(f"unknown injection kind {kind!r}")
