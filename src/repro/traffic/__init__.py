"""Traffic generation: patterns (Table 1), injection processes, sources."""

from .injection import Bernoulli, InjectionProcess, MarkovOnOff, make_injection
from .patterns import (
    BitComplement,
    Diagonal,
    Hotspot,
    NeighborExchange,
    Permutation,
    Shuffle,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
    WorstCaseHierarchical,
)
from .source import TrafficSource

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "Diagonal",
    "Hotspot",
    "WorstCaseHierarchical",
    "Transpose",
    "BitComplement",
    "Permutation",
    "Tornado",
    "Shuffle",
    "NeighborExchange",
    "InjectionProcess",
    "Bernoulli",
    "MarkovOnOff",
    "make_injection",
    "TrafficSource",
]
