"""Per-input packet sources.

A :class:`TrafficSource` sits in front of one router input: each cycle
it may generate a packet (injection process), picks its destination
(traffic pattern), splits it into flits, and queues the flits in an
unbounded source FIFO.  The harness drains this FIFO into the router's
input buffers at channel bandwidth (one flit per ``flit_cycles``
cycles), assigning each packet an input VC round-robin among VCs with
buffer space — the standard injection-queue model that matches the
paper's latency measurement (latency runs from packet *generation* to
tail-flit ejection, so source queueing counts).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.flit import Flit, make_packet
from ..core.rng import derive_rng
from .injection import InjectionProcess
from .patterns import TrafficPattern


class TrafficSource:
    """Generates packets for one input port."""

    def __init__(
        self,
        input_id: int,
        pattern: TrafficPattern,
        injection: InjectionProcess,
        packet_size: int,
        seed: int,
    ) -> None:
        if packet_size < 1:
            raise ValueError(f"packet_size must be >= 1, got {packet_size}")
        self.input_id = input_id
        self.pattern = pattern
        self.injection = injection
        # A stateful process (MarkovOnOff) reused across ports or runs
        # must not carry mid-burst state into this source.
        injection.reset()
        self.packet_size = packet_size
        self.queue: Deque[Flit] = deque()
        self._rng = derive_rng(seed, "traffic", input_id)
        self.packets_generated = 0
        self.flits_generated = 0

    def generate(self, now: int, measured: bool) -> Optional[int]:
        """Maybe generate one packet at cycle ``now``.

        Returns the packet id if a packet was generated, else None.
        ``measured`` marks the packet as part of the measurement sample.
        """
        if not self.injection.should_inject(self._rng):
            return None
        dest = self.pattern.dest(self.input_id, self._rng)
        flits = make_packet(
            dest=dest,
            size=self.packet_size,
            src=self.input_id,
            created_at=now,
            measured=measured,
        )
        self.queue.extend(flits)
        self.packets_generated += 1
        self.flits_generated += len(flits)
        return flits[0].packet_id

    def head(self) -> Optional[Flit]:
        """Next flit waiting to enter the router, or None."""
        return self.queue[0] if self.queue else None

    def pop(self) -> Flit:
        return self.queue.popleft()

    def backlog(self) -> int:
        """Flits waiting in the (unbounded) source queue."""
        return len(self.queue)
