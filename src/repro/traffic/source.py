"""Per-input packet sources.

A :class:`TrafficSource` sits in front of one router input: each cycle
it may generate a packet (injection process), picks its destination
(traffic pattern), splits it into flits, and queues the flits in an
unbounded source FIFO.  The harness drains this FIFO into the router's
input buffers at channel bandwidth (one flit per ``flit_cycles``
cycles), assigning each packet an input VC round-robin among VCs with
buffer space — the standard injection-queue model that matches the
paper's latency measurement (latency runs from packet *generation* to
tail-flit ejection, so source queueing counts).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.flit import Flit, make_packet
from ..core.rng import derive_rng
from .injection import InjectionProcess
from .patterns import TrafficPattern


class TrafficSource:
    """Generates packets for one input port."""

    def __init__(
        self,
        input_id: int,
        pattern: TrafficPattern,
        injection: InjectionProcess,
        packet_size: int,
        seed: int,
    ) -> None:
        if packet_size < 1:
            raise ValueError(f"packet_size must be >= 1, got {packet_size}")
        self.input_id = input_id
        self.pattern = pattern
        self.injection = injection
        # A stateful process (MarkovOnOff) reused across ports or runs
        # must not carry mid-burst state into this source.
        injection.reset()
        self.packet_size = packet_size
        self.queue: Deque[Flit] = deque()
        self._rng = derive_rng(seed, "traffic", input_id)
        self.packets_generated = 0
        self.flits_generated = 0
        # Peak injection-queue depth (flits); queue length only grows
        # inside generate(), so sampling here captures the true peak.
        self.peak_backlog = 0
        # Next-arrival prediction state: the injection process is
        # polled ahead of time along this source's private RNG stream.
        # ``_cursor`` is the first cycle whose poll has not been drawn
        # yet; ``_next_arrival`` caches the pre-drawn hit (None = not
        # drawn yet, or the process never fires).
        self._cursor = 0
        self._next_arrival: Optional[int] = None

    def _draw_next(self, start: int) -> Optional[int]:
        """Pre-draw the injection process until its next hit >= ``start``.

        Consumes exactly the draws that polling ``should_inject`` once
        per cycle from ``start`` onward would consume — pre-drawing
        reorders nothing within the stream, so batch prediction is
        byte-equivalent to the lazy cycle-by-cycle polling it replaces
        (the goldens pin this).  A zero-rate process never fires, so
        return None without drawing rather than looping forever.
        """
        if self.injection.rate == 0.0:
            return None
        cycle = max(self._cursor, start)
        while not self.injection.should_inject(self._rng):
            cycle += 1
        self._cursor = cycle + 1
        return cycle

    def peek_arrival(self, now: int) -> Optional[int]:
        """Cycle >= ``now`` of the next packet generation, or None.

        The next-arrival horizon consumed by event-driven scheduling:
        an :class:`~repro.engine.EventScheduler` wake source reports
        this so fast-forward never jumps over a generation cycle.
        Draws (and caches) the prediction on first use.
        """
        if self._next_arrival is None or self._next_arrival < now:
            self._next_arrival = self._draw_next(now)
        return self._next_arrival

    def generate(self, now: int, measured: bool) -> Optional[int]:
        """Generate one packet at cycle ``now`` if the process fires.

        Returns the packet id if a packet was generated, else None.
        ``measured`` marks the packet as part of the measurement sample.
        Driven either every cycle (cycle stepper) or only on executed
        cycles (event mode) — skipping cycles before the pre-drawn
        arrival is a no-op here, so both drive modes see identical
        generation times and RNG streams.
        """
        if self.peek_arrival(now) != now:
            return None
        self._next_arrival = None
        dest = self.pattern.dest(self.input_id, self._rng)
        flits = make_packet(
            dest=dest,
            size=self.packet_size,
            src=self.input_id,
            created_at=now,
            measured=measured,
        )
        self.queue.extend(flits)
        self.packets_generated += 1
        self.flits_generated += len(flits)
        if len(self.queue) > self.peak_backlog:
            self.peak_backlog = len(self.queue)
        return flits[0].packet_id

    def head(self) -> Optional[Flit]:
        """Next flit waiting to enter the router, or None."""
        return self.queue[0] if self.queue else None

    def pop(self) -> Flit:
        return self.queue.popleft()

    def backlog(self) -> int:
        """Flits waiting in the (unbounded) source queue."""
        return len(self.queue)
