"""Tests for DelayLine and BusyTracker."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pipeline import BusyTracker, DelayLine


class TestDelayLine:
    def test_matures_after_latency(self):
        line = DelayLine(3)
        line.push(10, "x")
        assert line.pop_ready(12) == []
        assert line.pop_ready(13) == ["x"]
        assert line.pop_ready(14) == []

    def test_zero_latency(self):
        line = DelayLine(0)
        line.push(5, "a")
        assert line.pop_ready(5) == ["a"]

    def test_insertion_order_preserved_same_cycle(self):
        line = DelayLine(2)
        line.push(0, "a")
        line.push(0, "b")
        line.push(0, "c")
        assert line.pop_ready(2) == ["a", "b", "c"]

    def test_push_at_explicit_due(self):
        line = DelayLine(1)
        line.push_at(7, "late")
        line.push_at(3, "early")
        assert line.pop_ready(3) == ["early"]
        assert line.pop_ready(7) == ["late"]

    def test_out_of_order_pushes_drain_in_due_order(self):
        line = DelayLine(0)
        line.push_at(5, "b")
        line.push_at(2, "a")
        line.push_at(9, "c")
        assert line.pop_ready(100) == ["a", "b", "c"]

    def test_peek_does_not_remove(self):
        line = DelayLine(1)
        line.push(0, "x")
        assert line.peek_ready(1) == ["x"]
        assert line.pop_ready(1) == ["x"]

    def test_len_and_bool(self):
        line = DelayLine(1)
        assert not line
        line.push(0, 1)
        assert line and len(line) == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(-1)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 100)), max_size=40))
    def test_everything_matures_exactly_once(self, items):
        line = DelayLine(0)
        for due, val in items:
            line.push_at(due, val)
        out = []
        for t in range(51):
            out.extend(line.pop_ready(t))
        assert sorted(out) == sorted(v for _, v in items)
        assert len(line) == 0


class TestBusyTracker:
    def test_starts_free(self):
        bt = BusyTracker(4)
        assert all(bt.free(i, 0) for i in range(4))

    def test_reserve_blocks_until_expiry(self):
        bt = BusyTracker(2)
        bt.reserve(0, now=5, duration=4)
        assert not bt.free(0, 8)
        assert bt.free(0, 9)
        assert bt.free(1, 5)

    def test_double_reserve_raises(self):
        bt = BusyTracker(1)
        bt.reserve(0, 0, 4)
        with pytest.raises(RuntimeError):
            bt.reserve(0, 2, 4)

    def test_reserve_after_expiry_ok(self):
        bt = BusyTracker(1)
        bt.reserve(0, 0, 4)
        bt.reserve(0, 4, 4)
        assert bt.busy_until(0) == 8

    def test_extend(self):
        bt = BusyTracker(1)
        bt.extend(0, 10)
        assert not bt.free(0, 9)
        bt.extend(0, 5)  # never shrinks
        assert bt.busy_until(0) == 10

    def test_any_busy(self):
        bt = BusyTracker(3)
        assert not bt.any_busy(0)
        bt.reserve(1, 0, 2)
        assert bt.any_busy(0)
        assert not bt.any_busy(2)

    def test_len(self):
        assert len(BusyTracker(7)) == 7

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            BusyTracker(0)
