"""Tests for flit and packet construction."""

import pytest

from repro.core.flit import Flit, make_packet, reset_packet_ids


class TestMakePacket:
    def test_single_flit_packet_is_head_and_tail(self):
        (flit,) = make_packet(dest=3, size=1)
        assert flit.is_head
        assert flit.is_tail
        assert not flit.is_body

    def test_multi_flit_packet_structure(self):
        flits = make_packet(dest=5, size=4)
        assert [f.is_head for f in flits] == [True, False, False, False]
        assert [f.is_tail for f in flits] == [False, False, False, True]
        assert [f.is_body for f in flits] == [False, True, True, False]
        assert [f.flit_index for f in flits] == [0, 1, 2, 3]

    def test_flits_share_packet_id(self):
        flits = make_packet(dest=0, size=3)
        assert len({f.packet_id for f in flits}) == 1

    def test_distinct_packets_get_distinct_ids(self):
        a = make_packet(dest=0, size=1)[0]
        b = make_packet(dest=0, size=1)[0]
        assert a.packet_id != b.packet_id

    def test_explicit_packet_id(self):
        flits = make_packet(dest=0, size=2, packet_id=777)
        assert all(f.packet_id == 777 for f in flits)

    def test_dest_src_and_timestamps_propagate(self):
        flits = make_packet(dest=9, size=2, src=4, created_at=123)
        for f in flits:
            assert f.dest == 9
            assert f.src == 4
            assert f.created_at == 123

    def test_measured_flag(self):
        flits = make_packet(dest=0, size=2, measured=True)
        assert all(f.measured for f in flits)

    def test_route_is_copied_per_flit(self):
        flits = make_packet(dest=0, size=2, route=[1, 2])
        flits[0].route.append(99)
        assert flits[1].route == [1, 2]

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(dest=0, size=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(dest=0, size=-1)

    def test_reset_packet_ids(self):
        reset_packet_ids()
        first = make_packet(dest=0, size=1)[0].packet_id
        reset_packet_ids()
        again = make_packet(dest=0, size=1)[0].packet_id
        assert first == again == 0


class TestFlit:
    def test_default_out_vc_unallocated(self):
        f = Flit(packet_id=1, flit_index=0, is_head=True, is_tail=True, src=0, dest=1)
        assert f.out_vc is None

    def test_clone_for_stats_is_independent(self):
        f = Flit(
            packet_id=1, flit_index=0, is_head=True, is_tail=False,
            src=2, dest=3, vc=1, route=[4, 5],
        )
        c = f.clone_for_stats()
        assert c.packet_id == f.packet_id
        assert c.route == [4, 5]
        c.route.append(6)
        c.vc = 3
        assert f.route == [4, 5]
        assert f.vc == 1
