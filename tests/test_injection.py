"""Tests for Bernoulli and Markov ON/OFF injection processes."""

import random  # lint: disable=R001 (tests build local seeded streams)

import pytest

from repro.traffic.injection import Bernoulli, MarkovOnOff, make_injection


class TestBernoulli:
    def test_rate_zero_never_injects(self):
        proc = Bernoulli(0.0)
        rng = random.Random(0)
        assert not any(proc.should_inject(rng) for _ in range(1000))

    def test_rate_one_always_injects(self):
        proc = Bernoulli(1.0)
        rng = random.Random(0)
        assert all(proc.should_inject(rng) for _ in range(100))

    def test_long_run_rate(self):
        proc = Bernoulli(0.2)
        rng = random.Random(1)
        n = 50000
        hits = sum(proc.should_inject(rng) for _ in range(n))
        assert abs(hits / n - 0.2) < 0.01

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)
        with pytest.raises(ValueError):
            Bernoulli(-0.1)


class TestMarkovOnOff:
    def test_long_run_rate_matches_target(self):
        """The ON/OFF duty cycle must average out to the offered rate."""
        proc = MarkovOnOff(rate=0.1, peak_rate=0.25, avg_burst=8.0)
        rng = random.Random(2)
        n = 200000
        hits = sum(proc.should_inject(rng) for _ in range(n))
        assert abs(hits / n - 0.1) < 0.01

    def test_traffic_is_bursty(self):
        """Injections cluster: the variance of per-window counts must
        exceed that of a Bernoulli process at the same rate."""
        rate, peak = 0.1, 0.25
        rng_a, rng_b = random.Random(3), random.Random(3)
        onoff = MarkovOnOff(rate, peak, avg_burst=8.0)
        bern = Bernoulli(rate)
        window = 40

        def window_counts(proc, rng):
            counts = []
            for _ in range(800):
                counts.append(sum(proc.should_inject(rng) for _ in range(window)))
            return counts

        def var(xs):
            m = sum(xs) / len(xs)
            return sum((x - m) ** 2 for x in xs) / len(xs)

        assert var(window_counts(onoff, rng_a)) > 1.5 * var(
            window_counts(bern, rng_b)
        )

    def test_mean_burst_length(self):
        """Consecutive packets within one ON period average ~avg_burst."""
        proc = MarkovOnOff(rate=0.05, peak_rate=1.0, avg_burst=8.0)
        rng = random.Random(4)
        bursts = []
        current = 0
        for _ in range(200000):
            if proc.should_inject(rng):
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        mean = sum(bursts) / len(bursts)
        assert 6.0 < mean < 10.0

    def test_zero_rate(self):
        proc = MarkovOnOff(rate=0.0, peak_rate=0.25)
        rng = random.Random(0)
        assert not any(proc.should_inject(rng) for _ in range(100))

    def test_rate_above_peak_rejected(self):
        with pytest.raises(ValueError):
            MarkovOnOff(rate=0.5, peak_rate=0.25)

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            MarkovOnOff(rate=0.1, peak_rate=0.25, avg_burst=0.5)

    def test_invalid_peak(self):
        with pytest.raises(ValueError):
            MarkovOnOff(rate=0.0, peak_rate=0.0)

    def test_reset_clears_burst_state(self):
        """Regression: a MarkovOnOff instance reused across ports or
        runs carried its ON state over, so the second user started
        mid-burst and the streams were correlated."""
        proc = MarkovOnOff(rate=0.2, peak_rate=1.0, avg_burst=50.0)
        rng = random.Random(5)
        # Drive until the process is mid-burst.
        for _ in range(10000):
            proc.should_inject(rng)
            if proc._on:
                break
        assert proc._on
        proc.reset()
        assert not proc._on

    def test_reset_makes_reuse_deterministic(self):
        """Two identical RNG streams through one instance must match
        when reset() is called between uses."""
        proc = MarkovOnOff(rate=0.2, peak_rate=1.0, avg_burst=8.0)
        rng = random.Random(7)
        a = [proc.should_inject(rng) for _ in range(500)]
        proc.reset()
        rng = random.Random(7)
        b = [proc.should_inject(rng) for _ in range(500)]
        assert a == b

    def test_bernoulli_reset_is_noop(self):
        proc = Bernoulli(0.3)
        proc.reset()  # must exist and be harmless on stateless processes
        rng = random.Random(8)
        assert isinstance(proc.should_inject(rng), bool)

    def test_traffic_source_resets_shared_process(self):
        """TrafficSource construction resets its injection process, so
        sharing one stateful instance across ports cannot leak burst
        state from one source into the next."""
        from repro.traffic.patterns import UniformRandom
        from repro.traffic.source import TrafficSource

        proc = MarkovOnOff(rate=0.2, peak_rate=1.0, avg_burst=8.0)
        proc._on = True  # simulate mid-burst state left by a prior user
        TrafficSource(0, UniformRandom(4), proc, packet_size=1, seed=1)
        assert not proc._on


class TestFactory:
    def test_bernoulli(self):
        assert isinstance(make_injection("bernoulli", 0.1), Bernoulli)

    def test_onoff(self):
        proc = make_injection("onoff", 0.1, peak_rate=0.25, avg_burst=4.0)
        assert isinstance(proc, MarkovOnOff)
        assert proc.avg_burst == 4.0

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_injection("poisson", 0.1)
