"""Tests for credit-based flow control (Section 5.2 mechanisms)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.credit import CreditCounter, CreditReturnBus, DelayedCreditPipe


class TestCreditCounter:
    def test_starts_full(self):
        c = CreditCounter(4)
        assert c.free == 4
        assert c.available

    def test_consume_restore_cycle(self):
        c = CreditCounter(2)
        c.consume()
        c.consume()
        assert not c.available
        c.restore()
        assert c.free == 1

    def test_underflow_raises(self):
        c = CreditCounter(1)
        c.consume()
        with pytest.raises(RuntimeError):
            c.consume()

    def test_overflow_raises(self):
        c = CreditCounter(1)
        with pytest.raises(RuntimeError):
            c.restore()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CreditCounter(0)

    @given(st.lists(st.booleans(), max_size=100))
    def test_free_count_always_bounded(self, ops):
        c = CreditCounter(3)
        for consume in ops:
            if consume and c.available:
                c.consume()
            elif not consume and c.free < 3:
                c.restore()
            assert 0 <= c.free <= 3


class TestDelayedCreditPipe:
    def test_delivers_after_latency(self):
        pipe = DelayedCreditPipe(3)
        hits = []
        pipe.send(now=10, sink=lambda: hits.append(1))
        assert pipe.step(12) == 0
        assert hits == []
        assert pipe.step(13) == 1
        assert hits == [1]

    def test_zero_latency_delivers_same_cycle(self):
        pipe = DelayedCreditPipe(0)
        hits = []
        pipe.send(0, lambda: hits.append(1))
        assert pipe.step(0) == 1

    def test_multiple_in_flight(self):
        pipe = DelayedCreditPipe(2)
        hits = []
        pipe.send(0, lambda: hits.append("a"))
        pipe.send(1, lambda: hits.append("b"))
        pipe.step(2)
        assert hits == ["a"]
        pipe.step(3)
        assert hits == ["a", "b"]

    def test_pending(self):
        pipe = DelayedCreditPipe(5)
        pipe.send(0, lambda: None)
        assert pipe.pending() == 1
        pipe.step(5)
        assert pipe.pending() == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DelayedCreditPipe(-1)


class TestCreditReturnBus:
    def test_one_credit_per_cycle(self):
        """All crosspoints posting at once drain one per cycle."""
        bus = CreditReturnBus(num_sources=4, latency=1)
        hits = []
        for s in range(4):
            bus.post(s, lambda s=s: hits.append(s))
        # Wins at cycles 0-3 arrive one latency cycle later, at 1-4.
        for cycle in range(5):
            bus.step(cycle)
        assert sorted(hits) == [0, 1, 2, 3]
        assert len(hits) == 4

    def test_round_robin_across_sources(self):
        bus = CreditReturnBus(num_sources=3, latency=1)
        order = []
        for s in range(3):
            bus.post(s, lambda s=s: order.append(s))
            bus.post(s, lambda s=s: order.append(s))
        for cycle in range(7):
            bus.step(cycle)
        # First pass grants each source once before repeating any.
        assert sorted(order[:3]) == [0, 1, 2]

    def test_latency_delays_delivery(self):
        bus = CreditReturnBus(num_sources=1, latency=2)
        hits = []
        bus.post(0, lambda: hits.append(1))
        bus.step(0)  # wins arbitration at cycle 0
        bus.step(1)
        assert hits == []
        bus.step(2)
        assert hits == [1]

    def test_backlog_and_idle(self):
        bus = CreditReturnBus(num_sources=2, latency=1)
        assert bus.idle()
        bus.post(0, lambda: None)
        bus.post(0, lambda: None)
        assert bus.backlog() == 2
        bus.step(0)
        # One credit won the bus and is on the wire; one still waits.
        assert bus.backlog() == 1
        assert not bus.idle()
        bus.step(1)
        assert bus.backlog() == 0
        assert not bus.idle()  # second credit still in flight
        bus.step(2)
        assert bus.idle()

    def test_invalid_sources(self):
        with pytest.raises(ValueError):
            CreditReturnBus(0)

    def test_zero_latency_rejected(self):
        """latency=0 would deliver a credit in the same step() that
        granted it the bus — same-cycle visibility the two-phase engine
        forbids.  Zero-latency dedicated wires use DelayedCreditPipe."""
        with pytest.raises(ValueError, match="latency"):
            CreditReturnBus(num_sources=4, latency=0)
        with pytest.raises(ValueError, match="latency"):
            CreditReturnBus(num_sources=4, latency=-1)

    def test_loser_retries_and_eventually_wins(self):
        """A crosspoint that loses the bus re-arbitrates later and its
        credit is not lost (Section 5.2)."""
        bus = CreditReturnBus(num_sources=8, latency=1)
        hits = []
        for s in range(8):
            bus.post(s, lambda s=s: hits.append(s))
        for cycle in range(9):
            bus.step(cycle)
        assert sorted(hits) == list(range(8))
