"""Unit tests for the whole-program analysis layer.

Covers the per-file summarizer (:mod:`repro.analysis.flow.summary`),
the cross-module index (:mod:`repro.analysis.flow.index`), and the
project rules R008-R012 (:mod:`repro.analysis.rules.flow_rules`),
plus the cross-module regression cases for R005-R007 that the
per-file forms are blind to.
"""

import ast
import textwrap

import pytest

from repro.analysis.flow.index import ProjectIndex
from repro.analysis.flow.summary import FileSummary, summarize_module
from repro.analysis.lint import _parse_pragmas, lint_file, lint_paths
from repro.analysis.rules import all_rules
from repro.analysis.rules.engine_rules import (
    ComputePhasePurityRule,
    HookEmissionPhaseRule,
)
from repro.analysis.rules.flow_rules import (
    HookContractRule,
    PhaseRaceRule,
    RngStreamRule,
    SerializationReadinessRule,
    StalePragmaRule,
)
from repro.analysis.rules.structure import RouterSubclassRule


def summarize(src, path="mod.py"):
    src = textwrap.dedent(src)
    tree = ast.parse(src)
    pragmas = {ln: sorted(c) for ln, c in _parse_pragmas(src).items()}
    return summarize_module(tree, path, pragmas=pragmas)


def index_of(**sources):
    """Build a ProjectIndex from ``name=source`` pairs (module ``name``)."""
    summaries = [
        summarize(src, "%s.py" % name) for name, src in sorted(sources.items())
    ]
    return ProjectIndex(summaries)


def run_rule(rule, index):
    return list(rule.check_project(index))


HOOKS_SRC = """
    class EngineHooks:
        def emit_cycle_start(self, cycle):
            pass

        def emit_flit_move(self, kind, flit, port, cycle):
            pass

        def emit_spec(self, flit, outcome=None):
            pass

        def on_cycle_start(self, fn):
            pass

        def on_flit_move(self, fn):
            pass
"""


# ----------------------------------------------------------------------
# Summarizer
# ----------------------------------------------------------------------


class TestSummarizer:
    def test_self_vs_cross_writes(self):
        s = summarize(
            """
            class C:
                def commit(self, cycle):
                    self.count = 1
                    peer.queue = 2
                    self.peer.depth = 3
            """
        )
        commit = s.classes[0].methods["commit"]
        self_attrs = {w.attr for w in commit.self_writes}
        # `self.peer.depth` has leftmost root `self`: it is a self write.
        assert self_attrs == {"count", "depth"}
        assert [(w.root, w.attr) for w in commit.cross_writes] == [
            ("peer", "queue")
        ]

    def test_value_kind_classification(self):
        s = summarize(
            """
            import threading

            class C:
                def __init__(self, path):
                    self.a = lambda x: x
                    self.b = (n for n in range(3))
                    self.c = open(path)
                    self.d = threading.Lock()
                    self.e = self.commit
                    self.f = self._make()
                    self.g = 42
            """
        )
        kinds = {
            w.attr: w.kind for w in s.classes[0].methods["__init__"].self_writes
        }
        assert kinds == {
            "a": "lambda",
            "b": "generator",
            "c": "open",
            "d": "lock",
            "e": "self_attr:commit",
            "f": "self_call:_make",
            "g": "plain",
        }

    def test_self_reads_calls_and_emits(self):
        s = summarize(
            """
            class C:
                def compute(self, cycle):
                    depth = self.queue
                    self._scan()
                    self.hooks.emit_grant(None, 0, cycle)
            """
        )
        compute = s.classes[0].methods["compute"]
        assert "queue" in compute.self_reads
        assert [c.name for c in compute.self_calls] == ["_scan"]
        assert [e.event for e in compute.emits] == ["emit_grant"]

    def test_rng_site_keys_and_instability(self):
        s = summarize(
            """
            from repro.core.rng import derive_rng

            SHARED = derive_rng(7, "traffic")


            def make(seed, comp):
                a = derive_rng(seed, "arb", comp.name)
                b = derive_rng(seed, id(comp))
                c = derive_rng(seed, {1, 2})
            """
        )
        by_line = {site.line: site for site in s.rng_sites}
        module_site = by_line[4]
        assert module_site.scope == "module"
        assert module_site.assigned_global
        assert module_site.key == ["const:'traffic'"]
        fn_site = by_line[8]
        assert fn_site.scope == "function"
        assert not fn_site.assigned_global
        assert fn_site.key[0] == "const:'arb'"
        assert fn_site.key[1].startswith("dyn:")
        assert by_line[9].bad == ["id()"]
        assert by_line[10].bad == ["set iteration"]

    def test_closure_return_detection(self):
        s = summarize(
            """
            class C:
                def _make(self):
                    def sink(v):
                        return (self, v)
                    return sink

                def _plain(self):
                    return 3
            """
        )
        methods = s.classes[0].methods
        assert methods["_make"].returns_closure
        assert not methods["_plain"].returns_closure

    def test_roundtrip_through_json_dict(self):
        s = summarize(
            """
            from repro.core.rng import derive_rng  # lint: disable=R001

            class C:
                def compute(self, cycle):
                    self._staged = self.queue

                def commit(self, cycle):
                    self.queue = self._staged
            """
        )
        assert FileSummary.from_dict(s.to_dict()) == s


# ----------------------------------------------------------------------
# Index
# ----------------------------------------------------------------------


class TestProjectIndex:
    def test_resolve_class_across_modules(self):
        index = index_of(
            base="""
            class Router:
                pass
            """,
            mesh="""
            from base import Router

            class MeshSwitch(Router):
                pass
            """,
        )
        assert index.resolve_class("MeshSwitch") == "mesh.MeshSwitch"
        assert index.resolve_class("Router", "mesh") == "base.Router"
        assert index.resolve_class("NoSuchClass") is None

    def test_ambiguous_simple_name_needs_dotted_suffix(self):
        index = index_of(
            one="""
            class Arb:
                pass
            """,
            two="""
            class Arb:
                pass
            """,
        )
        assert index.resolve_class("Arb") is None
        assert index.resolve_class("one.Arb") == "one.Arb"

    def test_mro_chain_and_external_bases(self):
        index = index_of(
            base="""
            class Router:
                pass
            """,
            sub="""
            from base import Router

            class A(Router):
                pass

            class B(A, SomeMixin):
                pass
            """,
        )
        chain, external = index.mro("sub.B")
        assert chain == ["sub.B", "sub.A", "base.Router"]
        assert external == ["SomeMixin"]
        assert index.is_router_family("sub.B")

    def test_two_phase_via_external_component_base(self):
        index = index_of(
            comp="""
            from repro.engine import Component

            class Stage(Component):
                def compute(self, cycle):
                    pass
            """
        )
        assert index.is_two_phase("comp.Stage")

    def test_resolve_method_walks_mro(self):
        index = index_of(
            base="""
            class Base:
                def commit(self, cycle):
                    self.x = 1
            """,
            sub="""
            from base import Base

            class Sub(Base):
                def compute(self, cycle):
                    pass
            """,
        )
        resolved = index.resolve_method("sub.Sub", "commit")
        assert resolved is not None
        assert resolved[0] == "base.Base"

    def test_hooks_registry_from_source(self):
        index = index_of(hooks=HOOKS_SRC)
        registry = index.hooks_registry()
        assert set(registry) == {"cycle_start", "flit_move", "spec"}
        assert registry["flit_move"].params == ["kind", "flit", "port", "cycle"]
        assert registry["spec"].min_args == 1
        assert registry["spec"].max_args == 2

    def test_empty_registry_without_hooks_class(self):
        index = index_of(plain="x = 1")
        assert index.hooks_registry() == {}


# ----------------------------------------------------------------------
# R008 phase-race
# ----------------------------------------------------------------------


class TestPhaseRace:
    def test_impure_helper_reached_from_compute(self):
        index = index_of(
            comp="""
            class C:
                def compute(self, cycle):
                    self._scan()

                def _scan(self):
                    self.seen = 1

                def commit(self, cycle):
                    pass
            """
        )
        findings = run_rule(PhaseRaceRule(), index)
        assert len(findings) == 1
        assert "writes `self.seen`" in findings[0].message

    def test_chain_through_two_helpers_reports_via(self):
        index = index_of(
            comp="""
            class C:
                def compute(self, cycle):
                    self._a()

                def _a(self):
                    self._b()

                def _b(self):
                    self.hooks.emit_grant(None, 0, 0)

                def commit(self, cycle):
                    pass
            """
        )
        findings = run_rule(PhaseRaceRule(), index)
        assert len(findings) == 1
        assert "via `_a` -> `_b`" in findings[0].message

    def test_staged_writes_through_helpers_are_pure(self):
        index = index_of(
            comp="""
            class C:
                def compute(self, cycle):
                    self.cycle = cycle
                    self._stage()

                def _stage(self):
                    self._staged_grant = 1

                def commit(self, cycle):
                    self.granted = self._staged_grant
            """
        )
        assert run_rule(PhaseRaceRule(), index) == []

    def test_commit_writing_compute_read_attr_of_peer(self):
        index = index_of(
            reader="""
            class Reader:
                def compute(self, cycle):
                    self._staged = self.queue

                def commit(self, cycle):
                    pass
            """,
            writer="""
            class Writer:
                def compute(self, cycle):
                    pass

                def commit(self, cycle):
                    peer = self.peer
                    peer.queue = ()
                    peer.unrelated = 1
            """,
        )
        findings = run_rule(PhaseRaceRule(), index)
        assert len(findings) == 1
        assert "writes `peer.queue`" in findings[0].message

    def test_helper_resolution_is_per_subclass(self):
        # The same inherited compute is dangerous or safe depending on
        # which override of the helper the concrete class binds.
        index = index_of(
            base="""
            class Base:
                def compute(self, cycle):
                    self._step()

                def _step(self):
                    pass

                def commit(self, cycle):
                    pass
            """,
            sub="""
            from base import Base

            class Dirty(Base):
                def _step(self):
                    self.log = 1
            """,
        )
        findings = run_rule(PhaseRaceRule(), index)
        assert len(findings) == 1
        assert "writes `self.log`" in findings[0].message


# ----------------------------------------------------------------------
# R009 rng streams
# ----------------------------------------------------------------------


class TestRngStreams:
    def test_duplicate_constant_keys_across_files(self):
        index = index_of(
            a="""
            from repro.core.rng import derive_rng

            def make(seed):
                return derive_rng(seed, "traffic")
            """,
            b="""
            from repro.core.rng import derive_rng

            def make(seed):
                return derive_rng(seed, "traffic")
            """,
        )
        findings = run_rule(RngStreamRule(), index)
        assert len(findings) == 2
        a_side = next(f for f in findings if f.path == "a.py")
        assert "b.py:5" in a_side.message
        assert "a.py" not in a_side.message.split("also derived at")[1]

    def test_distinct_keys_are_clean(self):
        index = index_of(
            a="""
            from repro.core.rng import derive_rng

            def make(seed, port):
                return derive_rng(seed, "arb", port)
            """
        )
        assert run_rule(RngStreamRule(), index) == []

    def test_module_level_stream_flagged(self):
        index = index_of(
            a="""
            from repro.core.rng import derive_rng

            STREAM = derive_rng(1, "shared")
            """
        )
        findings = run_rule(RngStreamRule(), index)
        assert len(findings) == 1
        assert "module-level" in findings[0].message

    def test_empty_key_flagged(self):
        index = index_of(
            a="""
            from repro.core.rng import derive_rng

            def make(seed):
                return derive_rng(seed)
            """
        )
        findings = run_rule(RngStreamRule(), index)
        assert len(findings) == 1
        assert "no key" in findings[0].message


# ----------------------------------------------------------------------
# R010 serialization readiness
# ----------------------------------------------------------------------


class TestSerializationReadiness:
    def test_lambda_on_component_state(self):
        index = index_of(
            comp="""
            class C:
                def __init__(self):
                    self.cb = lambda x: x

                def compute(self, cycle):
                    pass

                def commit(self, cycle):
                    pass
            """
        )
        findings = run_rule(SerializationReadinessRule(), index)
        assert len(findings) == 1
        assert "a lambda" in findings[0].message

    def test_plain_class_self_state_not_flagged(self):
        index = index_of(
            helper="""
            class SortKey:
                def __init__(self):
                    self.fn = lambda x: x
            """
        )
        assert run_rule(SerializationReadinessRule(), index) == []

    def test_cross_write_flagged_even_from_plain_class(self):
        index = index_of(
            wirer="""
            class Wirer:
                def wire(self, peer):
                    peer.handler = lambda v: v
            """
        )
        findings = run_rule(SerializationReadinessRule(), index)
        assert len(findings) == 1
        assert "`peer.handler`" in findings[0].message

    def test_bound_method_and_closure_labels(self):
        index = index_of(
            comp="""
            class C:
                def __init__(self):
                    self.cb = self.commit
                    self.sink = self._make()
                    self.snapshot = self.tuple_of_state

                def _make(self):
                    def sink(v):
                        return (self, v)
                    return sink

                def compute(self, cycle):
                    pass

                def commit(self, cycle):
                    pass
            """
        )
        findings = run_rule(SerializationReadinessRule(), index)
        messages = "\n".join(f.message for f in findings)
        assert "a bound method (`self.commit`)" in messages
        assert "a closure (from `self._make()`)" in messages
        # `self.tuple_of_state` names no method in the MRO: treated as a
        # plain attribute copy, not a bound-method capture.
        assert len(findings) == 2


# ----------------------------------------------------------------------
# R011 hook contract
# ----------------------------------------------------------------------


class TestHookContract:
    def _index(self, body):
        return index_of(hooks=HOOKS_SRC, site=body)

    def test_silent_without_registry(self):
        index = index_of(
            site="""
            hooks.emit_whatever(1, 2, 3)
            """
        )
        assert run_rule(HookContractRule(), index) == []

    def test_valid_emit_is_clean(self):
        index = self._index(
            """
            hooks.emit_flit_move("accept", None, 0, 7)
            hooks.emit_spec(None)
            hooks.emit_spec(None, outcome="taken")
            """
        )
        assert run_rule(HookContractRule(), index) == []

    def test_unknown_event_on_hooksish_receiver(self):
        index = self._index("hooks.emit_flit_moved(1)")
        findings = run_rule(HookContractRule(), index)
        assert len(findings) == 1
        assert "names no EngineHooks event" in findings[0].message

    def test_unknown_event_on_other_receiver_is_ignored(self):
        # `emit_` on a non-hooks object (e.g. a signal bus) is out of
        # scope; only hook-shaped receivers are held to the registry.
        index = self._index("radio.emit_beacon(1)")
        assert run_rule(HookContractRule(), index) == []

    def test_too_many_args(self):
        index = self._index("hooks.emit_cycle_start(1, 2)")
        findings = run_rule(HookContractRule(), index)
        assert len(findings) == 1
        assert "at most 1 argument" in findings[0].message

    def test_unknown_keyword(self):
        index = self._index("hooks.emit_spec(None, verdict=1)")
        findings = run_rule(HookContractRule(), index)
        assert len(findings) == 1
        assert "no keyword `verdict`" in findings[0].message

    def test_missing_required_argument(self):
        index = self._index("hooks.emit_flit_move('accept', None, 0)")
        findings = run_rule(HookContractRule(), index)
        assert len(findings) == 1
        assert "missing required payload argument `cycle`" in findings[0].message

    def test_star_args_are_not_checked(self):
        index = self._index("hooks.emit_flit_move(*payload)")
        assert run_rule(HookContractRule(), index) == []

    def test_handler_arity_mismatch(self):
        index = self._index(
            """
            def log_move(kind):
                return kind


            hooks.on_flit_move(log_move)
            """
        )
        findings = run_rule(HookContractRule(), index)
        assert len(findings) == 1
        assert "delivers 4 arguments" in findings[0].message
        assert "accepts 1" in findings[0].message

    def test_handler_with_defaults_and_varargs_accepted(self):
        index = self._index(
            """
            def flexible(*payload):
                return payload


            def defaulted(kind, flit, port=0, cycle=0):
                return kind


            hooks.on_flit_move(flexible)
            hooks.on_flit_move(defaulted)
            hooks.on_cycle_start(lambda cycle: cycle)
            """
        )
        assert run_rule(HookContractRule(), index) == []

    def test_lambda_handler_arity(self):
        index = self._index("hooks.on_flit_move(lambda kind: kind)")
        findings = run_rule(HookContractRule(), index)
        assert len(findings) == 1
        assert "lambda handler accepts 1" in findings[0].message


# ----------------------------------------------------------------------
# R012 stale pragmas
# ----------------------------------------------------------------------


class TestStalePragma:
    def _findings(self, src, hits):
        summary = summarize(src, "mod.py")
        index = ProjectIndex([summary])
        index.rule_hits = {"mod.py": set(hits)}
        return run_rule(StalePragmaRule(), index)

    def test_stale_listed_pragma(self):
        findings = self._findings("x = 1  # lint: disable=R001\n", hits=[])
        assert len(findings) == 1
        assert "stale pragma" in findings[0].message

    def test_used_pragma_is_clean(self):
        src = "import random  # lint: disable=R001\n"
        assert self._findings(src, hits=[(1, "R001")]) == []

    def test_partially_used_pragma_is_clean(self):
        # One of the listed codes fires: the pragma is earning its keep.
        src = "import random  # lint: disable=R001,R002\n"
        assert self._findings(src, hits=[(1, "R001")]) == []

    def test_stale_blanket_pragma(self):
        findings = self._findings("x = 1  # lint: disable\n", hits=[])
        assert len(findings) == 1
        assert "blanket" in findings[0].message

    def test_pragma_naming_r012_is_exempt(self):
        src = "x = 1  # lint: disable=R012\n"
        assert self._findings(src, hits=[]) == []


# ----------------------------------------------------------------------
# Cross-module regressions for R005/R006/R007
# ----------------------------------------------------------------------


def _write_tree(tmp_path, files):
    for name, src in files.items():
        (tmp_path / name).write_text(textwrap.dedent(src), encoding="utf-8")


class TestCrossModuleBlindness:
    """Two-file cases where per-file linting is provably blind and the
    whole-program pass is not."""

    BASE = """
        class Router:
            def __init__(self, config):
                self.config = config

            def step(self, cycle):
                pass


        class MeshSwitch(Router):
            def _advance(self, cycle):
                pass
    """

    SUB_R005 = """
        from base import MeshSwitch


        class BadSwitch(MeshSwitch):
            def __init__(self, config):
                self.config = config
    """

    def test_r005_subclass_init_chain(self, tmp_path):
        _write_tree(tmp_path, {"base.py": self.BASE, "sub.py": self.SUB_R005})
        rule = RouterSubclassRule()
        per_file = lint_file(tmp_path / "sub.py", [rule])
        assert per_file == []  # the Router ancestry is in the other file
        project = [
            f
            for f in lint_paths([str(tmp_path)], all_rules())
            if f.code == "R005"
        ]
        assert len(project) == 1
        assert project[0].path.endswith("sub.py")
        assert "never calls `super().__init__()`" in project[0].message

    TWO_PHASE_BASE = """
        class Pipeline:
            def compute(self, cycle):
                self._staged = 1

            def commit(self, cycle):
                self.value = self._staged
    """

    SUB_R006 = """
        from base import Pipeline


        class LeakyPipeline(Pipeline):
            def compute(self, cycle):
                self.value = cycle
    """

    def test_r006_subclass_overriding_only_compute(self, tmp_path):
        _write_tree(
            tmp_path, {"base.py": self.TWO_PHASE_BASE, "sub.py": self.SUB_R006}
        )
        rule = ComputePhasePurityRule()
        per_file = lint_file(tmp_path / "sub.py", [rule])
        assert per_file == []  # no `commit` in this file: per-file blind
        project = [
            f
            for f in lint_paths([str(tmp_path)], all_rules())
            if f.code == "R006"
        ]
        assert len(project) == 1
        assert project[0].path.endswith("sub.py")
        assert "`LeakyPipeline.compute` writes `self.value`" in project[0].message

    SUB_R007 = """
        from base import Pipeline


        class ChattyPipeline(Pipeline):
            def compute(self, cycle):
                self.hooks.emit_grant(None, 0, cycle)
    """

    def test_r007_subclass_emitting_in_compute(self, tmp_path):
        _write_tree(
            tmp_path, {"base.py": self.TWO_PHASE_BASE, "sub.py": self.SUB_R007}
        )
        rule = HookEmissionPhaseRule()
        per_file = lint_file(tmp_path / "sub.py", [rule])
        assert per_file == []
        project = [
            f
            for f in lint_paths([str(tmp_path)], all_rules())
            if f.code == "R007"
        ]
        assert len(project) == 1
        assert "`ChattyPipeline.compute` calls `emit_grant`" in project[0].message

    def test_shared_base_reports_once(self, tmp_path):
        # Many subclasses inheriting one bad compute: one finding, at
        # the defining class, not one per subclass.
        _write_tree(
            tmp_path,
            {
                "base.py": """
                class Leaky:
                    def compute(self, cycle):
                        self.value = cycle

                    def commit(self, cycle):
                        pass
                """,
                "subs.py": """
                from base import Leaky


                class A(Leaky):
                    pass


                class B(Leaky):
                    pass
                """,
            },
        )
        project = [
            f
            for f in lint_paths([str(tmp_path)], all_rules())
            if f.code == "R006"
        ]
        assert len(project) == 1
        assert project[0].path.endswith("base.py")
