"""Tests for the mesh topology and dimension-order routing."""

import random  # lint: disable=R001 (tests build local seeded streams)

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.mesh import Mesh
from repro.network.netsim import NetworkConfig, NetworkSimulation
from repro.traffic.patterns import Permutation


class TestConstruction:
    def test_counts(self):
        m = Mesh((4, 4), concentration=2)
        assert m.num_switches == 16
        assert m.num_hosts == 32
        assert m.radix == 6

    def test_3d(self):
        m = Mesh((2, 3, 4))
        assert m.num_switches == 24
        assert m.n == 3
        assert len(m.switch_ids()) == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh(())
        with pytest.raises(ValueError):
            Mesh((1, 4))
        with pytest.raises(ValueError):
            Mesh((4, 4), concentration=0)


class TestWiring:
    def test_link_reciprocity(self):
        m = Mesh((3, 3))
        for sid in m.switch_ids():
            for port in m.wired_ports(sid):
                ref = m.neighbor(sid, port)
                if ref.switch is None:
                    continue
                back = m.neighbor(ref.switch, ref.port)
                assert back.switch == sid
                assert back.port == port

    def test_edge_ports_unwired(self):
        m = Mesh((3, 3))
        corner = (0, 0)
        wired = m.wired_ports(corner)
        # Corner: only +x and +y links plus host port.
        assert set(wired) == {0, 2, 4}
        with pytest.raises(ValueError):
            m.neighbor(corner, 1)  # -x faces the edge

    def test_interior_fully_wired(self):
        m = Mesh((3, 3))
        assert set(m.wired_ports((1, 1))) == {0, 1, 2, 3, 4}

    def test_host_attachment_roundtrip(self):
        m = Mesh((3, 2), concentration=3)
        for host in range(m.num_hosts):
            ref = m.host_attachment(host)
            back = m.neighbor(ref.switch, ref.port)
            assert back.host == host

    def test_host_range(self):
        with pytest.raises(ValueError):
            Mesh((2, 2)).host_attachment(4)


class TestRouting:
    def test_route_delivers(self):
        m = Mesh((4, 4), concentration=2)
        rng = random.Random(0)
        for _ in range(300):
            s = rng.randrange(m.num_hosts)
            d = rng.randrange(m.num_hosts)
            ports = m.route(s, d, rng)
            sw = m.host_attachment(s).switch
            for i, p in enumerate(ports):
                ref = m.neighbor(sw, p)
                if i == len(ports) - 1:
                    assert ref.switch is None and ref.host == d
                else:
                    sw = ref.switch

    def test_route_is_deterministic(self):
        m = Mesh((4, 4))
        a = m.route(0, 15, random.Random(1))
        b = m.route(0, 15, random.Random(2))
        assert a == b

    def test_dimension_order(self):
        """X is fully corrected before Y moves (e-cube)."""
        m = Mesh((4, 4))
        ports = m.route(0, 15, random.Random(0))[:-1]
        dims = [p // 2 for p in ports]
        assert dims == sorted(dims)

    def test_hop_count_manhattan(self):
        m = Mesh((4, 4))
        assert m.hop_count(0, 0) == 1
        assert m.hop_count(0, 15) == 1 + 3 + 3

    def test_average_hop_count(self):
        m = Mesh((4, 4))
        # 1 + 2 * E|x-y| with E|x-y| = 1.25 for dim 4.
        assert m.average_hop_count() == pytest.approx(3.5)

    @settings(max_examples=25)
    @given(st.integers(0, 2**31 - 1))
    def test_random_routes_always_deliver(self, seed):
        m = Mesh((3, 3, 2), concentration=2)
        rng = random.Random(seed)
        s = rng.randrange(m.num_hosts)
        d = rng.randrange(m.num_hosts)
        ports = m.route(s, d, rng)
        sw = m.host_attachment(s).switch
        ref = None
        for p in ports:
            ref = m.neighbor(sw, p)
            sw = ref.switch
        assert ref is not None and ref.host == d


class TestMeshSimulation:
    CFG = NetworkConfig(radix=8, num_vcs=2, buffer_depth=4)

    def test_uniform_traffic_delivered(self):
        sim = NetworkSimulation(self.CFG, load=0.3, topology=Mesh((3, 3)))
        r = sim.run(warmup=300, measure=400, drain=3000)
        assert r.packets_measured > 0
        assert not r.saturated

    def test_latency_grows_with_mesh_size(self):
        small = NetworkSimulation(
            self.CFG, load=0.1, topology=Mesh((2, 2))
        ).run(200, 300, 2000)
        large = NetworkSimulation(
            self.CFG, load=0.1, topology=Mesh((5, 5))
        ).run(200, 300, 3000)
        assert large.avg_latency > small.avg_latency

    def test_host_pattern_override(self):
        """A permutation pattern over the hosts routes as requested."""
        mesh = Mesh((2, 2))
        perm = Permutation([3, 2, 1, 0])
        sim = NetworkSimulation(
            self.CFG, load=0.3, topology=mesh, host_pattern=perm
        )
        r = sim.run(warmup=200, measure=300, drain=2000)
        assert r.packets_measured > 0

    def test_clos_beats_mesh_at_equal_hosts(self):
        """The indirect network pays fewer hops than a 2D mesh at the
        same size, showing up as lower zero-load latency."""
        from repro.network.topology import FoldedClos

        clos = FoldedClos(8, 2)  # 16 hosts
        mesh = Mesh((4, 4))  # 16 hosts
        assert clos.num_hosts == mesh.num_hosts
        r_clos = NetworkSimulation(
            NetworkConfig(radix=8, num_vcs=2), load=0.1, topology=clos
        ).run(300, 400, 3000)
        r_mesh = NetworkSimulation(
            NetworkConfig(radix=4, num_vcs=2), load=0.1, topology=mesh
        ).run(300, 400, 3000)
        assert r_clos.avg_latency < r_mesh.avg_latency
