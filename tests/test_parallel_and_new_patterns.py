"""Tests for the parallel sweep runner and the extension patterns."""

import random  # lint: disable=R001 (tests build local seeded streams)

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import SweepSettings, run_load_sweep
from repro.harness.parallel import run_load_sweep_parallel
from repro.routers.buffered import BufferedCrossbarRouter
from repro.traffic.patterns import NeighborExchange, Shuffle, Tornado

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
SETTINGS = SweepSettings(warmup=150, measure=300, drain=2000)
LOADS = [0.2, 0.5]


def _exploding_router(config):
    """Module-level (picklable) factory whose construction fails in the
    worker process."""
    raise RuntimeError("boom in worker")


class TestParallelSweep:
    def test_matches_serial_results(self):
        """Same seed, same points: parallel == serial, exactly."""
        serial = run_load_sweep(
            BufferedCrossbarRouter, CFG, LOADS, settings=SETTINGS
        )
        parallel = run_load_sweep_parallel(
            BufferedCrossbarRouter, CFG, LOADS, settings=SETTINGS,
            processes=2,
        )
        for a, b in zip(serial.results, parallel.results):
            assert a.avg_latency == b.avg_latency
            assert a.throughput == b.throughput
            assert a.packets_measured == b.packets_measured

    def test_single_process_shortcut(self):
        sweep = run_load_sweep_parallel(
            BufferedCrossbarRouter, CFG, LOADS, settings=SETTINGS,
            processes=1,
        )
        assert len(sweep.results) == 2

    def test_default_label(self):
        sweep = run_load_sweep_parallel(
            BufferedCrossbarRouter, CFG, [0.2], settings=SETTINGS,
            processes=1,
        )
        assert sweep.label == "BufferedCrossbarRouter"

    def test_single_point_runs_inline(self):
        sweep = run_load_sweep_parallel(
            BufferedCrossbarRouter, CFG, [0.3], settings=SETTINGS,
        )
        assert len(sweep.results) == 1

    def test_zero_processes_rejected(self):
        """Regression: ``processes=0`` fell through ``processes or
        min(...)`` to the default pool size, silently masking a caller
        bug.  It must raise instead."""
        with pytest.raises(ValueError, match="processes"):
            run_load_sweep_parallel(
                BufferedCrossbarRouter, CFG, LOADS, settings=SETTINGS,
                processes=0,
            )
        with pytest.raises(ValueError, match="processes"):
            run_load_sweep_parallel(
                BufferedCrossbarRouter, CFG, LOADS, settings=SETTINGS,
                processes=-2,
            )

    def test_worker_exception_propagates(self):
        """An exception inside a worker must surface in the parent
        (with the pool torn down cleanly), not hang or be swallowed."""
        with pytest.raises(RuntimeError, match="boom in worker"):
            run_load_sweep_parallel(
                _exploding_router, CFG, LOADS, settings=SETTINGS,
                processes=2,
            )

    def test_worker_exception_propagates_inline(self):
        """Same contract on the processes=1 (no-pool) shortcut."""
        with pytest.raises(RuntimeError, match="boom in worker"):
            run_load_sweep_parallel(
                _exploding_router, CFG, [0.3], settings=SETTINGS,
                processes=1,
            )


class TestTornado:
    def test_halfway_destination(self):
        pat = Tornado(8)
        rng = random.Random(0)
        assert pat.dest(0, rng) == 3
        assert pat.dest(5, rng) == 0

    def test_permutation_property(self):
        pat = Tornado(16)
        rng = random.Random(0)
        dests = {pat.dest(s, rng) for s in range(16)}
        assert dests == set(range(16))

    def test_odd_port_count(self):
        pat = Tornado(7)
        rng = random.Random(0)
        assert pat.dest(0, rng) == 3


class TestShuffle:
    def test_rotation(self):
        pat = Shuffle(8)
        rng = random.Random(0)
        assert pat.dest(0b001, rng) == 0b010
        assert pat.dest(0b100, rng) == 0b001

    def test_is_permutation(self):
        pat = Shuffle(16)
        rng = random.Random(0)
        assert {pat.dest(s, rng) for s in range(16)} == set(range(16))

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Shuffle(12)

    def test_log2_iterations_return_home(self):
        pat = Shuffle(8)
        rng = random.Random(0)
        x = 5
        for _ in range(3):  # log2(8) rotations = identity
            x = pat.dest(x, rng)
        assert x == 5


class TestNeighborExchange:
    def test_pairs_swap(self):
        pat = NeighborExchange(8)
        rng = random.Random(0)
        assert pat.dest(0, rng) == 1
        assert pat.dest(1, rng) == 0
        assert pat.dest(6, rng) == 7

    def test_is_involution(self):
        pat = NeighborExchange(16)
        rng = random.Random(0)
        for s in range(16):
            assert pat.dest(pat.dest(s, rng), rng) == s

    def test_even_required(self):
        with pytest.raises(ValueError):
            NeighborExchange(7)
