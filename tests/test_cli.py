"""Tests for the command-line interface."""

import pytest

from repro.cli import ARCHITECTURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.arch == "hierarchical"
        assert args.radix == 32
        assert args.jobs == 1

    def test_all_architectures_registered(self):
        assert set(ARCHITECTURES) == {
            "baseline", "distributed", "buffered", "shared-buffer",
            "hierarchical", "voq",
        }

    def test_unknown_arch_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--arch", "crossbar9000"])


class TestCommands:
    def test_radix_command(self, capsys):
        rc = main([
            "radix", "--bandwidth", "0.4e12", "--delay", "25e-9",
            "--nodes", "1024", "--packet", "128",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "k* = 40" in out

    def test_area_command(self, capsys):
        rc = main(["area", "--radix", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out
        assert "buffered" in out

    def test_sweep_command_small(self, capsys):
        rc = main([
            "sweep", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--loads", "0.3",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "buffered" in out
        assert "0.3" in out

    def test_sweep_jobs_matches_serial(self, capsys):
        """--jobs N fans points over processes; output stays identical."""
        argv = [
            "sweep", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--loads", "0.2,0.4",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_with_plot(self, capsys):
        rc = main([
            "sweep", "--arch", "baseline", "--radix", "8",
            "--subswitch", "4", "--loads", "0.2,0.4", "--plot",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered load" in out

    def test_saturate_single_arch(self, capsys):
        rc = main([
            "saturate", "--arch", "voq", "--radix", "8",
            "--subswitch", "4", "--warmup", "200", "--measure", "300",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "voq" in out

    def test_network_command(self, capsys):
        rc = main([
            "network", "--load", "0.2", "--high-radix", "8",
            "--high-levels", "2", "--low-radix", "4", "--low-levels", "3",
            "--warmup", "200", "--measure", "300", "--drain", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "high-radix" in out and "low-radix" in out

    def test_worst_case_pattern(self, capsys):
        rc = main([
            "sweep", "--arch", "hierarchical", "--radix", "8",
            "--subswitch", "4", "--pattern", "worst-case",
            "--loads", "0.3", "--warmup", "100", "--measure", "200",
            "--drain", "2000",
        ])
        assert rc == 0


class TestTraceCommand:
    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--arch", "hierarchical", "--radix", "8",
            "--subswitch", "4", "--load", "0.3", "--warmup", "100",
            "--measure", "200", "--drain", "2000",
            "--chrome", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # Stage breakdown with the zero-load reference column.
        assert "zero-load" in out
        for stage in ("RC", "ROW", "SUB", "ST"):
            assert stage in out
        assert "speculation subva" in out
        assert "channel utilization" in out
        # The Chrome trace on disk is valid trace-event JSON.
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])

    def test_trace_sampling_filter(self, capsys):
        rc = main([
            "trace", "--arch", "baseline", "--radix", "8",
            "--subswitch", "4", "--load", "0.2", "--warmup", "100",
            "--measure", "200", "--drain", "2000",
            "--every-nth", "4", "--ports", "0,1",
        ])
        assert rc == 0
        assert "traced flits" in capsys.readouterr().out


class TestFaultsCommand:
    def test_faults_sweep_table(self, capsys):
        rc = main([
            "faults", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--load", "0.4",
            "--rates", "0.0,0.05", "--credit-loss", "0.01",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
            "--sanitize",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "corrupt rate" in out
        assert "retransmits" in out
        assert "0.050" in out
        assert "[sanitized]" in out

    def test_faults_rejects_bad_rate(self, capsys):
        rc = main([
            "faults", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--rates", "0.0,1.5",
        ])
        assert rc == 2
        assert "outside" in capsys.readouterr().err

    def test_faults_deterministic_output(self, capsys):
        argv = [
            "faults", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--load", "0.4", "--rates", "0.05",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestPipelineCommand:
    def test_pipeline_diagrams(self, capsys):
        rc = main(["pipeline", "--radix", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5(b)" in out
        assert "SA1*" in out
        assert "head-flit latency" in out
