"""Tests for the command-line interface."""

import pytest

from repro.cli import ARCHITECTURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.arch == "hierarchical"
        assert args.radix == 32
        assert args.jobs == 1

    def test_all_architectures_registered(self):
        assert set(ARCHITECTURES) == {
            "baseline", "distributed", "buffered", "shared-buffer",
            "hierarchical", "voq",
        }

    def test_unknown_arch_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--arch", "crossbar9000"])


class TestCommands:
    def test_radix_command(self, capsys):
        rc = main([
            "radix", "--bandwidth", "0.4e12", "--delay", "25e-9",
            "--nodes", "1024", "--packet", "128",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "k* = 40" in out

    def test_area_command(self, capsys):
        rc = main(["area", "--radix", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out
        assert "buffered" in out

    def test_sweep_command_small(self, capsys):
        rc = main([
            "sweep", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--loads", "0.3",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "buffered" in out
        assert "0.3" in out

    def test_sweep_jobs_matches_serial(self, capsys):
        """--jobs N fans points over processes; output stays identical."""
        argv = [
            "sweep", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--loads", "0.2,0.4",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_with_plot(self, capsys):
        rc = main([
            "sweep", "--arch", "baseline", "--radix", "8",
            "--subswitch", "4", "--loads", "0.2,0.4", "--plot",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered load" in out

    def test_saturate_single_arch(self, capsys):
        rc = main([
            "saturate", "--arch", "voq", "--radix", "8",
            "--subswitch", "4", "--warmup", "200", "--measure", "300",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "voq" in out

    def test_network_command(self, capsys):
        rc = main([
            "network", "--load", "0.2", "--high-radix", "8",
            "--high-levels", "2", "--low-radix", "4", "--low-levels", "3",
            "--warmup", "200", "--measure", "300", "--drain", "2000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "high-radix" in out and "low-radix" in out

    def test_worst_case_pattern(self, capsys):
        rc = main([
            "sweep", "--arch", "hierarchical", "--radix", "8",
            "--subswitch", "4", "--pattern", "worst-case",
            "--loads", "0.3", "--warmup", "100", "--measure", "200",
            "--drain", "2000",
        ])
        assert rc == 0


class TestTraceCommand:
    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--arch", "hierarchical", "--radix", "8",
            "--subswitch", "4", "--load", "0.3", "--warmup", "100",
            "--measure", "200", "--drain", "2000",
            "--chrome", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # Stage breakdown with the zero-load reference column.
        assert "zero-load" in out
        for stage in ("RC", "ROW", "SUB", "ST"):
            assert stage in out
        assert "speculation subva" in out
        assert "channel utilization" in out
        # The Chrome trace on disk is valid trace-event JSON.
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])

    def test_trace_sampling_filter(self, capsys):
        rc = main([
            "trace", "--arch", "baseline", "--radix", "8",
            "--subswitch", "4", "--load", "0.2", "--warmup", "100",
            "--measure", "200", "--drain", "2000",
            "--every-nth", "4", "--ports", "0,1",
        ])
        assert rc == 0
        assert "traced flits" in capsys.readouterr().out


class TestFaultsCommand:
    def test_faults_sweep_table(self, capsys):
        rc = main([
            "faults", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--load", "0.4",
            "--rates", "0.0,0.05", "--credit-loss", "0.01",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
            "--sanitize",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "corrupt rate" in out
        assert "retransmits" in out
        assert "0.050" in out
        assert "[sanitized]" in out

    def test_faults_rejects_bad_rate(self, capsys):
        rc = main([
            "faults", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--rates", "0.0,1.5",
        ])
        assert rc == 2
        assert "outside" in capsys.readouterr().err

    def test_faults_deterministic_output(self, capsys):
        argv = [
            "faults", "--arch", "buffered", "--radix", "8",
            "--subswitch", "4", "--load", "0.4", "--rates", "0.05",
            "--warmup", "100", "--measure", "200", "--drain", "2000",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestPipelineCommand:
    def test_pipeline_diagrams(self, capsys):
        rc = main(["pipeline", "--radix", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5(b)" in out
        assert "SA1*" in out
        assert "head-flit latency" in out


class TestWorkloadCommand:
    def test_switch_decode_sweep(self, capsys):
        rc = main([
            "workload", "--family", "decode", "--target", "switch",
            "--arch", "baseline", "--radix", "8", "--vcs", "2",
            "--sizes", "1,2", "--steps", "1", "--gap", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decode on baseline radix-8 switch (8 ranks)" in out
        assert "makespan" in out and "skew max" in out

    def test_network_allreduce_with_dead_link(self, capsys):
        rc = main([
            "workload", "--family", "allreduce", "--target", "network",
            "--radix", "4", "--levels", "2", "--vcs", "2",
            "--kill-links", "1", "--kill-at", "10", "--heal-at", "200",
            "--scheduler", "event",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 dead link(s)" in out
        assert "False" in out  # collective completed despite the fault

    def test_request_reply_window_sweep(self, capsys):
        rc = main([
            "workload", "--family", "request-reply", "--target",
            "switch", "--arch", "baseline", "--radix", "8", "--vcs",
            "2", "--windows", "1,2", "--requests", "2", "--think", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # two sweep rows plus header

    def test_replay_from_csv_file(self, capsys, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text(
            "cycle,src,dest,size,flow\n0,0,5,2,a\n3,1,4,1,\n7,2,6,2,b\n"
        )
        rc = main([
            "workload", "--family", "replay", "--replay", str(trace),
            "--target", "switch", "--arch", "baseline", "--radix", "8",
            "--vcs", "2",
        ])
        assert rc == 0
        assert "replay" in capsys.readouterr().out

    def test_replay_requires_path(self, capsys):
        rc = main([
            "workload", "--family", "replay", "--target", "switch",
            "--arch", "baseline", "--radix", "8",
        ])
        assert rc == 2
        assert "--replay" in capsys.readouterr().err

    def test_rejects_oversubscribed_ranks(self, capsys):
        rc = main([
            "workload", "--family", "allreduce", "--target", "switch",
            "--arch", "baseline", "--radix", "8", "--ranks", "16",
        ])
        assert rc == 2
        assert "exceed" in capsys.readouterr().err

    def test_kill_links_needs_network(self, capsys):
        rc = main([
            "workload", "--family", "allreduce", "--target", "switch",
            "--arch", "baseline", "--radix", "8", "--kill-links", "1",
        ])
        assert rc == 2
        assert "network" in capsys.readouterr().err

    def test_deterministic_output(self, capsys):
        argv = [
            "workload", "--family", "alltoall", "--target", "network",
            "--radix", "4", "--levels", "2", "--vcs", "2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
