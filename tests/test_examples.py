"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess with its smallest practical
arguments, so broken imports or API drift in `examples/` fail the test
suite rather than the first user who tries them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_example_files_exist():
    expected = {
        "quickstart.py",
        "compare_architectures.py",
        "design_sweep.py",
        "clos_network.py",
        "traffic_study.py",
        "mesh_vs_clos.py",
        "debug_with_metrics.py",
        "reproduce_figures.py",
        "decode_sweep.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present


@pytest.mark.slow
def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "saturation throughput" in out


@pytest.mark.slow
def test_compare_architectures_runs():
    out = _run("compare_architectures.py", "--radix", "8", "--load", "0.5")
    assert "hierarchical p=8" in out


@pytest.mark.slow
def test_design_sweep_runs():
    out = _run("design_sweep.py", "--bandwidth", "0.4e12", "--delay",
               "25e-9", "--nodes", "1024", "--packet", "128")
    assert "k* = 40" in out


@pytest.mark.slow
def test_clos_network_runs():
    out = _run("clos_network.py")
    assert "high-radix" in out


@pytest.mark.slow
def test_traffic_study_runs():
    out = _run("traffic_study.py", "--radix", "8")
    assert "hotspot" in out


@pytest.mark.slow
def test_mesh_vs_clos_runs():
    out = _run("mesh_vs_clos.py")
    assert "mesh" in out


@pytest.mark.slow
def test_debug_with_metrics_runs():
    out = _run("debug_with_metrics.py", "--cycles", "400", "--load", "0.5")
    assert "invariants held" in out


@pytest.mark.slow
def test_reproduce_figures_analytic():
    out = _run("reproduce_figures.py", "--figures", "2,3")
    assert "k*" in out


@pytest.mark.slow
def test_decode_sweep_runs(tmp_path):
    out_file = tmp_path / "decode.json"
    out = _run("decode_sweep.py", str(out_file))
    assert "reloaded byte-equivalent" in out
    assert out_file.exists()
