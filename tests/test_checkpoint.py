"""Checkpoint/restore round-trip properties.

Every test runs a reference simulation to completion, then a twin that
stops at a mid-run cycle ``K``, saves a checkpoint file, reloads it
into a freshly built simulation, and finishes from there.  The resumed
result must equal the straight-through result *exactly* — same
:class:`~repro.harness.stats.RunResult` (tuple equality covers every
metric) and same ``stats.*`` extras — for random seeds, loads, and
split points, across every switch organization, the Clos network,
both scheduler modes, and with fault injection and dependency-driven
workloads in the mix.

Hypothesis supplies the randomized coordinates; the deterministic
parametrized tests pin every organization so a regression names the
culprit directly.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import RouterConfig
from repro.core.flit import reset_packet_ids
from repro.faults import FaultPlan
from repro.harness import SwitchSimulation, SweepSettings, load_checkpoint
from repro.network.netsim import NetworkConfig, NetworkSimulation
from repro.routers import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    SharedBufferCrossbarRouter,
    VoqRouter,
)
from repro.workloads import all_reduce

ALL_ROUTERS = [
    BaselineRouter,
    DistributedRouter,
    BufferedCrossbarRouter,
    SharedBufferCrossbarRouter,
    HierarchicalCrossbarRouter,
    VoqRouter,
]

#: Short measurement program — long enough to cross warmup/measure
#: stage boundaries, short enough for property-test budgets.
FAST = SweepSettings(warmup=60, measure=120, drain=800)

FAULTS = FaultPlan(corrupt_rate=0.02, credit_loss_rate=0.01)

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _switch_sim(router_cls, seed, load, scheduler, faults, workload=None):
    cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                       local_group_size=4, seed=seed)
    return SwitchSimulation(
        router_cls(cfg), load=load, seed=seed, scheduler=scheduler,
        faults=FAULTS if faults else None, workload=workload,
    )


def _roundtrip(build, start, k, path):
    """Reference result vs. save-at-``K``-reload-finish result."""
    reset_packet_ids()
    ref = build()
    start(ref)
    assert ref.advance_run()
    expect = ref.finish_run()

    reset_packet_ids()
    twin = build()
    start(twin)
    done = twin.advance_run(stop_at=k)
    twin.save_checkpoint(path)
    resumed = load_checkpoint(path)
    if not done:
        assert resumed.advance_run()
    return expect, resumed.finish_run()


class TestSwitchRoundTrip:
    @relaxed
    @given(
        router_cls=st.sampled_from(ALL_ROUTERS),
        seed=st.integers(0, 2**20),
        load=st.sampled_from([0.15, 0.3, 0.5]),
        scheduler=st.sampled_from(["cycle", "event"]),
        faults=st.booleans(),
        k=st.integers(1, 900),
    )
    def test_random_split_matches_reference(
        self, tmp_path, router_cls, seed, load, scheduler, faults, k
    ):
        path = tmp_path / "switch.ckpt"
        expect, got = _roundtrip(
            lambda: _switch_sim(router_cls, seed, load, scheduler, faults),
            lambda sim: sim.start_run(FAST),
            k, path,
        )
        assert got == expect
        assert got.extra == expect.extra

    @pytest.mark.parametrize("router_cls", ALL_ROUTERS)
    @pytest.mark.parametrize("scheduler", ["cycle", "event"])
    def test_every_organization(self, tmp_path, router_cls, scheduler):
        path = tmp_path / "switch.ckpt"
        expect, got = _roundtrip(
            lambda: _switch_sim(router_cls, 7, 0.4, scheduler, True),
            lambda sim: sim.start_run(FAST),
            111, path,
        )
        assert got == expect
        assert got.extra == expect.extra

    @pytest.mark.parametrize("scheduler", ["cycle", "event"])
    def test_workload_run(self, tmp_path, scheduler):
        path = tmp_path / "switch.ckpt"
        expect, got = _roundtrip(
            lambda: _switch_sim(
                BaselineRouter, 3, 0.0, scheduler, False,
                workload=all_reduce(8, size=2),
            ),
            lambda sim: sim.start_workload_run(max_cycles=20000),
            60, path,
        )
        assert got == expect
        assert got.extra == expect.extra


class TestNetworkRoundTrip:
    @relaxed
    @given(
        seed=st.integers(0, 2**20),
        load=st.sampled_from([0.15, 0.3, 0.45]),
        scheduler=st.sampled_from(["cycle", "event"]),
        faults=st.booleans(),
        k=st.integers(1, 700),
    )
    def test_random_split_matches_reference(
        self, tmp_path, seed, load, scheduler, faults, k
    ):
        cfg = NetworkConfig(radix=8, levels=2, seed=seed)
        path = tmp_path / "net.ckpt"
        expect, got = _roundtrip(
            lambda: NetworkSimulation(
                cfg, load=load, scheduler=scheduler,
                faults=FAULTS if faults else None,
            ),
            lambda sim: sim.start_run(warmup=60, measure=120, drain=500),
            k, path,
        )
        assert got == expect
        assert got.extra == expect.extra

    @pytest.mark.parametrize("scheduler", ["cycle", "event"])
    def test_workload_run(self, tmp_path, scheduler):
        cfg = NetworkConfig(radix=8, levels=2, seed=5)
        path = tmp_path / "net.ckpt"
        expect, got = _roundtrip(
            lambda: NetworkSimulation(
                cfg, workload=all_reduce(16, size=2), scheduler=scheduler,
            ),
            lambda sim: sim.start_workload_run(max_cycles=20000),
            90, path,
        )
        assert got == expect
        assert got.extra == expect.extra

    def test_checkpoint_is_a_plain_file(self, tmp_path):
        """The capture is a self-contained on-disk artifact: reloading
        it twice yields two independent simulations with equal
        results."""
        cfg = NetworkConfig(radix=8, levels=2, seed=2)
        reset_packet_ids()
        sim = NetworkSimulation(cfg, load=0.3)
        sim.start_run(warmup=60, measure=120, drain=500)
        assert not sim.advance_run(stop_at=100)
        path = tmp_path / "net.ckpt"
        sim.save_checkpoint(path)

        first = load_checkpoint(path)
        assert first.advance_run()
        second = load_checkpoint(path)
        assert second.advance_run()
        assert first.finish_run() == second.finish_run()
