"""Tests for the Section 2 latency model against the paper's anchors."""

import math

import pytest

from repro.models.latency import (
    aspect_ratio,
    header_latency,
    hop_count,
    latency_vs_radix,
    optimal_radix,
    optimal_radix_continuous,
    optimal_radix_detailed,
    packet_latency,
    packet_latency_detailed,
    pipelined_router_delay,
    serialization_latency,
)
from repro.models.technology import (
    TECH_1991,
    TECH_1996,
    TECH_2003,
    TECH_2010,
    Technology,
)


class TestComponents:
    def test_hop_count_formula(self):
        assert hop_count(2, 1024) == pytest.approx(20.0)
        assert hop_count(32, 1024) == pytest.approx(4.0)

    def test_hop_count_decreases_with_radix(self):
        hops = [hop_count(k, 4096) for k in (4, 8, 16, 64)]
        assert hops == sorted(hops, reverse=True)

    def test_serialization_grows_linearly_with_radix(self):
        t1 = serialization_latency(16, TECH_2003)
        t2 = serialization_latency(32, TECH_2003)
        assert t2 == pytest.approx(2 * t1)

    def test_packet_latency_is_sum(self):
        k = 40
        assert packet_latency(k, TECH_2003) == pytest.approx(
            header_latency(k, TECH_2003) + serialization_latency(k, TECH_2003)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            hop_count(1, 64)
        with pytest.raises(ValueError):
            hop_count(4, 1)


class TestAspectRatio:
    """The annotated values of Figure 2."""

    def test_2003_aspect_ratio(self):
        assert aspect_ratio(TECH_2003) == pytest.approx(554, rel=0.03)

    def test_2010_aspect_ratio(self):
        assert aspect_ratio(TECH_2010) == pytest.approx(2978, rel=0.01)

    def test_aspect_ratio_increases_over_time(self):
        ratios = [
            aspect_ratio(t)
            for t in (TECH_1991, TECH_1996, TECH_2003, TECH_2010)
        ]
        assert ratios == sorted(ratios)


class TestOptimalRadix:
    """Section 2: 'for 2003 technology (aspect ratio = 554) the optimum
    radix is 40 while for 2010 technology (aspect ratio = 2978) the
    optimum radix is 127'."""

    def test_2003_optimum_is_40(self):
        assert optimal_radix(TECH_2003) == pytest.approx(40, abs=2)

    def test_2010_optimum_is_127(self):
        assert optimal_radix(TECH_2010) == pytest.approx(127, abs=4)

    def test_continuous_solution_satisfies_equation(self):
        for a in (13.0, 554.0, 2978.0):
            k = optimal_radix_continuous(a)
            assert k * math.log(k) ** 2 == pytest.approx(a, rel=1e-6)

    def test_continuous_saturates_at_two(self):
        assert optimal_radix_continuous(0.1) == 2.0

    def test_integer_optimum_is_argmin(self):
        k = optimal_radix(TECH_2003)
        t_best = packet_latency(k, TECH_2003)
        assert t_best <= packet_latency(k - 1, TECH_2003)
        assert t_best <= packet_latency(k + 1, TECH_2003)

    def test_invalid_aspect(self):
        with pytest.raises(ValueError):
            optimal_radix_continuous(0.0)


class TestLatencyCurve:
    """Figure 3(a): latency falls, bottoms out, and rises again."""

    def test_u_shape_for_2003(self):
        ks = list(range(4, 200, 4))
        series = latency_vs_radix(TECH_2003, ks)
        lats = [t for _, t in series]
        best = min(range(len(lats)), key=lats.__getitem__)
        assert 0 < best < len(lats) - 1
        assert lats[0] > lats[best]
        assert lats[-1] > lats[best]

    def test_2010_optimum_beyond_2003(self):
        ks = list(range(4, 300, 2))
        best_2003 = min(ks, key=lambda k: packet_latency(k, TECH_2003))
        best_2010 = min(ks, key=lambda k: packet_latency(k, TECH_2010))
        assert best_2010 > best_2003


class TestDetailedRouterDelay:
    def test_pipeline_grows_with_log_radix(self):
        d16 = pipelined_router_delay(16, 1e-9, 3, 1)
        d64 = pipelined_router_delay(64, 1e-9, 3, 1)
        assert d64 - d16 == pytest.approx(2e-9)

    def test_optimal_radix_unchanged_by_log_term(self):
        """Section 2: the log(k) pipeline-depth term does not change
        the optimal radix (it cancels against hop count)."""
        cycle = TECH_2003.router_delay / 3.0  # X*t_cy == t_r
        with_log = optimal_radix_detailed(
            TECH_2003, cycle, stages_fixed=3.0, stages_per_log=1.0
        )
        without_log = optimal_radix_detailed(
            TECH_2003, cycle, stages_fixed=3.0, stages_per_log=0.0
        )
        # The paper's claim: within a few percent of each other.
        assert abs(with_log - without_log) / without_log < 0.15

    def test_detailed_latency_uses_pipeline(self):
        t = packet_latency_detailed(64, TECH_2003, 1e-9, 3, 1)
        assert t > 0


class TestTechnologyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Technology("x", 0, 1e-9, 64, 128, 2000)
        with pytest.raises(ValueError):
            Technology("x", 1e9, 0, 64, 128, 2000)
        with pytest.raises(ValueError):
            Technology("x", 1e9, 1e-9, 1, 128, 2000)
        with pytest.raises(ValueError):
            Technology("x", 1e9, 1e-9, 64, 0, 2000)
