"""Behavioral tests for the distributed-allocator high-radix router."""

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers.distributed import DistributedRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
FAST = SweepSettings(warmup=400, measure=800, drain=50)


def _drain(router, max_cycles=500):
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


class TestPipelineTiming:
    def test_grant_latency_includes_sa_stages(self):
        """A lone flit waits RC, then sa_latency for the distributed
        grant, then traverses."""
        router = DistributedRouter(CFG)
        (flit,) = make_packet(dest=3, size=1, src=0)
        router.accept(0, flit)
        (f, cycle), = _drain(router)
        expected = CFG.route_latency + CFG.sa_latency + CFG.flit_cycles
        assert cycle == expected

    def test_ova_adds_extra_stage(self):
        router = DistributedRouter(CFG.with_(vc_allocator="ova"))
        (flit,) = make_packet(dest=3, size=1, src=0)
        router.accept(0, flit)
        (f, cycle), = _drain(router)
        expected = (
            CFG.route_latency + CFG.sa_latency
            + CFG.ova_extra_latency + CFG.flit_cycles
        )
        assert cycle == expected

    def test_deeper_pipeline_than_baseline(self):
        """Figure 9: the high-radix router has higher zero-load latency."""
        from repro.routers.baseline import BaselineRouter

        def zero_load(cls, cfg):
            r = cls(cfg)
            (flit,) = make_packet(dest=3, size=1, src=0)
            r.accept(0, flit)
            (_, cycle), = _drain(r)
            return cycle

        assert zero_load(DistributedRouter, CFG) > zero_load(
            BaselineRouter, CFG
        )


class TestSpeculation:
    def test_speculative_failure_counted(self):
        """Two heads racing for the same output VC: the loser's re-bid
        gets killed by CVA while the VC is held."""
        cfg = CFG.with_(num_vcs=1)
        router = DistributedRouter(cfg)
        pa = make_packet(dest=2, size=4, src=0)
        pb = make_packet(dest=2, size=4, src=1)
        for f in pa:
            router.accept(0, f)
        for f in pb:
            router.accept(1, f)
        _drain(router, max_cycles=2000)
        assert router.stats.spec_vc_failures > 0

    def test_single_vc_packets_serialize_per_output(self):
        cfg = CFG.with_(num_vcs=1)
        router = DistributedRouter(cfg)
        pa = make_packet(dest=2, size=3, src=0)
        pb = make_packet(dest=2, size=3, src=1)
        for f in pa:
            router.accept(0, f)
        for f in pb:
            router.accept(1, f)
        out = _drain(router, max_cycles=2000)
        # With one VC, packet B may not start until packet A's tail has
        # released the VC: no interleaving of packet ids.
        ids = [f.packet_id for f, _ in out]
        assert ids == sorted(ids, key=lambda pid: ids.index(pid))
        first_tail = next(c for f, c in out if f.is_tail)
        second_head = [c for f, c in out if f.is_head][1]
        assert second_head >= first_tail

    def test_speculation_tracker_records_activity(self):
        sim = SwitchSimulation(DistributedRouter(CFG), load=0.6)
        for _ in range(500):
            sim.step()
        tracker = sim.router.speculation
        assert tracker.spec_requests > 0
        assert tracker.spec_grants > 0
        assert 0.0 <= tracker.spec_success_rate <= 1.0

    def test_nonspeculative_mode_never_fails_vc(self):
        """With speculation disabled, switch requests carry an already
        allocated VC, so no output-side VC kills occur."""
        cfg = CFG.with_(speculative=False)
        sim = SwitchSimulation(DistributedRouter(cfg), load=0.5,
                               packet_size=4)
        for _ in range(800):
            sim.step()
        assert sim.router.speculation.spec_requests == 0


class TestCvaVsOva:
    def test_ova_wastes_output_cycles(self):
        cfg = RouterConfig(radix=16, num_vcs=1, subswitch_size=4,
                           local_group_size=4, vc_allocator="ova")
        sim = SwitchSimulation(DistributedRouter(cfg), load=0.9,
                               packet_size=4)
        for _ in range(1500):
            sim.step()
        assert sim.router.stats.wasted_output_cycles > 0

    def test_cva_wastes_output_cycles_under_contention(self):
        """CVA runs VC allocation in parallel with switch arbitration,
        so a failing speculative winner wastes the output's cycle."""
        cfg = RouterConfig(radix=16, num_vcs=1, subswitch_size=4,
                           local_group_size=4, vc_allocator="cva")
        sim = SwitchSimulation(DistributedRouter(cfg), load=0.9,
                               packet_size=4)
        for _ in range(1500):
            sim.step()
        assert sim.router.stats.wasted_output_cycles > 0

    def test_nonspeculative_mode_never_wastes_output_cycles(self):
        cfg = RouterConfig(radix=16, num_vcs=2, subswitch_size=4,
                           local_group_size=4, speculative=False)
        sim = SwitchSimulation(DistributedRouter(cfg), load=0.9,
                               packet_size=4)
        for _ in range(1500):
            sim.step()
        assert sim.router.stats.wasted_output_cycles == 0

    def test_prioritization_reduces_wasted_cycles(self):
        """Figure 10(b)'s purpose: nonspeculative-first arbitration
        keeps failing speculative bids from stealing output slots."""
        cfg = RouterConfig(radix=16, num_vcs=1, subswitch_size=4,
                           local_group_size=4, input_buffer_depth=32)

        def wasted(c):
            sim = SwitchSimulation(DistributedRouter(c), load=1.0,
                                   packet_size=10)
            for _ in range(1500):
                sim.step()
            return sim.router.stats.wasted_output_cycles

        assert wasted(cfg.with_(prioritize_nonspeculative=True)) < wasted(cfg)

    def test_cva_outperforms_ova_at_saturation(self):
        """Figure 9: CVA saturates above OVA."""
        cfg = RouterConfig(radix=16, num_vcs=4, subswitch_size=4,
                           local_group_size=4)
        cva = SwitchSimulation(DistributedRouter(cfg), load=1.0).run(FAST)
        ova = SwitchSimulation(
            DistributedRouter(cfg.with_(vc_allocator="ova")), load=1.0
        ).run(FAST)
        assert cva.throughput > ova.throughput


class TestPrioritized:
    def test_prioritized_allocator_runs(self):
        cfg = CFG.with_(prioritize_nonspeculative=True)
        sim = SwitchSimulation(DistributedRouter(cfg), load=0.5,
                               packet_size=4)
        r = sim.run(SweepSettings(warmup=200, measure=400, drain=3000))
        assert r.packets_measured > 0
        assert r.throughput > 0.3

    def test_prioritization_helps_with_one_vc(self):
        """Figure 11(a): with a single VC and long packets, the
        two-arbiter scheme raises saturation throughput."""
        cfg = RouterConfig(radix=16, num_vcs=1, subswitch_size=4,
                           local_group_size=4, input_buffer_depth=32)
        single = SwitchSimulation(
            DistributedRouter(cfg), load=1.0, packet_size=10
        ).run(FAST)
        dual = SwitchSimulation(
            DistributedRouter(cfg.with_(prioritize_nonspeculative=True)),
            load=1.0, packet_size=10,
        ).run(FAST)
        assert dual.throughput > single.throughput
