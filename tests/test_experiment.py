"""Tests for the SwitchSimulation harness and sweep drivers."""

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import (
    SweepSettings,
    SwitchSimulation,
    run_load_sweep,
    saturation_throughput,
)
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.traffic.patterns import Diagonal

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)


class TestSwitchSimulation:
    def test_invalid_load(self):
        with pytest.raises(ValueError):
            SwitchSimulation(DistributedRouter(CFG), load=1.2)

    def test_invalid_injection(self):
        with pytest.raises(ValueError):
            SwitchSimulation(DistributedRouter(CFG), load=0.5,
                             injection="pareto")

    def test_throughput_tracks_offered_load_below_saturation(self):
        sim = SwitchSimulation(BufferedCrossbarRouter(CFG), load=0.4)
        r = sim.run(SweepSettings(warmup=300, measure=600, drain=4000))
        assert r.throughput == pytest.approx(0.4, abs=0.05)
        assert not r.saturated

    def test_saturated_flag_at_overload(self):
        sim = SwitchSimulation(DistributedRouter(CFG), load=1.0)
        r = sim.run(SweepSettings(warmup=300, measure=600, drain=30))
        assert r.saturated
        assert r.extra["source_backlog"] > 0

    def test_latency_includes_source_queueing(self):
        """Latency is measured from generation, so it exceeds the bare
        pipeline delay even at low load."""
        sim = SwitchSimulation(DistributedRouter(CFG), load=0.05)
        r = sim.run(SweepSettings(warmup=100, measure=400, drain=3000))
        min_pipeline = CFG.route_latency + CFG.sa_latency + CFG.flit_cycles
        assert r.avg_latency >= min_pipeline

    def test_vc_assignment_round_robins(self):
        sim = SwitchSimulation(BufferedCrossbarRouter(CFG), load=0.8,
                               record_delivered=True)
        for _ in range(400):
            sim.step()
        vcs = {f.vc for f, _ in sim.delivered}
        assert vcs == {0, 1}

    def test_onoff_injection_runs(self):
        sim = SwitchSimulation(BufferedCrossbarRouter(CFG), load=0.5,
                               injection="onoff")
        r = sim.run(SweepSettings(warmup=300, measure=500, drain=4000))
        assert r.packets_measured > 0

    def test_custom_pattern(self):
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, pattern=Diagonal(8),
            record_delivered=True,
        )
        for _ in range(300):
            sim.step()
        for f, _ in sim.delivered:
            assert f.dest in (f.src, (f.src + 1) % 8)

    def test_stop_sources(self):
        sim = SwitchSimulation(BufferedCrossbarRouter(CFG), load=1.0)
        for _ in range(100):
            sim.step()
        sim.stop_sources()
        before = sum(s.packets_generated for s in sim.sources)
        for _ in range(50):
            sim.step()
        after = sum(s.packets_generated for s in sim.sources)
        assert before == after


class TestSweepSettings:
    def test_scaled(self):
        s = SweepSettings(warmup=1000, measure=2000, drain=10000)
        half = s.scaled(0.5)
        assert half.warmup == 500
        assert half.measure == 1000
        assert half.drain == 5000

    def test_scaled_floors_at_one(self):
        s = SweepSettings(warmup=10, measure=10, drain=10)
        tiny = s.scaled(0.001)
        assert tiny.warmup >= 1


class TestSweeps:
    SETTINGS = SweepSettings(warmup=200, measure=400, drain=2000)

    def test_run_load_sweep_produces_curve(self):
        sweep = run_load_sweep(
            BufferedCrossbarRouter, CFG, loads=[0.2, 0.5],
            label="buffered", settings=self.SETTINGS,
        )
        assert sweep.label == "buffered"
        assert sweep.loads == [0.2, 0.5]
        assert len(sweep.latencies) == 2
        assert sweep.results[1].avg_latency >= sweep.results[0].avg_latency

    def test_zero_load_latency_helper(self):
        sweep = run_load_sweep(
            BufferedCrossbarRouter, CFG, loads=[0.6, 0.1],
            settings=self.SETTINGS,
        )
        assert sweep.zero_load_latency() == sweep.results[1].avg_latency

    def test_saturation_throughput_helper(self):
        thpt = saturation_throughput(
            BufferedCrossbarRouter, CFG,
            settings=SweepSettings(warmup=300, measure=500, drain=30),
        )
        assert 0.8 < thpt <= 1.05

    def test_default_label_is_router_class(self):
        sweep = run_load_sweep(
            DistributedRouter, CFG, loads=[0.1], settings=self.SETTINGS
        )
        assert sweep.label == "DistributedRouter"
