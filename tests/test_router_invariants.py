"""Cross-architecture invariants.

Every switch organization, whatever its internal microarchitecture,
must obey the same external contract: flits are conserved, packets
arrive whole and in order, no two packets interleave on one output VC,
and each output carries at most one flit per ``flit_cycles`` cycles.
These tests drive all five router models through the same scenarios.
"""

from collections import defaultdict

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import make_packet, reset_packet_ids
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    SharedBufferCrossbarRouter,
    VoqRouter,
)

ALL_ROUTERS = [
    BaselineRouter,
    DistributedRouter,
    BufferedCrossbarRouter,
    SharedBufferCrossbarRouter,
    HierarchicalCrossbarRouter,
    VoqRouter,
]

CFG = RouterConfig(
    radix=8, num_vcs=2, subswitch_size=4, local_group_size=4,
    input_buffer_depth=8,
)


def _drain(router, max_cycles=2000):
    """Step until the router is empty; returns all ejected flits."""
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestSingleFlit:
    def test_single_flit_delivered(self, router_cls):
        router = router_cls(CFG)
        (flit,) = make_packet(dest=5, size=1, src=2)
        flit.vc = 1
        router.accept(2, flit)
        out = _drain(router)
        assert len(out) == 1
        delivered, cycle = out[0]
        assert delivered is flit
        assert cycle >= CFG.flit_cycles

    def test_idle_after_delivery(self, router_cls):
        router = router_cls(CFG)
        (flit,) = make_packet(dest=0, size=1, src=7)
        router.accept(7, flit)
        _drain(router)
        assert router.idle()
        assert router.occupancy() == 0

    def test_router_empty_without_traffic(self, router_cls):
        router = router_cls(CFG)
        for _ in range(50):
            router.step()
        assert router.idle()
        assert not router.drain_ejected()

    def test_stats_count_delivery(self, router_cls):
        router = router_cls(CFG)
        (flit,) = make_packet(dest=3, size=1, src=0)
        router.accept(0, flit)
        _drain(router)
        assert router.stats.flits_ejected == 1
        assert router.stats.packets_ejected == 1


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestMultiFlitPacket:
    def test_packet_delivered_in_order(self, router_cls):
        router = router_cls(CFG)
        flits = make_packet(dest=6, size=5, src=1)
        for f in flits:
            f.vc = 0
            router.accept(1, f)
        out = [f for f, _ in _drain(router)]
        assert len(out) == 5
        assert [f.flit_index for f in out] == [0, 1, 2, 3, 4]

    def test_all_flits_share_output_vc(self, router_cls):
        router = router_cls(CFG)
        flits = make_packet(dest=6, size=4, src=1)
        for f in flits:
            f.vc = 1
            router.accept(1, f)
        out = [f for f, _ in _drain(router)]
        assert len({f.out_vc for f in out}) == 1
        assert out[0].out_vc is not None


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestLoadedInvariants:
    def _run(self, router_cls, load=0.5, packet_size=1, cycles=600):
        reset_packet_ids()
        router = router_cls(CFG)
        sim = SwitchSimulation(
            router, load=load, packet_size=packet_size, record_delivered=True
        )
        for _ in range(cycles):
            sim.step()
        # Stop the sources and drain everything still in flight.
        sim.stop_sources()
        for _ in range(3000):
            sim.step()
            if router.idle() and all(not s.backlog() for s in sim.sources):
                break
        return router, sim, sim.delivered

    def test_flit_conservation(self, router_cls):
        router, sim, ejected = self._run(router_cls)
        generated = sum(s.flits_generated for s in sim.sources)
        backlog = sum(s.backlog() for s in sim.sources)
        assert len(ejected) == generated - backlog
        assert router.idle()

    def test_packets_arrive_whole(self, router_cls):
        _, _, ejected = self._run(router_cls, packet_size=3)
        by_packet = defaultdict(list)
        for f, cycle in ejected:
            by_packet[f.packet_id].append(f)
        for pid, flits in by_packet.items():
            assert len(flits) == 3, f"packet {pid} incomplete"
            assert [f.flit_index for f in flits] == [0, 1, 2]

    def test_no_vc_interleaving_on_outputs(self, router_cls):
        """Between a packet's head and tail, no other packet may eject
        flits on the same (output, output VC)."""
        _, _, ejected = self._run(router_cls, packet_size=3, load=0.6)
        open_packet = {}
        for f, cycle in ejected:
            key = (f.dest, f.out_vc)
            if f.is_head:
                assert key not in open_packet, (
                    f"packet {f.packet_id} opened {key} while "
                    f"{open_packet.get(key)} still active"
                )
                open_packet[key] = f.packet_id
            else:
                assert open_packet.get(key) == f.packet_id
            if f.is_tail:
                open_packet.pop(key, None)

    def test_output_bandwidth_respected(self, router_cls):
        """At most one flit per flit_cycles per output."""
        _, _, ejected = self._run(router_cls, load=0.8)
        last = {}
        for f, cycle in ejected:
            if f.dest in last:
                assert cycle - last[f.dest] >= CFG.flit_cycles, (
                    f"output {f.dest} ejected flits {cycle - last[f.dest]} "
                    "cycles apart"
                )
            last[f.dest] = cycle

    def test_minimum_latency(self, router_cls):
        _, _, ejected = self._run(router_cls, load=0.1)
        for f, cycle in ejected:
            assert cycle - f.created_at >= CFG.flit_cycles

    def test_deterministic_given_seed(self, router_cls):
        _, _, a = self._run(router_cls, load=0.4)
        _, _, b = self._run(router_cls, load=0.4)
        assert [(f.packet_id, c) for f, c in a] == [
            (f.packet_id, c) for f, c in b
        ]


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestAcceptContract:
    def test_input_space_decreases_on_accept(self, router_cls):
        router = router_cls(CFG)
        before = router.input_space(0, 0)
        (flit,) = make_packet(dest=1, size=1, src=0)
        flit.vc = 0
        router.accept(0, flit)
        assert router.input_space(0, 0) == before - 1

    def test_overflow_raises(self, router_cls):
        router = router_cls(CFG)
        for i in range(CFG.input_buffer_depth):
            (flit,) = make_packet(dest=1, size=1, src=0)
            flit.vc = 0
            router.accept(0, flit)
        (flit,) = make_packet(dest=1, size=1, src=0)
        flit.vc = 0
        with pytest.raises(OverflowError):
            router.accept(0, flit)
