"""Deeper tests of the network simulator's flow control and plumbing."""

import pytest

from repro.network.netsim import (
    ClosNetworkSimulation,
    NetworkConfig,
    NetworkSimulation,
)
from repro.network.mesh import Mesh
from repro.network.topology import FoldedClos


class TestFlowControlIntegrity:
    def test_credits_restored_after_drain(self):
        """After traffic stops and drains, every inter-router credit
        counter must be back at capacity and every VC free."""
        cfg = NetworkConfig(radix=8, levels=2, num_vcs=2, buffer_depth=4)
        sim = ClosNetworkSimulation(cfg, load=0.5)
        for _ in range(600):
            sim.step()
        # Stop generation by zeroing the packet rate, then drain.
        sim._packet_rate = 0.0
        for _ in range(6000):
            sim.step()
            if (
                all(r.occupancy() == 0 for r in sim.routers.values())
                and not sim._inflight
                and not any(sim._source_q)
            ):
                break
        for router in sim.routers.values():
            assert router.occupancy() == 0
            for link in router.links:
                if link is None or link.credits is None:
                    continue
                for counter in link.credits:
                    assert counter.free == counter.capacity
                for vc in range(cfg.num_vcs):
                    assert link.vc_state.is_free(vc)

    def test_no_flit_left_behind(self):
        """Labeled packet conservation: measured packets all arrive."""
        cfg = NetworkConfig(radix=8, levels=2, num_vcs=2)
        sim = ClosNetworkSimulation(cfg, load=0.4)
        r = sim.run(warmup=300, measure=400, drain=8000)
        assert not r.saturated
        assert sim._outstanding == 0


class TestTopologyAgnosticism:
    @pytest.mark.parametrize("topology", [
        FoldedClos(8, 2),
        FoldedClos(4, 3),
        Mesh((3, 3)),
        Mesh((2, 2, 2), concentration=2),
    ], ids=["clos-8-2", "clos-4-3", "mesh-3x3", "mesh-2x2x2-c2"])
    def test_every_topology_delivers(self, topology):
        cfg = NetworkConfig(radix=8, num_vcs=2, buffer_depth=4)
        sim = NetworkSimulation(cfg, load=0.25, topology=topology)
        r = sim.run(warmup=250, measure=350, drain=4000)
        assert r.packets_measured > 0
        assert not r.saturated

    def test_explicit_topology_overrides_config(self):
        """radix/levels in the config are ignored when a topology is
        given."""
        topo = Mesh((3, 3))
        sim = NetworkSimulation(
            NetworkConfig(radix=64, levels=3), load=0.2, topology=topo
        )
        assert sim.topology is topo
        assert len(sim.routers) == 9


class TestChannelTiming:
    def test_minimum_network_latency(self):
        """A packet pays at least hops * (flit + pipeline + channel)."""
        cfg = NetworkConfig(radix=8, levels=2, num_vcs=2,
                            pipeline_delay=3, channel_latency=1)
        sim = ClosNetworkSimulation(cfg, load=0.02)
        r = sim.run(warmup=100, measure=500, drain=4000)
        per_hop = cfg.flit_cycles + 3 + cfg.channel_latency
        assert r.avg_latency >= per_hop  # at least one router hop

    def test_channel_latency_adds_up(self):
        slow = NetworkConfig(radix=8, levels=2, channel_latency=10)
        fast = NetworkConfig(radix=8, levels=2, channel_latency=1)
        r_slow = ClosNetworkSimulation(slow, 0.05).run(100, 400, 4000)
        r_fast = ClosNetworkSimulation(fast, 0.05).run(100, 400, 4000)
        # Average ~2.5 hops: expect roughly 9 * 2.5 extra cycles.
        assert r_slow.avg_latency - r_fast.avg_latency > 10

    def test_pipeline_depth_increases_latency(self):
        shallow = NetworkConfig(radix=8, levels=2, pipeline_delay=1)
        deep = NetworkConfig(radix=8, levels=2, pipeline_delay=8)
        r_sh = ClosNetworkSimulation(shallow, 0.05).run(100, 400, 4000)
        r_dp = ClosNetworkSimulation(deep, 0.05).run(100, 400, 4000)
        assert r_dp.avg_latency > r_sh.avg_latency + 5
