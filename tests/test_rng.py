"""Tests for deterministic RNG stream derivation."""

from repro.core.rng import derive_rng


class TestDeriveRng:
    def test_same_name_same_stream(self):
        a = derive_rng(1, "traffic", 3)
        b = derive_rng(1, "traffic", 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        a = derive_rng(1, "traffic", 3)
        b = derive_rng(1, "traffic", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert a.random() != b.random()

    def test_known_value_stable_across_processes(self):
        """The derivation must not depend on Python's salted hash()."""
        a = derive_rng(42, "component")
        b = derive_rng(42, "component")
        assert a.getrandbits(64) == b.getrandbits(64)

    def test_numeric_and_string_names_distinct(self):
        # "1" and 1 stringify identically by design; different
        # positions do not.
        a = derive_rng(0, "a", "b")
        b = derive_rng(0, "ab")
        assert a.random() != b.random()
