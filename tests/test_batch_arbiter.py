"""Property tests: the batched arbiter banks against their scalar twins.

The batched hot path (``config.batch_hot_path``) rests on one claim:
:class:`~repro.core.arbiter.BatchArbiterBank` behaves exactly like a
list of independent :class:`~repro.core.arbiter.RoundRobinArbiter`
instances, grant for grant and pointer for pointer, including the
deferred ``commit`` protocol and the all-False-row-is-a-skipped-call
equivalence.  These tests drive both implementations through identical
random request/commit sequences and compare every observable after
every step, on the numpy backend and the pure-Python fallback alike.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arbiter import (
    HAVE_NUMPY,
    BatchArbiterBank,
    BatchHierarchicalArbiterBank,
    HierarchicalArbiter,
    RoundRobinArbiter,
)

BACKENDS = [True] + ([False] if HAVE_NUMPY else [])


def _np_or_list(matrix, numpy_backend):
    if numpy_backend and HAVE_NUMPY:
        import numpy as np

        return np.asarray(matrix, dtype=bool)
    return matrix


# One scripted episode: bank shape plus a sequence of request matrices
# interleaved with occasional commit overrides.
episodes = st.integers(1, 6).flatmap(
    lambda rows: st.integers(1, 20).flatmap(
        lambda width: st.fixed_dictionaries(
            {
                "rows": st.just(rows),
                "width": st.just(width),
                "steps": st.lists(
                    st.tuples(
                        st.lists(
                            st.lists(
                                st.booleans(),
                                min_size=width, max_size=width,
                            ),
                            min_size=rows, max_size=rows,
                        ),
                        st.booleans(),  # advance?
                        # Optional commit (row, winner) after the step.
                        st.one_of(
                            st.none(),
                            st.tuples(
                                st.integers(0, rows - 1),
                                st.integers(0, width - 1),
                            ),
                        ),
                    ),
                    min_size=1, max_size=8,
                ),
            }
        )
    )
)


class TestBatchArbiterBank:
    @settings(max_examples=120, deadline=None)
    @given(episodes, st.sampled_from([0, 1]))
    def test_matches_scalar_bank(self, episode, backend_idx):
        """Identical grants and pointers through any request/commit
        sequence, on every available backend."""
        force_python = BACKENDS[backend_idx % len(BACKENDS)]
        rows, width = episode["rows"], episode["width"]
        bank = BatchArbiterBank(rows, width, force_python=force_python)
        scalars = [RoundRobinArbiter(width) for _ in range(rows)]
        for requests, advance, commit in episode["steps"]:
            got = bank.arbitrate_all(
                _np_or_list(requests, not force_python), advance=advance
            )
            want = [
                s.arbitrate(row, advance=advance)
                for s, row in zip(scalars, requests)
            ]
            assert [int(w) for w in got] == [
                -1 if w is None else w for w in want
            ]
            assert bank.pointers == [s.pointer for s in scalars]
            if commit is not None:
                row, winner = commit
                bank.commit(row, winner)
                scalars[row].commit(winner)
                assert bank.pointers == [s.pointer for s in scalars]

    @settings(max_examples=80, deadline=None)
    @given(episodes, st.data())
    def test_sparse_rows_match_skipped_scalar_calls(self, episode, data):
        """arbitrate_rows over a subset == scalar calls on that subset,
        with untouched rows keeping their pointers (skip equivalence)."""
        rows, width = episode["rows"], episode["width"]
        bank = BatchArbiterBank(rows, width)
        scalars = [RoundRobinArbiter(width) for _ in range(rows)]
        for requests, advance, _ in episode["steps"]:
            subset = sorted(
                data.draw(
                    st.sets(st.integers(0, rows - 1), min_size=0,
                            max_size=rows)
                )
            )
            if not subset:
                continue
            sub_req = [requests[r] for r in subset]
            if HAVE_NUMPY:
                import numpy as np

                got = bank.arbitrate_rows(
                    np.asarray(subset), np.asarray(sub_req, dtype=bool),
                    advance=advance,
                )
            else:
                got = bank.arbitrate_rows(subset, sub_req, advance=advance)
            want = [
                scalars[r].arbitrate(row, advance=advance)
                for r, row in zip(subset, sub_req)
            ]
            assert [int(w) for w in got] == [
                -1 if w is None else w for w in want
            ]
            assert bank.pointers == [s.pointer for s in scalars]

    def test_all_false_row_moves_no_pointer(self):
        bank = BatchArbiterBank(2, 4)
        out = bank.arbitrate_all(_np_or_list([[False] * 4] * 2, True))
        assert [int(w) for w in out] == [-1, -1]
        assert bank.pointers == [0, 0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchArbiterBank(0, 4)
        with pytest.raises(ValueError):
            BatchArbiterBank(4, 0)
        with pytest.raises(ValueError):
            BatchArbiterBank(2, 4, sizes=[4])
        with pytest.raises(ValueError):
            BatchArbiterBank(2, 4, sizes=[4, 5])
        with pytest.raises(ValueError):
            BatchArbiterBank(2, 4).commit(0, 7)


class TestBatchHierarchicalArbiterBank:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(1, 4),      # count
        st.integers(1, 12),     # size
        st.integers(1, 6),      # group_size
        st.data(),
    )
    def test_matches_scalar_hierarchical(self, count, size, group_size,
                                         data):
        for force_python in BACKENDS:
            bank = BatchHierarchicalArbiterBank(
                count, size, group_size, force_python=force_python
            )
            scalars = [
                HierarchicalArbiter(size, group_size) for _ in range(count)
            ]
            steps = data.draw(
                st.lists(
                    st.lists(
                        st.lists(st.booleans(), min_size=size,
                                 max_size=size),
                        min_size=count, max_size=count,
                    ),
                    min_size=1, max_size=6,
                )
            )
            for requests in steps:
                got = bank.grant_all(
                    _np_or_list(requests, not force_python)
                )
                want = [
                    s.arbitrate(row) for s, row in zip(scalars, requests)
                ]
                assert [int(w) for w in got] == [
                    -1 if w is None else w for w in want
                ]
